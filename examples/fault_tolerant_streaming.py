"""Fault-tolerant streaming walkthrough: kill a worker mid-stream, converge anyway.

Demonstrates the recovery layer (`repro.runtime.recovery` + `repro.runtime.faults`):

1. a streaming run with a :class:`RecoveryManager` attached — every epoch a
   checkpoint captures a consistent cut, and every admitted batch is logged
   to the write-ahead log before any shard sees it;
2. a seeded fault schedule killing a shard worker mid-stream — a real
   ``SIGKILL`` on the multiprocessing backend, a simulated partition wipe on
   the in-process fallback;
3. rollback recovery — the session rolls *all* shards back to the latest
   checkpoint, replays the logged admissions, and resumes the barrier
   protocol;
4. the differential guarantee, now crash-inclusive — the drained result
   still equals a batch run over everything that ever entered the solution.

Run with ``EXAMPLES_SMOKE=1`` for the CI-sized variant.
"""

import multiprocessing
import os

from repro.gamma import run
from repro.gamma.stdlib import sum_reduction, values_multiset
from repro.multiset import Element
from repro.runtime import (
    FaultEvent,
    FaultSchedule,
    RecoveryManager,
    StreamingGammaRuntime,
    install_faults,
)
from repro.api import RuntimeConfig

SMOKE = os.environ.get("EXAMPLES_SMOKE", "") not in ("", "0")
SIZE = 60 if SMOKE else 600
EPOCHS = 4 if SMOKE else 6
FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()
BACKEND = "multiprocessing" if FORK_AVAILABLE and not SMOKE else "inprocess"


def main() -> None:
    """Stream a sum, kill a worker partway through, and still converge."""
    values = list(range(1, SIZE + 1))
    head, tail = values[: SIZE // 4], values[SIZE // 4 :]
    chunk = max(1, len(tail) // EPOCHS)
    batches = [
        [Element(v, "x", 0) for v in tail[i : i + chunk]]
        for i in range(0, len(tail), chunk)
    ]

    print(f"== fault-tolerant streaming ({BACKEND} backend, 4 shards) ==")
    recovery = RecoveryManager()  # in-memory store + WAL; disk variants exist
    runtime = StreamingGammaRuntime(sum_reduction(), config=RuntimeConfig(backend=BACKEND, shards=4, seed=0, recovery=recovery, checkpoint_interval=1))
    runtime.start(values_multiset(head))

    # Kill shard 2's worker at the third barrier round — mid-stream, after
    # real work (and possibly migrations) happened since the last checkpoint.
    schedule = FaultSchedule([FaultEvent("kill", 2, 3)])
    install_faults(runtime._session, schedule)

    result = runtime.run(schedule=batches)
    session = runtime._session
    print(
        f"injected {result.injected} elements over {result.epochs} epochs; "
        f"kill applied: {bool(schedule.applied)}"
    )
    print(
        f"recoveries: {result.recoveries}, WAL copies replayed: {result.replayed}, "
        f"checkpoints kept: {len(recovery.store.epochs())}, "
        f"recovery latency: "
        f"{sum(session.recovery_seconds) * 1e3:.1f} ms"
    )
    print(f"drained sum = {result.final.values_with_label('x')}")

    # The crash-inclusive differential: identical to one batch run over
    # initial ∪ injected, exactly as if no worker had ever died.
    batch = run(sum_reduction(), values_multiset(values), config=RuntimeConfig(engine="sequential"))
    agree = result.final == batch.final
    print(f"streamed-with-crash result == batch result over the union: {agree}")
    assert agree
    assert result.recoveries >= 1, "the scheduled kill should have fired"


if __name__ == "__main__":
    main()
