"""Algorithm 2 and Fig. 4: from Gamma reactions back to dataflow graphs.

Takes Gamma code written in the paper's syntax, converts each reaction to a
dataflow subgraph (Algorithm 2, step 1), shows the Fig. 4 replication of a
reaction graph over an initial multiset, and finally executes a whole Gamma
program using nothing but repeated rounds of replicated dataflow graphs,
checking the result against the native Gamma engine.

Run with::

    python examples/gamma_to_dataflow.py
"""

from repro.analysis import format_table
from repro.core import (
    check_gamma_vs_dataflow,
    execute_via_dataflow,
    instantiate_round,
    reaction_to_graph,
)
from repro.dataflow.dot import to_dot
from repro.gamma import run as run_gamma
from repro.gamma.dsl import compile_source, load_reaction
from repro.gamma.stdlib import sum_reduction, values_multiset

GAMMA_SOURCE = """
# Example 1 of the paper, as Gamma source code.
init { [1,'A1',0], [5,'B1',0], [3,'C1',0], [2,'D1',0] }

R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']
R2 = replace [id1, 'C1'], [id2, 'D1'] by [id1 * id2, 'C2']
R3 = replace [id1, 'B2'], [id2, 'C2'] by [id1 - id2, 'm']
"""


def main() -> None:
    # 1. One reaction -> one dataflow subgraph (Algorithm 2, step 1).
    reaction = load_reaction("R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']")
    rg = reaction_to_graph(reaction)
    print("Reaction R1 becomes a graph with vertices:", rg.graph.counts_by_kind())
    print(to_dot(rg.graph))

    # The idiom recognizers recover steer / inctag vertices from reaction shape
    # (the paper leaves this detection as future work).
    steer = load_reaction(
        "R16 = replace [d,'B13',v], [c,'B15',v] by [d,'B17',v] if c == 1 by 0 else"
    )
    print("Steer-shaped reaction becomes:", reaction_to_graph(steer).graph.counts_by_kind())
    inctag = load_reaction(
        "R11 = replace [a,x,v] by [a,'A12',v+1] if (x=='A1') or (x=='A11')"
    )
    print("Inctag-shaped reaction becomes:", reaction_to_graph(inctag).graph.counts_by_kind())

    # 2. Fig. 4: replicate a binary reaction over a six-element multiset.
    instanced = instantiate_round(sum_reduction(), values_multiset([1, 2, 3, 4, 5, 6]))
    print(f"\nFig. 4 instancing: {instanced.num_instances} instances "
          f"({len(instanced.graph)} vertices total, {len(instanced.leftover)} leftover elements)")

    # 3. A whole Gamma program executed through dataflow rounds only.
    program = compile_source(GAMMA_SOURCE, name="example1_source")
    native = run_gamma(program, engine="sequential")
    emulated = execute_via_dataflow(program, program.initial, seed=0)
    rows = [
        ["native Gamma engine", str(native.final.to_tuples())],
        ["Algorithm 2 + instancing rounds", str(emulated.final.to_tuples())],
        ["rounds / instances", f"{emulated.rounds} / {emulated.total_instances}"],
    ]
    print("\n" + format_table(["execution", "stable multiset"], rows,
                              title="Example 1 executed on both sides"))

    report = check_gamma_vs_dataflow(program, program.initial, seeds=(0, 1, 2))
    print("\n" + report.summary())


if __name__ == "__main__":
    main()
