"""Streaming ingestion walkthrough: feed a live Gamma run from a stream.

Demonstrates the online execution mode (`repro.runtime.streaming`):

1. a scripted stream — inject batches into a sequential run epoch by epoch,
   reading consistent snapshots between epochs;
2. backpressure — a bounded ingest queue refusing offers while the run is
   busy;
3. the same stream on the sharded backend (routed injection: each batch is
   shipped to its elements' stable-hash home shards);
4. the differential guarantee — after the stream drains, the result equals
   a batch run over everything that ever entered the solution.

Run with ``EXAMPLES_SMOKE=1`` for the CI-sized variant.
"""

import os

from repro.gamma import run
from repro.gamma.stdlib import min_element, sum_reduction, values_multiset
from repro.multiset import Element, Multiset
from repro.runtime import IngestQueue, StreamingGammaRuntime
from repro.api import RuntimeConfig

SMOKE = os.environ.get("EXAMPLES_SMOKE", "") not in ("", "0")
SIZE = 40 if SMOKE else 400
EPOCHS = 4 if SMOKE else 8


def scripted_stream():
    """Inject sum_reduction input over several epochs, snapshotting between."""
    print("== scripted stream (sequential backend) ==")
    values = list(range(1, SIZE + 1))
    head, tail = values[: SIZE // 4], values[SIZE // 4 :]
    chunk = max(1, len(tail) // EPOCHS)
    batches = [tail[i : i + chunk] for i in range(0, len(tail), chunk)]

    runtime = StreamingGammaRuntime(sum_reduction(), config=RuntimeConfig(backend="sequential"))
    runtime.start(values_multiset(head))
    report = runtime.pump()  # epoch 0: stabilize the initial multiset
    print(f"epoch 0: initial stabilized in {report.steps} steps")
    for batch in batches:
        for value in batch:
            runtime.inject(Element(value, "x", 0))
        report = runtime.pump()
        snapshot = runtime.snapshot()
        print(
            f"epoch {report.epoch}: +{report.injected} elements, "
            f"{report.firings} firings, latency {report.latency * 1e3:.2f} ms, "
            f"running sum {snapshot.values_with_label('x')}"
        )
    runtime.close_stream()
    runtime.pump()
    result = runtime.result()
    runtime.close()
    print(
        f"drained: sum={result.final.values_with_label('x')} "
        f"({result.epochs} epochs, {result.injected} injected, "
        f"{result.firings} firings)\n"
    )
    return result


def backpressure_demo():
    """A bounded queue pushes back when injection outpaces stabilization."""
    print("== backpressure (capacity 4) ==")
    queue = IngestQueue(capacity=4)
    runtime = StreamingGammaRuntime(min_element(), queue=queue, config=RuntimeConfig(backend="sequential"))
    runtime.start(values_multiset([50]))
    admitted = refused = 0
    for value in range(12):
        if queue.offer(Element(value, "x", 0)):
            admitted += 1
        else:
            refused += 1
            runtime.pump()  # drain an epoch, freeing capacity...
            queue.offer(Element(value, "x", 0))  # ...then the retry succeeds
            admitted += 1
    runtime.close_stream()
    while not runtime.drained:
        runtime.pump()
    result = runtime.result()
    runtime.close()
    print(
        f"admitted {admitted}, refused (then retried) {refused}; "
        f"min = {result.final.values_with_label('x')}\n"
    )


def sharded_stream():
    """The same stream on the sharded backend with routed injection."""
    print("== sharded streaming (inprocess backend, 4 shards) ==")
    values = list(range(1, SIZE + 1))
    head, tail = values[: SIZE // 4], values[SIZE // 4 :]
    chunk = max(1, len(tail) // EPOCHS)
    batches = [
        [Element(v, "x", 0) for v in tail[i : i + chunk]]
        for i in range(0, len(tail), chunk)
    ]
    runtime = StreamingGammaRuntime(sum_reduction(), config=RuntimeConfig(backend="inprocess", shards=4, seed=0))
    result = runtime.run(values_multiset(head), schedule=batches)
    print(
        f"drained on shards: sum={result.final.values_with_label('x')} "
        f"({result.epochs} epochs, {result.steps} barrier rounds)\n"
    )
    return result


def differential_check(streamed):
    """Stream-then-drain equals one batch run over initial ∪ injected."""
    print("== differential check ==")
    batch = run(sum_reduction(), values_multiset(range(1, SIZE + 1)), config=RuntimeConfig(engine="sequential"))
    agree = streamed.final == batch.final
    print(f"streamed result == batch result over the union: {agree}")
    assert agree


if __name__ == "__main__":
    streamed = scripted_stream()
    backpressure_demo()
    sharded_stream()
    differential_check(streamed)
