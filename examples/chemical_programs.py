"""Classic Gamma ("chemical") programs and the textual DSL.

Shows the Gamma model as a programming model in its own right: the classic
multiset-rewriting programs (minimum, sieve of Eratosthenes, exchange sort,
gcd), the Eq. 2 listing parsed from the paper's own syntax, sequential (`;`)
and parallel (`|`) composition, and execution on the simulated parallel and
distributed (IoT-style) runtimes.

Run with::

    python examples/chemical_programs.py
"""

from repro.analysis import format_table
from repro.gamma import run as run_gamma
from repro.gamma.dsl import compile_source, format_program
from repro.gamma.stdlib import (
    count_threshold,
    exchange_sort,
    gcd_program,
    indexed_multiset,
    min_element,
    prime_sieve,
    values_multiset,
)
from repro.runtime import DistributedGammaRuntime, simulate_program
from repro.workloads.paper_listings import EQ2_MIN_ELEMENT
from repro.api import RuntimeConfig


def main() -> None:
    # 1. Eq. 2 of the paper, parsed from its own syntax.
    eq2 = compile_source(EQ2_MIN_ELEMENT, name="eq2")
    print("Eq. 2 source reprinted from the parsed program:\n")
    print(format_program(eq2, include_init=False))
    result = run_gamma(eq2, values_multiset([21, 8, 13, 2, 34]), config=RuntimeConfig(engine="chaotic", seed=0))
    print("minimum of {21, 8, 13, 2, 34} =", result.final.values_with_label("x"), "\n")

    # 2. Classic chemical programs.
    rows = []
    sieve = run_gamma(prime_sieve(), values_multiset(range(2, 50)), config=RuntimeConfig(engine="chaotic", seed=1))
    rows.append(["prime sieve (2..49)", str(sorted(sieve.final.values_with_label("x")))])
    gcd = run_gamma(gcd_program(), values_multiset([252, 105, 84]), config=RuntimeConfig(engine="chaotic", seed=1))
    rows.append(["gcd {252, 105, 84}", str(gcd.final.values_with_label("x"))])
    sort = run_gamma(exchange_sort(), indexed_multiset([9, 4, 7, 1, 8]), config=RuntimeConfig(engine="chaotic", seed=1))
    rows.append(["exchange sort [9,4,7,1,8]",
                 str([e.value for e in sorted(sort.final, key=lambda e: e.tag)])])
    counted = run_gamma(count_threshold(10), values_multiset([4, 11, 25, 3, 10]), engine="sequential")
    rows.append(["count >= 10 in {4,11,25,3,10} (map ; reduce)",
                 str(counted.final.values_with_label("count"))])
    print(format_table(["program", "stable result"], rows, title="Classic Gamma programs"))

    # 3. Parallel execution: the sum over 64 values on 8 simulated PEs.
    from repro.gamma.stdlib import sum_reduction

    sim = simulate_program(sum_reduction(), values_multiset(range(1, 65)), num_pes=8, config=RuntimeConfig(seed=0))
    print(f"\nsum(1..64) on 8 PEs: {sim.final.values_with_label('x')} "
          f"in {sim.steps} steps (speedup {sim.metrics.speedup:.2f}, "
          f"utilization {sim.metrics.utilization:.0%})")

    # 4. Distributed multiset (the IoT motivation): 8 partitions.
    dist = DistributedGammaRuntime(sum_reduction(), 8, config=RuntimeConfig(seed=1)).run(values_multiset(range(1, 65)))
    print(f"distributed over 8 partitions: {dist.values_with_label('x')} "
          f"in {dist.steps} steps, {dist.migrations} migrations, {dist.messages} messages")


if __name__ == "__main__":
    main()
