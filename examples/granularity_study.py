"""Section III-A3 in action: reductions, expansions and their costs.

Reproduces the paper's reduction of Example 1 (R1–R3 fused into Rd1) with the
automatic producer-into-consumer fusion, re-expands it, and measures what the
paper only states qualitatively: fused reactions expose less parallelism and
have a lower probability of being enabled by a randomly drawn combination of
elements.  Also executes the paper's hand-reduced six-reaction version of
Example 2 (Rd11–Rd16).

Run with::

    python examples/granularity_study.py
"""

from repro.analysis import format_table, granularity_report
from repro.core import dataflow_to_gamma, expand_program, reduce_program
from repro.gamma import run as run_gamma
from repro.gamma.dsl import compile_source, format_program
from repro.workloads.paper_examples import example1_graph, example2_graph
from repro.workloads.paper_listings import EXAMPLE2_INIT, EXAMPLE2_REDUCED
from repro.api import RuntimeConfig


def main() -> None:
    # 1. Example 1: automatic fusion reproduces the paper's Rd1.
    conversion = dataflow_to_gamma(example1_graph())
    reduced = reduce_program(conversion.program)
    print("Original reactions :", conversion.program.reaction_names())
    print("After reduction    :", reduced.program.reaction_names(),
          f"(absorbed {reduced.fused})")
    print("\nThe fused reaction (compare with the paper's Rd1):\n")
    print(format_program(reduced.program, include_init=False))

    expanded = expand_program(reduced.program)
    print("Re-expanded        :", expanded.program.reaction_names())

    # 2. Quantify the granularity trade-off.
    variants = [
        ("original R1-R3", conversion.program),
        ("reduced Rd1", reduced.program),
        ("re-expanded", expanded.program),
    ]
    reports = [granularity_report(name, prog, conversion.initial) for name, prog in variants]
    rows = [
        [r.name, r.reactions, r.mean_arity, r.firings, r.max_parallelism, f"{r.match_probability:.3f}"]
        for r in reports
    ]
    print("\n" + format_table(
        ["variant", "reactions", "mean arity", "firings", "max parallelism", "match probability"],
        rows,
        title="Granularity ablation (Example 1)",
    ))

    # 3. Example 2: the paper's hand-reduced Rd11-Rd16 listing.
    paper_reduced = compile_source(EXAMPLE2_INIT + EXAMPLE2_REDUCED, name="rd11_16")
    result = run_gamma(paper_reduced, config=RuntimeConfig(engine="chaotic", seed=0))
    print(f"\nPaper's reduced Example 2 (6 reactions): stable multiset {result.final.to_tuples()}")
    original = dataflow_to_gamma(example2_graph())
    original_result = run_gamma(original.program, config=RuntimeConfig(engine="chaotic", seed=0))
    print(f"Original 9-reaction program:              stable multiset "
          f"{original_result.final.restrict_labels(['Cout']).to_tuples()}")
    print("(both carry the accumulator value 16 = 10 + 3*2; the reduced version "
          "leaves it on label C12, the original on the exit edge Cout)")


if __name__ == "__main__":
    main()
