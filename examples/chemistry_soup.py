"""Tour of the reaction-network workload pack.

Walks the chemistry layer end to end:

1. a seeded **chemistry soup** — terminating, mass-conserving, deliberately
   *non-confluent*: different schedules reach different stable multisets,
   but every one of them carries exactly the initial mass;
2. a **stoichiometric model** — reactions as a species x reactions matrix
   whose left null space is the conserved quantities, checked against a
   Gamma translation of the network (and the 15-species ACM2 signalling
   network imported from its weighted edge list);
3. the **reaction dependency graph** and the hot-label report — which
   reactions can enable which, and where a recorded run's traffic lands;
4. a **continuously-fed soup**: a PoolFeeder streams the molecule pool into
   a sharded streaming runtime in batches, and the drained solution still
   holds the pool's total mass.

Run with::

    python examples/chemistry_soup.py

Set ``EXAMPLES_SMOKE=1`` (the CI examples job does) for a smaller soup.
"""

import os

from repro.analysis import dependency_graph, format_table, hot_label_report
from repro.api import RuntimeConfig
from repro.gamma import run as run_gamma
from repro.runtime import StreamingGammaRuntime
from repro.workloads import (
    PoolFeeder,
    condensation_network,
    engelhardt_network,
    make_soup,
    species_multiset,
)

SMOKE = os.environ.get("EXAMPLES_SMOKE", "") not in ("", "0")
MOLECULES = 16 if SMOKE else 64


def main() -> None:
    # 1. A non-confluent soup under the mass invariant.
    soup = make_soup(blocks=2, species_per_block=4, molecules=MOLECULES, seed=7)
    print(f"soup '{soup.name}': {len(soup.program.reactions)} reactions over "
          f"{sum(len(block) for block in soup.species)} species, "
          f"{len(soup.initial)} molecules, mass {soup.initial_mass}")
    finals = []
    for seed in (0, 1, 2):
        result = run_gamma(soup.program, soup.initial.copy(),
                           config=RuntimeConfig(engine="chaotic", seed=seed))
        assert soup.mass(result.final) == soup.initial_mass
        finals.append(result.final)
    distinct = len({tuple(sorted((e.value, e.label) for e in final)) for final in finals})
    print(f"3 chaotic schedules -> {distinct} distinct stable multisets, "
          f"every one at mass {soup.initial_mass} (the invariant oracle)\n")

    # 2. Stoichiometry: conserved quantities from the matrix's left null space.
    network = condensation_network(4)
    vectors = network.conserved_quantities()
    initial = species_multiset({"s1": 5, "s2": 1, "s3": 1})
    before = network.invariant_values(initial)
    result = run_gamma(network.to_gamma_program(), initial,
                       config=RuntimeConfig(engine="chaotic", seed=0))
    after = network.invariant_values(result.final)
    print(f"condensation network s_i + s_j -> s_(i+j) up to weight 4:")
    print(f"  conserved vectors {vectors} (molecular weight), "
          f"invariant {before} before == {after} after")
    assert before == after

    acm2 = engelhardt_network()
    rows, cols = (len(acm2.stoichiometric_matrix()),
                  len(acm2.stoichiometric_matrix()[0]))
    print(f"ACM2 signalling network: {rows} species x {cols} reactions, "
          f"{len(acm2.conserved_quantities())} conserved quantities "
          f"(an open system — everything is eventually degradable)\n")

    # 3. Structure and traffic: who enables whom, which labels run hot.
    graph = dependency_graph(soup.program)
    trace = run_gamma(soup.program, soup.initial.copy(),
                      config=RuntimeConfig(engine="sequential", seed=0)).trace
    hottest = hot_label_report(trace, top=4)
    print(f"dependency graph: {len(graph.nodes)} reactions, "
          f"{len(graph.edges)} may-enable edges")
    print(format_table(
        ["label", "consumed", "produced"],
        [[label, consumed, produced] for label, consumed, produced in hottest],
        title="Hottest labels of the sequential run",
    ))

    # 4. The continuously-fed soup on the sharded streaming runtime.
    feeder = PoolFeeder(soup, batch_size=6, hold_back=0.5, seed=1)
    runtime = StreamingGammaRuntime(
        soup.program, config=RuntimeConfig(backend="inprocess", shards=2, seed=0))
    drained = feeder.feed(runtime)
    print(f"\nstreamed {len(feeder.elements())} molecules "
          f"({feeder.injected_mass()} mass) in batches of {feeder.batch_size}: "
          f"drained to {len(drained.final)} elements, "
          f"mass {soup.mass(drained.final)} == pool mass {soup.initial_mass}")
    assert soup.mass(drained.final) == soup.initial_mass


if __name__ == "__main__":
    main()
