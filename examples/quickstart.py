"""Quickstart: the paper's Example 1 end to end.

Builds the Fig. 1 dataflow graph for ``m = (x + y) - (k * j)``, runs it with
the tagged-token interpreter, converts it to a Gamma program with Algorithm 1,
prints the generated Gamma code (same style as the paper's listings), runs the
Gamma program with all three engines, and checks the equivalence mechanically.

Run with::

    python examples/quickstart.py
"""

from repro.core import check_dataflow_vs_gamma, dataflow_to_gamma
from repro.dataflow import run_graph
from repro.dataflow.dot import to_dot
from repro.gamma import run as run_gamma
from repro.gamma.dsl import format_program
from repro.workloads.paper_examples import example1_graph
from repro.api import RuntimeConfig


def main() -> None:
    # 1. The dataflow side: Fig. 1 (x=1, y=5, k=3, j=2).
    graph = example1_graph()
    print("Dataflow graph:", graph)
    print("  vertices:", {n.node_id: n.kind for n in graph.nodes})
    print("  edge labels:", graph.labels())

    df_result = run_graph(graph)
    print("\nDataflow execution: m =", df_result.single_output("m"))

    # 2. Algorithm 1: dataflow graph -> Gamma program + initial multiset.
    conversion = dataflow_to_gamma(graph)
    print("\nGenerated Gamma program (Algorithm 1):\n")
    print(format_program(conversion.program))

    # 3. Run the Gamma program with every engine.
    for engine in ("sequential", "chaotic", "max-parallel"):
        result = run_gamma(conversion.program, config=RuntimeConfig(engine=engine, seed=0))
        print(f"Gamma [{engine:12s}] m = {result.final.values_with_label('m')}  "
              f"({result.firings} firings in {result.steps} steps)")

    # 4. Mechanical equivalence check (all engines, several seeds).
    report = check_dataflow_vs_gamma(graph)
    print("\n" + report.summary())

    # 5. A DOT rendering of the graph (paste into Graphviz to reproduce Fig. 1).
    print("\nDOT output:\n")
    print(to_dot(graph))


if __name__ == "__main__":
    main()
