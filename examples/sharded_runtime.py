"""Sharded distributed execution walkthrough.

Runs one Gamma workload (``min_element``) through every distributed backend of
:class:`repro.runtime.DistributedGammaRuntime`:

* ``legacy`` — the original step-synchronous simulation (one firing per
  worker step, one-element random steals, union-rebuild termination checks);
* ``inprocess`` — the sharded subsystem: per-shard compiled schedulers firing
  maximal local supersteps, footprint-routed batched exchanges, work
  stealing, two-phase quiescence detection;
* ``multiprocessing`` — the same protocol with shard workers as OS processes
  (skipped automatically where process forking is unavailable);

then peeks inside the protocol: the routing table derived from the program's
reaction footprints, and the shard-balance / communication metrics from
``repro.analysis``.

Run with::

    python examples/sharded_runtime.py

Set ``EXAMPLES_SMOKE=1`` (the CI examples job does) to use a small problem
size so the script stays a fast smoke test.
"""

import multiprocessing
import os
import time

from repro.analysis import format_table, shard_load_report
from repro.gamma import run
from repro.runtime import DistributedGammaRuntime
from repro.runtime.sharding import RoutingTable
from repro.workloads import make_workload
from repro.api import RuntimeConfig

SMOKE = os.environ.get("EXAMPLES_SMOKE", "") not in ("", "0")
SIZE = 500 if SMOKE else 5_000
SHARDS = 4


def main() -> None:
    workload = make_workload("min_element", size=SIZE, seed=7)
    reference = run(workload.program, workload.initial.copy(), config=RuntimeConfig(engine="sequential"))
    print(f"min_element over {SIZE} elements, {SHARDS} shards")
    print(f"sequential reference: {reference.firings} firings\n")

    # 1. The routing table the sharded backends derive from the reactions:
    # every label a reaction can consume is grouped with its co-consumed
    # labels and assigned a home shard; inert labels are never migrated.
    table = RoutingTable(workload.program.reactions, SHARDS)
    print("Routing table (footprint label groups -> home shard):")
    for root, labels in sorted(table.groups.items()):
        print(f"  {sorted(labels)} -> shard {table.destination(root)}")
    print(f"  wildcard program: {table.wildcard}\n")

    # 2. Run every backend and compare against the sequential stable state.
    backends = ["legacy", "inprocess"]
    if "fork" in multiprocessing.get_all_start_methods():
        backends.append("multiprocessing")
    rows = []
    for backend in backends:
        runtime = DistributedGammaRuntime(workload.program, SHARDS, config=RuntimeConfig(seed=3, backend=backend))
        start = time.perf_counter()
        result = runtime.run(workload.initial.copy())
        elapsed = time.perf_counter() - start
        assert result.final == reference.final, f"{backend} diverged!"
        report = shard_load_report(result)
        rows.append(
            [
                backend,
                f"{elapsed:.3f}s",
                result.firings,
                result.steps,
                result.migrations,
                result.messages,
                f"{report.firing_balance:.2f}",
            ]
        )
    print(
        format_table(
            ["backend", "wall", "firings", "steps", "migrations", "messages", "balance"],
            rows,
            title="Distributed backends (all reach the sequential stable state)",
        )
    )

    # 3. The sharded result carries protocol-level accounting.
    sharded = DistributedGammaRuntime(workload.program, SHARDS, config=RuntimeConfig(seed=3, backend="inprocess")).run(workload.initial.copy())
    print("\nSharded protocol accounting (inprocess):")
    print(f"  rounds={sharded.rounds} supersteps={sharded.supersteps}")
    print(f"  exchanges={sharded.exchanges} steals={sharded.steals}")
    print(f"  per-shard firings: {sharded.per_partition_firings}")
    print(f"  final shard sizes: {sharded.final_shard_sizes}")


if __name__ == "__main__":
    main()
