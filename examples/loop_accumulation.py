"""Example 2 of the paper: a loop, from imperative source code to both models.

The scenario the paper motivates in Section III-A1: start from von-Neumann
code with a ``for`` loop, compile it to a dynamic dataflow graph (steer +
inctag vertices), convert it to the nine-reaction Gamma program, and execute
everything — including a run of the Gamma program performed purely through
replicated dataflow graph instances (Algorithm 2 + Fig. 4 instancing).

Run with::

    python examples/loop_accumulation.py
"""

from repro.analysis import compare_parallelism, format_profile, format_table
from repro.core import dataflow_to_gamma, execute_via_dataflow
from repro.dataflow import run_graph
from repro.frontend import compile_source_to_graph
from repro.gamma import run as run_gamma
from repro.gamma.dsl import format_program
from repro.api import RuntimeConfig

SOURCE = """
int y = 2; int z = 3; int x = 10;
for (i = z; i > 0; i--) { x = x + y; }
output x;
"""


def main() -> None:
    print("Imperative source:")
    print(SOURCE)

    # 1. Compile to a dynamic dataflow graph (the Fig. 2 shape).
    graph = compile_source_to_graph(SOURCE, name="example2")
    print("Vertex kinds:", graph.counts_by_kind())
    print("Dataflow result: x =", run_graph(graph).single_output("x"))

    # 2. Algorithm 1: the Gamma program (compare with the paper's R11-R19).
    conversion = dataflow_to_gamma(graph)
    print(f"\nGenerated {len(conversion.program)} reactions:")
    print(format_program(conversion.program))

    result = run_gamma(conversion.program, config=RuntimeConfig(engine="chaotic", seed=1))
    print("Gamma result:", result.final.values_with_label("x"),
          f"({result.firings} reaction firings)")

    # 3. Execute the Gamma program *through dataflow graphs only*
    #    (Algorithm 2 + the Fig. 4 instancing, repeated until stable).
    emulated = execute_via_dataflow(conversion.program, conversion.initial, seed=0)
    print(f"\nVia Algorithm 2 + instancing: {emulated.final.values_with_label('x')} "
          f"in {emulated.rounds} rounds / {emulated.total_instances} graph instances")

    # 4. Parallelism comparison: same program, both execution models.
    comparison = compare_parallelism(graph, num_pes=None, seed=0)
    print("\n" + format_table(
        ["metric", "dataflow", "gamma"],
        comparison.as_rows(),
        title="Parallelism of the same loop in both models",
    ))
    print("\n" + format_profile(comparison.dataflow.profile, "dataflow profile"))
    print(format_profile(comparison.gamma.profile, "gamma profile"))


if __name__ == "__main__":
    main()
