"""Parameterized loop kernels (imperative source + dataflow graphs).

The loop workloads exercise the dynamic part of the dataflow model — steer,
inctag, iteration tags — beyond the paper's single accumulation example.  Each
kernel provides the imperative source (compiled by :mod:`repro.frontend`), the
expected result computed directly in Python, and a short description used by
the benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..dataflow.graph import DataflowGraph
from ..frontend.compiler import compile_source_to_graph

__all__ = ["LoopKernel", "accumulation", "factorial", "fibonacci", "gcd_loop",
           "triangular", "LOOP_KERNELS"]


@dataclass(frozen=True)
class LoopKernel:
    """One loop workload: source text, expected result, output label."""

    name: str
    source: str
    output: str
    expected: int
    description: str = ""

    def graph(self) -> DataflowGraph:
        """Compile the kernel to a dataflow graph."""
        return compile_source_to_graph(self.source, name=self.name)


def accumulation(y: int = 2, z: int = 3, x: int = 10) -> LoopKernel:
    """The paper's Example 2: ``for (i = z; i > 0; i--) x = x + y``."""
    acc = x
    for _ in range(max(z, 0)):
        acc += y
    source = f"""
    int y = {y}; int z = {z}; int x = {x};
    for (i = z; i > 0; i--) {{ x = x + y; }}
    output x;
    """
    return LoopKernel(
        name="accumulation",
        source=source,
        output="x",
        expected=acc,
        description="Example 2 of the paper: repeated accumulation",
    )


def factorial(n: int = 8) -> LoopKernel:
    """``acc = n!`` via a while loop."""
    acc = 1
    k = n
    while k > 1:
        acc *= k
        k -= 1
    source = f"""
    int n = {n}; int acc = 1;
    while (n > 1) {{ acc = acc * n; n = n - 1; }}
    output acc;
    """
    return LoopKernel(
        name="factorial", source=source, output="acc", expected=acc,
        description="factorial with a data-dependent multiplier",
    )


def fibonacci(n: int = 12) -> LoopKernel:
    """``b = fib(n)`` with the two-variable iteration."""
    a, b = 0, 1
    k = n
    while k > 0:
        a, b = b, a + b
        k -= 1
    source = f"""
    int a = 0; int b = 1; int n = {n};
    while (n > 0) {{ t = a + b; a = b; b = t; n = n - 1; }}
    output a;
    """
    return LoopKernel(
        name="fibonacci", source=source, output="a", expected=a,
        description="Fibonacci: two circulating values plus a temporary",
    )


def gcd_loop(a: int = 252, b: int = 105) -> LoopKernel:
    """Euclid's algorithm by repeated subtraction (both branches of an if in a loop)."""
    x, y = a, b
    while x != y:
        if x > y:
            x -= y
        else:
            y -= x
    source = f"""
    int a = {a}; int b = {b};
    while (a != b) {{
        if (a > b) {{ a = a - b; }} else {{ b = b - a; }}
    }}
    output a;
    """
    return LoopKernel(
        name="gcd_loop", source=source, output="a", expected=x,
        description="Euclid by subtraction: a conditional inside a loop",
    )


def triangular(n: int = 10) -> LoopKernel:
    """Sum of 1..n."""
    total = sum(range(1, n + 1))
    source = f"""
    int n = {n}; int s = 0;
    while (n > 0) {{ s = s + n; n = n - 1; }}
    output s;
    """
    return LoopKernel(
        name="triangular", source=source, output="s", expected=total,
        description="triangular number: accumulation with a data-dependent addend",
    )


#: Registry of default-parameter kernels (benchmarks iterate over this).
LOOP_KERNELS: Dict[str, Callable[..., LoopKernel]] = {
    "accumulation": accumulation,
    "factorial": factorial,
    "fibonacci": fibonacci,
    "gcd_loop": gcd_loop,
    "triangular": triangular,
}
