"""The two worked examples of the paper (Figs. 1 and 2), built explicitly.

These builders reproduce the dataflow graphs of Section III-A1 with the exact
edge labels used in the paper, so that the conversion tests can compare the
generated Gamma reactions against the paper's listings label-for-label.

Example 1 (Fig. 1)::

    int x = 1; int y = 5; int k = 3; int j = 2; int m;
    m = (x + y) - (k * j);

Example 2 (Fig. 2)::

    for (i = z; i > 0; i--)
        x = x + y;

(The paper's text writes ``i < 0`` for the loop condition, but its own Gamma
translation tests ``id1 > 0`` and decrements the counter, i.e. the loop runs
``z`` times; we follow the translation, which is also the only reading that
makes the example compute anything.)

The Fig. 2 builder optionally exposes the loop's exit value on a dangling
``false`` edge of the steer that guards the accumulator.  The paper's listing
discards all values at loop exit (``by 0 else``), which leaves nothing
observable; ``observe_exit=True`` (the default) adds the output edge so the
equivalence experiments can compare results, and ``observe_exit=False``
reproduces the listing verbatim (9 reactions with two ``by 0`` arms).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..dataflow.builder import GraphBuilder
from ..dataflow.graph import DataflowGraph
from ..dataflow.nodes import PORT_FALSE, PORT_IN, PORT_TRUE

__all__ = [
    "example1_graph",
    "example1_expected_result",
    "example2_graph",
    "example2_expected_result",
    "EXAMPLE1_DEFAULTS",
    "EXAMPLE2_DEFAULTS",
    "EXIT_LABEL",
]

#: Default initial values of Example 1 (the paper's ``x, y, k, j``).
EXAMPLE1_DEFAULTS: Dict[str, int] = {"x": 1, "y": 5, "k": 3, "j": 2}

#: Default initial values of Example 2 (``y``: increment, ``z``: trip count, ``x``: accumulator).
EXAMPLE2_DEFAULTS: Dict[str, int] = {"y": 2, "z": 3, "x": 10}

#: Label of the observable loop-exit edge added when ``observe_exit=True``.
EXIT_LABEL = "Cout"


def example1_graph(
    x: int = EXAMPLE1_DEFAULTS["x"],
    y: int = EXAMPLE1_DEFAULTS["y"],
    k: int = EXAMPLE1_DEFAULTS["k"],
    j: int = EXAMPLE1_DEFAULTS["j"],
) -> DataflowGraph:
    """Fig. 1: ``m = (x + y) - (k * j)`` with the paper's edge labels.

    Vertices: roots for x/y/k/j, R1 (+), R2 (*), R3 (-); edges A1, B1, C1, D1
    (initial), B2 and C2 (intermediate) and the dangling output ``m``.
    """
    b = GraphBuilder("example1")
    rx = b.root(x, "x", node_id="x")
    ry = b.root(y, "y", node_id="y")
    rk = b.root(k, "k", node_id="k")
    rj = b.root(j, "j", node_id="j")
    s = b.add(rx, ry, node_id="R1", labels=("A1", "B1"))
    p = b.mul(rk, rj, node_id="R2", labels=("C1", "D1"))
    m = b.sub(s, p, node_id="R3", labels=("B2", "C2"))
    b.output(m, "m")
    return b.build()


def example1_expected_result(
    x: int = EXAMPLE1_DEFAULTS["x"],
    y: int = EXAMPLE1_DEFAULTS["y"],
    k: int = EXAMPLE1_DEFAULTS["k"],
    j: int = EXAMPLE1_DEFAULTS["j"],
) -> int:
    """Reference result of Example 1 computed directly."""
    return (x + y) - (k * j)


def example2_graph(
    y: int = EXAMPLE2_DEFAULTS["y"],
    z: int = EXAMPLE2_DEFAULTS["z"],
    x: int = EXAMPLE2_DEFAULTS["x"],
    observe_exit: bool = True,
) -> DataflowGraph:
    """Fig. 2: the accumulation loop ``for (i = z; i > 0; i--) x = x + y``.

    Node/edge naming follows the paper's Gamma listing:

    * R11, R12, R13 — inctag vertices for the ``y`` (A), counter (B) and
      accumulator (C) values;
    * R14 — the comparison ``> 0`` producing the control values B14/B15/B16;
    * R15, R16, R17 — steer vertices for A, B and C;
    * R18 — the decrement ``- 1``;
    * R19 — the accumulation ``A13 + C13``.

    Initial (root) edges are A1, B1, C1; loop-back edges are A11, B11, C11.
    With ``observe_exit=True`` the false port of steer R17 is exposed as the
    dangling edge ``Cout`` carrying the final accumulator value.
    """
    b = GraphBuilder("example2")
    ry = b.root(y, "y", node_id="y")
    rz = b.root(z, "z", node_id="z")
    rx = b.root(x, "x", node_id="x")

    # Inctag vertices (lozenges).  Their inputs are merged ports: the initial
    # edge from the root plus the loop-back edge added below.
    a12 = b.inctag(ry, node_id="R11", label="A1")
    b12 = b.inctag(rz, node_id="R12", label="B1")
    c12 = b.inctag(rx, node_id="R13", label="C1")

    # Comparison with zero (R14).  Its single result fans out to the three
    # steers under the labels B14, B15, B16; the value fed to it is B12.
    cond = b.compare_imm(">", b12, 0, node_id="R14", label="B12")

    # Steer vertices (triangles).  Data edges: A12, B13, C12; control edges
    # carry copies of the comparison result.
    a_true, _a_false = b.steer(a12, cond, node_id="R15", labels=("A12", "B14"))
    b_true, _b_false = b.steer(b12, cond, node_id="R16", labels=("B13", "B15"))
    c_true, c_false = b.steer(c12, cond, node_id="R17", labels=("C12", "B16"))

    # Loop body: decrement the counter (R18), accumulate (R19).
    b11 = b.arith_imm("-", b_true, 1, node_id="R18", label="B17")
    c11 = b.arith("+", a_true, c_true, node_id="R19", labels=("A13", "C13"))

    # Loop-back edges: steer-A true also feeds R11 again (label A11), the
    # decremented counter feeds R12 (label B11), the new accumulator feeds
    # R13 (label C11).
    b.connect_to_node(a_true, "R11", PORT_IN, label="A11")
    b.connect_to_node(b11, "R12", PORT_IN, label="B11")
    b.connect_to_node(c11, "R13", PORT_IN, label="C11")

    if observe_exit:
        b.output(c_false, EXIT_LABEL)
    return b.build()


def example2_expected_result(
    y: int = EXAMPLE2_DEFAULTS["y"],
    z: int = EXAMPLE2_DEFAULTS["z"],
    x: int = EXAMPLE2_DEFAULTS["x"],
) -> int:
    """Reference result of Example 2 (the accumulator after the loop)."""
    acc = x
    i = z
    while i > 0:
        acc = acc + y
        i -= 1
    return acc


def example2_expected_iterations(z: int = EXAMPLE2_DEFAULTS["z"]) -> int:
    """Number of loop-body executions of Example 2."""
    return max(z, 0)
