"""Classic Gamma workloads at configurable sizes.

Thin wrappers around :mod:`repro.gamma.stdlib` that pair each program with a
seeded random initial multiset and the expected result, so the scheduler and
scaling benchmarks (E6, E9) can sweep sizes without duplicating setup code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..gamma.program import GammaProgram
from ..gamma.stdlib import (
    DATA_LABEL,
    exchange_sort,
    gcd_program,
    indexed_multiset,
    max_element,
    min_element,
    prime_sieve,
    product_reduction,
    remove_duplicates,
    sum_reduction,
    values_multiset,
)
from ..multiset.multiset import Multiset

__all__ = ["ClassicWorkload", "make_workload", "CLASSIC_WORKLOADS"]


@dataclass
class ClassicWorkload:
    """A Gamma program plus an initial multiset and its expected stable values."""

    name: str
    program: GammaProgram
    initial: Multiset
    expected_values: List
    label: str = DATA_LABEL

    def expected_sorted(self) -> List:
        return sorted(self.expected_values)


def _random_values(size: int, seed: int, low: int = 1, high: int = 1000) -> List[int]:
    rng = random.Random(seed)
    return [rng.randint(low, high) for _ in range(size)]


def make_workload(name: str, size: int = 32, seed: int = 0) -> ClassicWorkload:
    """Build the named classic workload at the given size."""
    if name == "min_element":
        values = _random_values(size, seed)
        return ClassicWorkload(name, min_element(), values_multiset(values), [min(values)])
    if name == "max_element":
        values = _random_values(size, seed)
        return ClassicWorkload(name, max_element(), values_multiset(values), [max(values)])
    if name == "sum_reduction":
        values = _random_values(size, seed)
        return ClassicWorkload(name, sum_reduction(), values_multiset(values), [sum(values)])
    if name == "product_reduction":
        values = _random_values(size, seed, low=1, high=5)
        expected = 1
        for v in values:
            expected *= v
        return ClassicWorkload(name, product_reduction(), values_multiset(values), [expected])
    if name == "gcd":
        rng = random.Random(seed)
        base = rng.randint(2, 30)
        values = [base * rng.randint(1, 50) for _ in range(size)]
        import math

        expected = 0
        for v in values:
            expected = math.gcd(expected, v)
        return ClassicWorkload(name, gcd_program(), values_multiset(values), [expected])
    if name == "prime_sieve":
        upper = max(size, 4)
        values = list(range(2, upper + 1))
        primes = [n for n in values if all(n % d for d in range(2, int(n**0.5) + 1))]
        return ClassicWorkload(name, prime_sieve(), values_multiset(values), primes)
    if name == "exchange_sort":
        values = _random_values(size, seed)
        return ClassicWorkload(name, exchange_sort(), indexed_multiset(values), sorted(values))
    if name == "remove_duplicates":
        rng = random.Random(seed)
        values = [rng.randint(1, max(2, size // 2)) for _ in range(size)]
        return ClassicWorkload(
            name, remove_duplicates(), values_multiset(values), sorted(set(values))
        )
    raise ValueError(
        f"unknown classic workload {name!r}; "
        f"valid names: {', '.join(CLASSIC_WORKLOADS)}"
    )


#: Names accepted by :func:`make_workload`, in benchmark order.
CLASSIC_WORKLOADS: Sequence[str] = (
    "min_element",
    "max_element",
    "sum_reduction",
    "product_reduction",
    "gcd",
    "prime_sieve",
    "exchange_sort",
    "remove_duplicates",
)
