"""Stoichiometric reaction networks and their conserved quantities.

Chemical reaction networks give the reproduction a workload family whose
correctness is checkable on *every* backend even where exact stable multisets
differ: a reaction network carries **conserved quantities** (mass, charge,
moiety totals) that any schedule must preserve, so non-confluent programs —
out of reach for the stable-multiset differential of the conformance suite —
still get a machine-checkable oracle.

The module has three layers:

* :class:`NetworkReaction` / :class:`ReactionNetwork` — a plain stoichiometric
  model: species, reactions with integer coefficients, and the stoichiometric
  matrix ``S`` (species x reactions, net production per firing).
* **Conservation analysis** — :meth:`ReactionNetwork.conserved_quantities`
  derives a basis of the left null space of ``S`` (vectors ``y`` with
  ``y^T S = 0``) by exact Gauss-Jordan elimination over ``Fraction``, scaled
  to primitive integer vectors.  :meth:`ReactionNetwork.invariant_value`
  evaluates such a vector against a runtime multiset, which is what the
  invariant-based conformance rows assert before/after execution.
* **Gamma translation** — :meth:`ReactionNetwork.to_gamma_program` maps each
  network reaction to a Gamma reaction consuming one element per reactant
  copy and producing one element per product copy (species name = element
  label), the same species-per-label encoding the Signal2RGraph line of work
  uses for signalling pathways.

Two builders ship ready-made networks: :func:`engelhardt_network` (a mouse
olfactory signalling pathway encoded as weighted edges, catalytic edges
marked by weight 1) and :func:`condensation_network` (polymerization
``s_i + s_j -> s_{i+j}`` — terminating, mass-conserving, and deliberately
*non-confluent*, the workhorse of the sharded-backend invariant rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..gamma.expr import Const
from ..gamma.pattern import pattern, template
from ..gamma.program import GammaProgram
from ..gamma.reaction import Branch, Reaction
from ..multiset.element import Element
from ..multiset.multiset import Multiset

__all__ = [
    "NetworkReaction",
    "ReactionNetwork",
    "engelhardt_network",
    "condensation_network",
    "species_multiset",
]


@dataclass(frozen=True)
class NetworkReaction:
    """One reaction of a stoichiometric model.

    ``reactants`` and ``products`` are ``(species, coefficient)`` pairs with
    positive integer coefficients.  A species may appear on both sides
    (catalysts have net coefficient zero but still gate the Gamma firing).
    """

    name: str
    reactants: Tuple[Tuple[str, int], ...]
    products: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        for side_name, side in (("reactant", self.reactants), ("product", self.products)):
            for species, coefficient in side:
                if coefficient <= 0:
                    raise ValueError(
                        f"reaction {self.name!r}: {side_name} {species!r} has "
                        f"non-positive coefficient {coefficient}"
                    )

    def net_coefficient(self, species: str) -> int:
        """Net production of ``species`` per firing (products minus reactants)."""
        produced = sum(c for s, c in self.products if s == species)
        consumed = sum(c for s, c in self.reactants if s == species)
        return produced - consumed


@dataclass(frozen=True)
class ReactionNetwork:
    """A set of species and the stoichiometric reactions over them."""

    species: Tuple[str, ...]
    reactions: Tuple[NetworkReaction, ...]
    name: str = "network"
    _index: Dict[str, int] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if len(set(self.species)) != len(self.species):
            raise ValueError("species names must be unique")
        known = set(self.species)
        for reaction in self.reactions:
            for species, _ in (*reaction.reactants, *reaction.products):
                if species not in known:
                    raise ValueError(
                        f"reaction {reaction.name!r} references unknown "
                        f"species {species!r}"
                    )
        object.__setattr__(self, "_index", {s: i for i, s in enumerate(self.species)})

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_weighted_edges(
        cls,
        edges: Iterable[Tuple[int, int, int, int]],
        names: Dict[int, str],
        name: str = "network",
    ) -> "ReactionNetwork":
        """Build a network from ``(source, target, weight, reaction_id)`` edges.

        The encoding follows the weighted reaction graphs of the signalling
        literature (Signal2RGraph): edges sharing a ``reaction_id`` form one
        reaction whose reactants are the distinct sources and whose products
        are the distinct targets.  Weight 1 marks a *catalytic* edge — its
        source is re-produced by the reaction (net coefficient zero), any
        other weight consumes the source.
        """
        grouped: Dict[int, List[Tuple[int, int, int]]] = {}
        order: List[int] = []
        for source, target, weight, reaction_id in edges:
            if reaction_id not in grouped:
                grouped[reaction_id] = []
                order.append(reaction_id)
            grouped[reaction_id].append((source, target, weight))
        species: List[str] = []
        for node in sorted(names):
            if names[node] not in species:
                species.append(names[node])
        reactions: List[NetworkReaction] = []
        for reaction_id in order:
            group = grouped[reaction_id]
            reactant_counts: Dict[str, int] = {}
            product_counts: Dict[str, int] = {}
            for source, target, weight in group:
                source_name, target_name = names[source], names[target]
                if source_name not in reactant_counts:
                    reactant_counts[source_name] = 1
                product_counts[target_name] = product_counts.get(target_name, 0) + 1
                if weight == 1 and source_name not in product_counts:
                    product_counts[source_name] = 1
            reactions.append(
                NetworkReaction(
                    name=f"r{reaction_id}",
                    reactants=tuple(reactant_counts.items()),
                    products=tuple(product_counts.items()),
                )
            )
        return cls(species=tuple(species), reactions=tuple(reactions), name=name)

    # -- stoichiometry --------------------------------------------------------------
    def stoichiometric_matrix(self) -> List[List[int]]:
        """``S[i][k]`` = net production of species ``i`` by reaction ``k``."""
        return [
            [reaction.net_coefficient(species) for reaction in self.reactions]
            for species in self.species
        ]

    def conserved_quantities(self) -> List[Tuple[int, ...]]:
        """A basis of conservation vectors, as primitive integer tuples.

        A vector ``y`` (one entry per species) is conserved iff
        ``y^T S = 0`` — equivalently ``S^T y = 0`` — so the basis is the
        kernel of ``S^T``, computed by exact Gauss-Jordan elimination over
        :class:`~fractions.Fraction`.  Each basis vector is scaled to
        primitive integers (multiplied by the LCM of denominators, divided
        by the GCD, sign fixed so the first nonzero entry is positive).
        """
        transpose = [
            [Fraction(reaction.net_coefficient(species)) for species in self.species]
            for reaction in self.reactions
        ]
        return [_primitive(vector) for vector in _kernel(transpose, len(self.species))]

    def invariant_value(self, vector: Sequence[int], multiset: Multiset) -> int:
        """Evaluate a conservation vector against a runtime multiset.

        The value is ``sum(vector[i] * count_of(species[i]))`` over label
        counts — the runtime encoding puts the species name in the element
        *label*, so element values and tags do not participate.
        """
        if len(vector) != len(self.species):
            raise ValueError(
                f"vector has {len(vector)} entries for {len(self.species)} species"
            )
        counts = multiset.label_counts()
        return sum(
            coefficient * counts.get(species, 0)
            for coefficient, species in zip(vector, self.species)
        )

    def invariant_values(self, multiset: Multiset) -> Tuple[int, ...]:
        """All conserved-quantity values of ``multiset``, in basis order."""
        return tuple(
            self.invariant_value(vector, multiset)
            for vector in self.conserved_quantities()
        )

    # -- Gamma translation ----------------------------------------------------------
    def to_gamma_program(self) -> GammaProgram:
        """Translate the network into a Gamma program over labelled elements.

        Each reaction consumes one element per reactant copy (label = species
        name, value and tag unconstrained) and produces one unit element per
        product copy.  Reactions with no reactants cannot be expressed — a
        Gamma reaction must consume at least one element — and raise
        ``ValueError``.
        """
        gamma_reactions: List[Reaction] = []
        for reaction in self.reactions:
            replace = []
            slot = 0
            for species, coefficient in reaction.reactants:
                for _ in range(coefficient):
                    replace.append(pattern(f"v{slot}", species, f"t{slot}"))
                    slot += 1
            if not replace:
                raise ValueError(
                    f"reaction {reaction.name!r} has no reactants; Gamma "
                    f"reactions must consume at least one element"
                )
            productions = [
                template(Const(1), species, Const(0))
                for species, coefficient in reaction.products
                for _ in range(coefficient)
            ]
            gamma_reactions.append(
                Reaction(
                    name=reaction.name,
                    replace=replace,
                    branches=[Branch(productions=productions)],
                )
            )
        return GammaProgram(gamma_reactions, name=self.name)


def species_multiset(counts: Dict[str, int], value: int = 1) -> Multiset:
    """A multiset with ``counts[species]`` unit elements per species label."""
    multiset = Multiset()
    for species, count in counts.items():
        if count < 0:
            raise ValueError(f"negative count {count} for species {species!r}")
        if count:
            multiset.add(Element(value=value, label=species, tag=0), count)
    return multiset


# -- exact linear algebra (pure python, no numpy) -------------------------------------

def _kernel(matrix: List[List[Fraction]], columns: int) -> List[List[Fraction]]:
    """Basis of ``{y : matrix @ y = 0}`` by Gauss-Jordan over Fractions."""
    rows = [row[:] for row in matrix]
    pivot_of_column: Dict[int, int] = {}
    rank = 0
    for column in range(columns):
        pivot_row = next(
            (r for r in range(rank, len(rows)) if rows[r][column] != 0), None
        )
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot = rows[rank][column]
        rows[rank] = [entry / pivot for entry in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][column] != 0:
                factor = rows[r][column]
                rows[r] = [a - factor * b for a, b in zip(rows[r], rows[rank])]
        pivot_of_column[column] = rank
        rank += 1
    basis: List[List[Fraction]] = []
    for free in range(columns):
        if free in pivot_of_column:
            continue
        vector = [Fraction(0)] * columns
        vector[free] = Fraction(1)
        for column, row in pivot_of_column.items():
            vector[column] = -rows[row][free]
        basis.append(vector)
    return basis


def _primitive(vector: List[Fraction]) -> Tuple[int, ...]:
    """Scale a rational vector to coprime integers, first nonzero positive."""
    lcm = 1
    for entry in vector:
        lcm = lcm * entry.denominator // gcd(lcm, entry.denominator)
    integers = [int(entry * lcm) for entry in vector]
    divisor = 0
    for entry in integers:
        divisor = gcd(divisor, entry)
    if divisor > 1:
        integers = [entry // divisor for entry in integers]
    first = next((entry for entry in integers if entry != 0), 0)
    if first < 0:
        integers = [-entry for entry in integers]
    return tuple(integers)


# -- ready-made networks ---------------------------------------------------------------

#: Node names of the Engelhardt mouse olfactory signalling pathway.
ENGELHARDT_SPECIES = {
    1: "ACM2", 2: "Gbg", 3: "Gas", 4: "GRK6", 5: "Gao", 6: "Gai",
    7: "RGS14", 8: "AC2", 9: "AC5", 10: "cAMP-GEF1", 11: "PKA",
    12: "GRK2", 13: "cAMP", 14: "AMP", 15: "Tubulin",
}

#: Weighted edges ``(source, target, weight, reaction_id)`` of the pathway;
#: weight 1 marks a catalytic source (re-produced by its reaction).
ENGELHARDT_EDGES = (
    (1, 2, 0, 1), (1, 3, 0, 2), (1, 6, 0, 3), (1, 5, 0, 4),
    (11, 4, 0, 5), (11, 7, 0, 6), (7, 6, 1, 7), (7, 5, 1, 8),
    (3, 9, 0, 9), (3, 8, 0, 9), (6, 9, 1, 10), (2, 8, 0, 11),
    (2, 9, 1, 11), (12, 10, 1, 12), (11, 12, 0, 13), (10, 7, 0, 14),
    (9, 13, 0, 15), (8, 13, 0, 15), (11, 14, 0, 16), (13, 10, 0, 17),
    (13, 14, 0, 18), (5, 15, 0, 19), (14, 15, 0, 20), (12, 15, 0, 21),
    (11, 15, 0, 22), (4, 1, 1, 23), (13, 11, 0, 24), (11, 9, 1, 25),
    (10, 15, 0, 26),
)


def engelhardt_network() -> ReactionNetwork:
    """The Engelhardt mouse olfactory signalling pathway as a reaction network.

    Encoded from the weighted reaction-graph representation used by the
    Signal2RGraph line of work.  The Gamma translation of this network is
    *divergent* (catalytic reactions keep producing), so engine-backend
    checks against it must run under a step budget with
    ``raise_on_budget=False`` and assert invariants on the partial result.
    """
    return ReactionNetwork.from_weighted_edges(
        ENGELHARDT_EDGES, ENGELHARDT_SPECIES, name="engelhardt_olfactory"
    )


def condensation_network(max_weight: int, prefix: str = "s") -> ReactionNetwork:
    """Polymerization ``s_i + s_j -> s_{i+j}``: terminating, non-confluent.

    Species ``s_1 .. s_max_weight`` carry molecular weight equal to their
    index; every firing strictly reduces the molecule count, so the program
    terminates, while the final multiset depends on pairing order — exactly
    the shape the invariant conformance rows need.  The left null space of
    its stoichiometric matrix is one-dimensional, spanned by the weight
    vector ``(1, 2, ..., max_weight)``.
    """
    if max_weight < 2:
        raise ValueError("max_weight must be at least 2")
    species = tuple(f"{prefix}{i}" for i in range(1, max_weight + 1))
    reactions = []
    for i in range(1, max_weight + 1):
        for j in range(i, max_weight + 1 - i):
            reactants = ((species[i - 1], 2),) if i == j else (
                (species[i - 1], 1), (species[j - 1], 1)
            )
            reactions.append(
                NetworkReaction(
                    name=f"c{i}_{j}",
                    reactants=reactants,
                    products=((species[i + j - 1], 1),),
                )
            )
    return ReactionNetwork(
        species=species, reactions=tuple(reactions), name=f"condensation_{max_weight}"
    )
