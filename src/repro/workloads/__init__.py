"""Workload generators and the paper's own examples/listings."""

from .chemistry import WASTE_LABEL, ChemistryWorkload, PoolFeeder, make_soup, multiset_mass
from .classic import CLASSIC_WORKLOADS, ClassicWorkload, make_workload
from .expressions import ExpressionSpec, expression_sweep, random_expression_graph
from .loops import (
    LOOP_KERNELS,
    LoopKernel,
    accumulation,
    factorial,
    fibonacci,
    gcd_loop,
    triangular,
)
from .paper_examples import (
    EXAMPLE1_DEFAULTS,
    EXAMPLE2_DEFAULTS,
    EXIT_LABEL,
    example1_expected_result,
    example1_graph,
    example2_expected_result,
    example2_graph,
)
from .stoichiometry import (
    NetworkReaction,
    ReactionNetwork,
    condensation_network,
    engelhardt_network,
    species_multiset,
)
from .paper_listings import (
    ALL_LISTINGS,
    EQ2_MIN_ELEMENT,
    EXAMPLE1_INIT,
    EXAMPLE1_REACTIONS,
    EXAMPLE1_REDUCED,
    EXAMPLE2_INIT,
    EXAMPLE2_REACTIONS,
    EXAMPLE2_REDUCED,
    example1_init_source,
    example2_init_source,
)

__all__ = [
    # paper examples (Figs. 1 and 2)
    "example1_graph", "example1_expected_result", "EXAMPLE1_DEFAULTS",
    "example2_graph", "example2_expected_result", "EXAMPLE2_DEFAULTS", "EXIT_LABEL",
    # paper listings (Gamma source text)
    "EQ2_MIN_ELEMENT", "EXAMPLE1_REACTIONS", "EXAMPLE1_REDUCED",
    "EXAMPLE2_REACTIONS", "EXAMPLE2_REDUCED", "EXAMPLE1_INIT", "EXAMPLE2_INIT",
    "ALL_LISTINGS", "example1_init_source", "example2_init_source",
    # generators
    "ExpressionSpec", "random_expression_graph", "expression_sweep",
    "LoopKernel", "accumulation", "factorial", "fibonacci", "gcd_loop", "triangular",
    "LOOP_KERNELS",
    "ClassicWorkload", "make_workload", "CLASSIC_WORKLOADS",
    # reaction-network pack (chemistry soups + stoichiometric models)
    "ChemistryWorkload", "PoolFeeder", "make_soup", "multiset_mass", "WASTE_LABEL",
    "NetworkReaction", "ReactionNetwork", "condensation_network",
    "engelhardt_network", "species_multiset",
]
