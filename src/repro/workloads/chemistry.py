"""Seeded chemistry soups: terminating, mass-conserving, non-confluent.

The conformance fuzz suite needs confluent programs because it compares
stable multisets across backends.  Chemistry soups deliberately drop the
confluence requirement — different schedules reach different stable states —
and replace the oracle with a **conserved quantity**: every reaction family
preserves total *mass* (the sum of ``value * count`` over all elements,
waste included), so any backend's final multiset must carry exactly the
initial mass.  That makes the soups the workload of choice for the
invariant-based conformance rows and for the load-balance benchmarks, where
a skewed soup exposes placement quality.

A soup is a union of independent *blocks*.  Each block owns a chain of
species labels and draws reactions from four families (``N`` = species per
block, species position ``i`` in ``0..N-1``):

* **condense** — ``a@s_i, b@s_j -> (a+b)@s_k``: mass equal, molecule count
  strictly down.  A condense chain over adjacent species joins the whole
  block into one routing group (shared footprints), which keeps blocks
  migratable as units under elasticity.
* **transform** — ``x@s_i -> x@s_j`` with ``j > i``: mass and count equal,
  species position strictly up.
* **catalytic** — ``c@s_i, x@s_j -> c@s_i, x@s_k`` with ``k > j``: the
  catalyst survives, the substrate moves up-chain.
* **decay** — ``x@s_i -> (x-1)@s_i, 1@waste`` guarded by ``x > T`` with
  ``T >= 1``: non-waste mass strictly down, total mass preserved (the unit
  lands on the inert waste label no reaction consumes).

Termination follows from the lexicographic potential (non-waste mass,
molecule count, sum of ``N - position``): every family strictly decreases
it, and element values never drop below 1.

:class:`PoolFeeder` replays a soup's molecule pool as a streamed injection
schedule, either directly into a :class:`~repro.api.StreamingGammaRuntime`
or over the wire through an ingestion gateway, so the same workload drives
batch, streaming, and network-fed conformance rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..gamma.expr import BinOp, Compare, Const, Var
from ..gamma.pattern import ElementTemplate, pattern, template
from ..gamma.program import GammaProgram
from ..gamma.reaction import Branch, Reaction
from ..multiset.element import Element
from ..multiset.multiset import Multiset
from ..multiset.partition import home_of

__all__ = ["ChemistryWorkload", "PoolFeeder", "make_soup", "WASTE_LABEL"]

#: Inert label decay routes unit masses to; no soup reaction consumes it.
WASTE_LABEL = "waste"


def multiset_mass(multiset: Multiset) -> int:
    """Total mass of a multiset: ``sum(value * count)`` over all elements."""
    return sum(element.value * count for element, count in multiset.counts().items())


@dataclass(frozen=True)
class ChemistryWorkload:
    """A generated soup: program, molecule pool, and its conserved mass."""

    name: str
    program: GammaProgram
    initial: Multiset
    #: Non-waste species labels, grouped per block in chain order.
    species: Tuple[Tuple[str, ...], ...]
    waste_label: str
    #: Mass of ``initial`` — the value every execution must preserve.
    initial_mass: int

    def mass(self, multiset: Multiset) -> int:
        """Mass of ``multiset`` under this workload's invariant."""
        return multiset_mass(multiset)

    def all_species(self) -> Tuple[str, ...]:
        """Every non-waste species label, flattened across blocks."""
        return tuple(label for block in self.species for label in block)


def _condense(name: str, left: str, right: str, target: str) -> Reaction:
    """``a@left, b@right -> (a+b)@target`` — mass equal, count down."""
    return Reaction(
        name=name,
        replace=[pattern("a", left, "t1"), pattern("b", right, "t2")],
        branches=[
            Branch(
                productions=[
                    ElementTemplate(
                        value=BinOp("+", Var("a"), Var("b")),
                        label=Const(target),
                        tag=Const(0),
                    )
                ]
            )
        ],
    )


def _transform(name: str, source: str, target: str) -> Reaction:
    """``x@source -> x@target`` — position strictly up the block chain."""
    return Reaction(
        name=name,
        replace=[pattern("a", source, "t")],
        branches=[Branch(productions=[template("a", target, Const(0))])],
    )


def _catalytic(name: str, catalyst: str, substrate: str, target: str) -> Reaction:
    """``c@catalyst, x@substrate -> c@catalyst, x@target`` (substrate up-chain)."""
    return Reaction(
        name=name,
        replace=[pattern("c", catalyst, "t1"), pattern("x", substrate, "t2")],
        branches=[
            Branch(
                productions=[
                    template("c", catalyst, Const(0)),
                    template("x", target, Const(0)),
                ]
            )
        ],
    )


def _decay(name: str, source: str, waste: str, threshold: int) -> Reaction:
    """``x@source -> (x-1)@source, 1@waste where x > threshold`` (mass moves)."""
    return Reaction(
        name=name,
        replace=[pattern("a", source, "t")],
        branches=[
            Branch(
                productions=[
                    ElementTemplate(
                        value=BinOp("-", Var("a"), Const(1)),
                        label=Const(source),
                        tag=Const(0),
                    ),
                    template(Const(1), waste, Const(0)),
                ]
            )
        ],
        guard=Compare(">", Var("a"), Const(threshold)),
    )


def make_soup(
    blocks: int = 2,
    species_per_block: int = 4,
    molecules: int = 32,
    seed: int = 0,
    value_low: int = 1,
    value_high: int = 9,
    skew: float = 0.0,
    decay_threshold: int = 2,
    label_base: Optional[Callable[[int], str]] = None,
    element_home: Optional[Tuple[int, int]] = None,
) -> ChemistryWorkload:
    """Generate a seeded chemistry soup.

    Parameters
    ----------
    blocks, species_per_block:
        Number of independent reaction blocks and species per block
        (``species_per_block >= 2`` so the condense chain exists).
    molecules, value_low, value_high:
        Pool size and the value range molecules draw from (values must stay
        ``>= 1`` so decay never drops a value below 1).
    seed:
        Drives every random choice; equal seeds give equal workloads.
    skew:
        Probability mass routed to block 0: each molecule lands in block 0
        with probability ``skew`` and uniformly otherwise, so ``skew=0.9``
        yields the hot-block pools the balance benchmarks need.
    decay_threshold:
        Guard constant ``T >= 1`` of the decay family.
    label_base:
        Block index -> label prefix (default ``b{index}``); the benchmarks
        override it to steer routing-group homes.
    element_home:
        Optional ``(shard, num_shards)``: bump each molecule's value until
        its hash placement under
        :func:`~repro.multiset.partition.home_of` is ``shard``, so a
        benchmark can pin the whole pool onto one shard.
    """
    if blocks < 1:
        raise ValueError("blocks must be at least 1")
    if species_per_block < 2:
        raise ValueError("species_per_block must be at least 2")
    if value_low < 1:
        raise ValueError("value_low must be at least 1 (decay keeps values >= 1)")
    if value_high < value_low:
        raise ValueError("value_high must be >= value_low")
    if not 0.0 <= skew <= 1.0:
        raise ValueError("skew must be within [0, 1]")
    if decay_threshold < 1:
        raise ValueError("decay_threshold must be at least 1")
    base = label_base if label_base is not None else (lambda index: f"b{index}")
    rng = random.Random(seed)

    species: List[Tuple[str, ...]] = []
    reactions: List[Reaction] = []
    for block in range(blocks):
        labels = tuple(f"{base(block)}s{i}" for i in range(species_per_block))
        species.append(labels)
        # The condense chain: adjacent species react, joining the block's
        # labels into one routing group; targets are free (mass conserves
        # regardless), which is what makes the soup non-confluent.
        for i in range(species_per_block - 1):
            target = labels[rng.randrange(species_per_block)]
            reactions.append(
                _condense(f"B{block}_condense{i}", labels[i], labels[i + 1], target)
            )
        for index in range(rng.randint(1, 2)):
            i = rng.randrange(species_per_block - 1)
            j = rng.randrange(i + 1, species_per_block)
            reactions.append(
                _transform(f"B{block}_transform{index}", labels[i], labels[j])
            )
        if species_per_block >= 3 and rng.random() < 0.75:
            j = rng.randrange(species_per_block - 1)
            k = rng.randrange(j + 1, species_per_block)
            catalyst = labels[rng.randrange(species_per_block)]
            reactions.append(
                _catalytic(f"B{block}_catalytic0", catalyst, labels[j], labels[k])
            )
        decay_source = labels[rng.randrange(species_per_block)]
        reactions.append(
            _decay(f"B{block}_decay0", decay_source, WASTE_LABEL, decay_threshold)
        )

    pool = Multiset()
    for _ in range(molecules):
        if blocks > 1 and rng.random() < skew:
            block = 0
        else:
            block = rng.randrange(blocks)
        labels = species[block]
        label = labels[rng.randrange(len(labels))]
        value = rng.randint(value_low, value_high)
        element = Element(value=value, label=label, tag=0)
        if element_home is not None:
            shard, num_shards = element_home
            while home_of(element, num_shards) != shard:
                element = Element(value=element.value + 1, label=label, tag=0)
        pool.add(element)

    program = GammaProgram(reactions, name=f"soup_seed{seed}")
    return ChemistryWorkload(
        name=f"chemistry_soup(blocks={blocks}, species={species_per_block}, "
        f"molecules={molecules}, seed={seed})",
        program=program,
        initial=pool,
        species=tuple(species),
        waste_label=WASTE_LABEL,
        initial_mass=multiset_mass(pool),
    )


class PoolFeeder:
    """Replays a soup's molecule pool as a continuously-fed stream.

    The pool is shuffled (seeded), split into a held-back starting multiset
    plus fixed-size injection batches, and offered to a streaming runtime —
    directly (:meth:`feed`) or through an ingestion gateway over a real
    socket (:meth:`feed_via_gateway`).  :meth:`batch_union` reconstructs the
    batch-equivalent input, so invariant checks can compare a streamed run
    against the mass of the full pool.
    """

    def __init__(
        self,
        workload: ChemistryWorkload,
        batch_size: int = 8,
        hold_back: float = 0.5,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if not 0.0 <= hold_back <= 1.0:
            raise ValueError("hold_back must be within [0, 1]")
        self.workload = workload
        self.batch_size = batch_size
        elements: List[Element] = list(workload.initial)
        random.Random(seed).shuffle(elements)
        held = int(len(elements) * hold_back)
        self.initial = Multiset(elements[:held])
        self._streamed = elements[held:]
        self._batches = tuple(
            tuple(self._streamed[start : start + batch_size])
            for start in range(0, len(self._streamed), batch_size)
        )

    def schedule(self) -> Tuple[Tuple[Element, ...], ...]:
        """The injection batches, in feeding order."""
        return self._batches

    def elements(self) -> List[Element]:
        """All streamed elements, flattened in feeding order."""
        return list(self._streamed)

    def injected_mass(self) -> int:
        """Mass of the streamed elements (pool mass minus the held-back part)."""
        return sum(element.value for element in self._streamed)

    def batch_union(self) -> Multiset:
        """Held-back multiset plus every streamed element — the full pool."""
        union = self.initial.copy()
        for element in self._streamed:
            union.add(element)
        return union

    def feed(self, runtime: Any) -> Any:
        """Drive ``runtime`` (a streaming runtime) with the scripted schedule."""
        return runtime.run(self.initial.copy(), schedule=self.schedule())

    def feed_via_gateway(self, runtime: Any, tenant: str = "feeder") -> Any:
        """Drive ``runtime`` through its socket gateway, one put per batch.

        Serves the runtime's gateway, connects a
        :class:`~repro.runtime.net.gateway.GatewayClient`, and alternates
        blocking puts with pumps until the pool is exhausted, then drains.
        The runtime is closed before returning (matching :meth:`feed`, which
        delegates to ``runtime.run``).
        """
        from ..runtime.net.gateway import GatewayClient

        gateway = runtime.serve_gateway()
        client = GatewayClient(gateway.port, tenant=tenant)
        try:
            runtime.start(self.initial.copy())
            runtime.pump()
            for batch in self._batches:
                if batch:
                    client.put(list(batch))
                runtime.pump()
            runtime.close_stream()
            while not runtime.drained:
                runtime.pump()
            return runtime.result()
        finally:
            client.close()
            runtime.close()
