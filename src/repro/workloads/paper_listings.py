"""The paper's Gamma listings, verbatim, as DSL source text.

Section III-A1 gives the Gamma code obtained by hand for Example 1 (R1–R3) and
Example 2 (R11–R19), Eq. 2 gives the minimum-element reaction, and Section
III-A3 gives the reduced variants (Rd1 and Rd11–Rd16).  Keeping them here as
source strings serves two purposes:

* the DSL tests (experiment E4) parse each listing and check that the compiled
  reactions behave like the ones our Algorithm 1 implementation generates;
* the granularity experiments (experiment E3) execute the reduced listings and
  compare their results and parallelism against the original nine-reaction
  program.

Two textual adjustments are made, both documented in EXPERIMENTS.md:

* the listings' ``If`` (capital I) is accepted as-is by the case-insensitive
  lexer, so no change is needed there;
* the paper's reduced listing Rd12 contains the production list
  ``[id1,'B14',v+1], [id1,'B12',v+1], [id1,'B16',v+1]`` — i.e. the *counter
  value* is also sent to the two steer control inputs — and Rd14/Rd15/Rd16 test
  ``id2 > 0`` / ``id1 > 0`` on it directly; this is exactly what the paper
  prints and is kept verbatim.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "EQ2_MIN_ELEMENT",
    "EXAMPLE1_REACTIONS",
    "EXAMPLE1_REDUCED",
    "EXAMPLE2_REACTIONS",
    "EXAMPLE2_REDUCED",
    "EXAMPLE1_INIT",
    "EXAMPLE2_INIT",
    "ALL_LISTINGS",
]

#: Equation 2: the minimum-element reaction in the Muylaert-style syntax.
EQ2_MIN_ELEMENT = """
R = replace (x, y)
    by x
    where x < y
"""

#: Initial multiset of Example 1 (Section III-A1): {[1,A1], [5,B1], [3,C1], [2,D1]}.
EXAMPLE1_INIT = "init { [1,'A1',0], [5,'B1',0], [3,'C1',0], [2,'D1',0] }"

#: Example 1: the three reactions R1–R3 produced from the Fig. 1 graph.
EXAMPLE1_REACTIONS = """
R1 = replace [id1, 'A1'], [id2, 'B1']
     by [id1 + id2, 'B2']

R2 = replace [id1, 'C1'], [id2, 'D1']
     by [id1 * id2, 'C2']

R3 = replace [id1, 'B2'], [id2, 'C2']
     by [id1 - id2, 'm']
"""

#: Example 1 reduced to a single reaction (Section III-A3, Rd1).
EXAMPLE1_REDUCED = """
Rd1 = replace [id1,'A1'], [id2,'B1'], [id3,'C1'], [id4,'D1']
      by [(id1+id2)-(id3*id4),'m']
"""

#: Initial multiset of Example 2 with the paper's symbolic values bound to the
#: defaults y=2, z=3, x=10 used throughout the reproduction.
EXAMPLE2_INIT = "init { [2,'A1',0], [3,'B1',0], [10,'C1',0] }"

#: Example 2: the nine reactions R11–R19 produced from the Fig. 2 graph.
EXAMPLE2_REACTIONS = """
R11 = replace [id1,x,v]
      by [id1,'A12',v+1]
      if (x=='A1') or (x=='A11')

R12 = replace [id1,x,v]
      by [id1,'B12',v+1], [id1,'B13',v+1]
      if (x=='B1') or (x=='B11')

R13 = replace [id1,x,v]
      by [id1,'C12',v+1]
      if (x=='C1') or (x=='C11')

R14 = replace [id1, 'B12', v]
      by [1,'B14',v], [1,'B15',v], [1,'B16',v]
      If id1 > 0
      by [0,'B14',v], [0,'B15',v], [0,'B16',v]
      else

R15 = replace [id1,'A12',v], [id2,'B14',v]
      by [id1,'A11',v], [id1,'A13',v]
      If id2 == 1
      by 0
      else

R16 = replace [id1,'B13',v], [id2,'B15',v]
      by [id1,'B17',v]
      If id2 == 1
      by 0
      else

R17 = replace [id1,'C12',v], [id2,'B16',v]
      by [id1,'C13',v]
      If id2 == 1
      by 0
      else

R18 = replace [id1,'B17',v]
      by [id1 - 1,'B11',v]

R19 = replace [id1,'A13',v], [id2,'C13',v]
      by [id1+id2,'C11',v]
"""

#: Example 2 reduced to six reactions (Section III-A3, Rd11–Rd16).
EXAMPLE2_REDUCED = """
Rd11 = replace [id1,x,v]
       by [id1,'A12',v+1]
       If (x=='A1') or (x=='A11')

Rd12 = replace [id1,x,v]
       by [id1,'B14',v+1], [id1,'B12',v+1], [id1,'B16',v+1]
       If (x=='B1') or (x=='B11')

Rd13 = replace [id1,x,v]
       by [id1,'C12',v+1]
       If (x=='C1') or (x=='C11')

Rd14 = replace [id1,'A12',v], [id2,'B14',v]
       by [id1,'A11',v], [id1,'A13',v]
       If id2 > 0
       by 0
       else

Rd15 = replace [id1,'B12',v]
       by [id1 - 1,'B11',v]
       If id1 > 0
       by 0
       else

Rd16 = replace [id1,'A13',v], [id2,'B16',v], [id3,'C12',v]
       by [id1 + id3,'C11',v]
       If id2 > 0
       by 0
       else
"""

#: All listings keyed by a short experiment-friendly name.
ALL_LISTINGS: Dict[str, str] = {
    "eq2_min_element": EQ2_MIN_ELEMENT,
    "example1": EXAMPLE1_REACTIONS,
    "example1_reduced": EXAMPLE1_REDUCED,
    "example2": EXAMPLE2_REACTIONS,
    "example2_reduced": EXAMPLE2_REDUCED,
}


def example2_init_source(y: int = 2, z: int = 3, x: int = 10) -> str:
    """The Example 2 initial multiset for arbitrary initial values."""
    return f"init {{ [{y},'A1',0], [{z},'B1',0], [{x},'C1',0] }}"


def example1_init_source(x: int = 1, y: int = 5, k: int = 3, j: int = 2) -> str:
    """The Example 1 initial multiset for arbitrary initial values."""
    return f"init {{ [{x},'A1',0], [{y},'B1',0], [{k},'C1',0], [{j},'D1',0] }}"
