"""Random arithmetic-expression workloads.

These generators produce the acyclic dataflow graphs (and the equivalent
imperative source) used by the property-based equivalence tests (E8) and the
conversion-scaling benchmarks (E10).  Graphs are generated from a seed so
every experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataflow.builder import GraphBuilder, OutputRef
from ..dataflow.graph import DataflowGraph

__all__ = ["ExpressionSpec", "random_expression_graph", "expression_sweep"]

_DEFAULT_OPS = ("+", "-", "*")


@dataclass(frozen=True)
class ExpressionSpec:
    """Parameters of a random expression DAG."""

    num_inputs: int = 4
    num_operations: int = 8
    ops: Tuple[str, ...] = _DEFAULT_OPS
    value_range: Tuple[int, int] = (-10, 10)
    num_outputs: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError("num_inputs must be >= 1")
        if self.num_operations < 1:
            raise ValueError("num_operations must be >= 1")
        if self.num_outputs < 1:
            raise ValueError("num_outputs must be >= 1")


def random_expression_graph(spec: ExpressionSpec) -> DataflowGraph:
    """Generate a random acyclic dataflow graph according to ``spec``.

    Construction: ``num_inputs`` roots with random values, then
    ``num_operations`` binary operations whose operands are drawn uniformly
    from everything built so far (roots and earlier operations), then
    ``num_outputs`` dangling output edges attached to the last values produced
    (so every output depends on a non-trivial sub-DAG).
    """
    rng = random.Random(spec.seed)
    builder = GraphBuilder(f"expr(seed={spec.seed})")
    available: List[OutputRef] = []

    for index in range(spec.num_inputs):
        value = rng.randint(*spec.value_range)
        available.append(builder.root(value, f"v{index}", node_id=f"v{index}"))

    produced: List[OutputRef] = []
    for index in range(spec.num_operations):
        op = rng.choice(spec.ops)
        left = rng.choice(available)
        right = rng.choice(available)
        ref = builder.arith(op, left, right)
        available.append(ref)
        produced.append(ref)

    outputs = produced[-spec.num_outputs :] if produced else available[: spec.num_outputs]
    for index, ref in enumerate(outputs):
        builder.output(ref, f"out{index}")
    return builder.build()


def expression_sweep(
    sizes: Sequence[int],
    seed: int = 0,
    num_inputs: Optional[int] = None,
) -> Dict[int, DataflowGraph]:
    """One random expression graph per operation count in ``sizes``."""
    graphs: Dict[int, DataflowGraph] = {}
    for size in sizes:
        spec = ExpressionSpec(
            num_inputs=num_inputs if num_inputs is not None else max(2, size // 4),
            num_operations=size,
            seed=seed + size,
        )
        graphs[size] = random_expression_graph(spec)
    return graphs
