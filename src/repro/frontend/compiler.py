"""Compiler from the miniature imperative language to dynamic dataflow graphs.

The translation follows the TALM-style scheme the paper describes in §II-A and
uses in Fig. 2:

* top-level literal assignments become root (square) vertices;
* arithmetic/comparison expressions become operator vertices, with literal
  operands folded into immediates (the ``- 1`` and ``> 0`` vertices of Fig. 2);
* a ``while``/``for`` loop creates, for every variable referenced by the loop,
  an *inctag* vertex (merging the entry value and the loop-back value) and a
  *steer* vertex controlled by the loop condition; the body reads the steers'
  ``true`` ports, the code after the loop reads the ``false`` ports, and the
  body's final values are wired back to the inctag vertices;
* an ``if``/``else`` creates one steer per variable read in either branch and
  merges assigned variables through a copy vertex whose input port receives
  both branches' results (only one token arrives at run time);
* ``output v;`` attaches a dangling output edge labelled ``v``.

Limitations (documented, enforced with clear errors): loops cannot be nested
inside other loops or conditionals (single-level iteration tags, as in the
paper's example), and a bare literal assignment inside a loop/if body is not
supported (fold the literal into an expression instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dataflow.builder import GraphBuilder, OutputRef
from ..dataflow.graph import DataflowGraph
from ..dataflow.nodes import PORT_IN
from .ast import (
    Assignment,
    BinaryExpr,
    Expression,
    ForLoop,
    IfStatement,
    IntLiteral,
    OutputStatement,
    Program,
    Statement,
    UnaryExpr,
    VarRef,
    WhileLoop,
)
from .parser import parse_source

__all__ = ["FrontendCompileError", "compile_program", "compile_source_to_graph"]

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


class FrontendCompileError(ValueError):
    """Raised when a program uses an unsupported construct."""


def _referenced_variables(node) -> Set[str]:
    """All variable names read by an expression / statement / block."""
    names: Set[str] = set()
    if isinstance(node, VarRef):
        names.add(node.name)
    elif isinstance(node, BinaryExpr):
        names |= _referenced_variables(node.left) | _referenced_variables(node.right)
    elif isinstance(node, UnaryExpr):
        names |= _referenced_variables(node.operand)
    elif isinstance(node, Assignment):
        names |= _referenced_variables(node.value)
    elif isinstance(node, IfStatement):
        names |= _referenced_variables(node.condition)
        for stmt in node.then_body + node.else_body:
            names |= _referenced_variables(stmt)
    elif isinstance(node, (WhileLoop, ForLoop)):
        names |= _referenced_variables(node.condition)
        body = node.body if isinstance(node, WhileLoop) else node.body + (node.update,)
        for stmt in body:
            names |= _referenced_variables(stmt)
    elif isinstance(node, (tuple, list)):
        for item in node:
            names |= _referenced_variables(item)
    return names


def _assigned_variables(statements: Sequence[Statement]) -> Set[str]:
    """All variable names assigned anywhere in ``statements`` (recursively)."""
    names: Set[str] = set()
    for stmt in statements:
        if isinstance(stmt, Assignment):
            names.add(stmt.name)
        elif isinstance(stmt, IfStatement):
            names |= _assigned_variables(stmt.then_body) | _assigned_variables(stmt.else_body)
        elif isinstance(stmt, WhileLoop):
            names |= _assigned_variables(stmt.body)
        elif isinstance(stmt, ForLoop):
            names |= _assigned_variables(stmt.body) | {stmt.init.name, stmt.update.name}
    return names


class _Compiler:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.builder = GraphBuilder(program.name)
        self.env: Dict[str, OutputRef] = {}
        self._loop_compiled = False

    # -- expressions -----------------------------------------------------------------
    def compile_expr(self, expr: Expression, env: Dict[str, OutputRef]) -> OutputRef:
        if isinstance(expr, VarRef):
            if expr.name not in env:
                raise FrontendCompileError(f"variable {expr.name!r} used before assignment")
            return env[expr.name]
        if isinstance(expr, IntLiteral):
            raise FrontendCompileError(
                "a bare literal cannot be compiled here; literals are only allowed as "
                "top-level initializations or as operands of an operation"
            )
        if isinstance(expr, UnaryExpr):
            operand = self.compile_expr(expr.operand, env)
            return self.builder.arith_imm("-", operand, 0, side="left")
        if isinstance(expr, BinaryExpr):
            left_literal = isinstance(expr.left, IntLiteral)
            right_literal = isinstance(expr.right, IntLiteral)
            is_comparison = expr.op in _COMPARISONS
            if left_literal and right_literal:
                raise FrontendCompileError(
                    f"constant expression {expr!r}: fold it by hand or assign it at top level"
                )
            if right_literal:
                operand = self.compile_expr(expr.left, env)
                if is_comparison:
                    return self.builder.compare_imm(expr.op, operand, expr.right.value)
                return self.builder.arith_imm(expr.op, operand, expr.right.value)
            if left_literal:
                operand = self.compile_expr(expr.right, env)
                if is_comparison:
                    return self.builder.compare_imm(expr.op, operand, expr.left.value, side="left")
                return self.builder.arith_imm(expr.op, operand, expr.left.value, side="left")
            left = self.compile_expr(expr.left, env)
            right = self.compile_expr(expr.right, env)
            if is_comparison:
                return self.builder.compare(expr.op, left, right)
            return self.builder.arith(expr.op, left, right)
        raise FrontendCompileError(f"unsupported expression {expr!r}")

    # -- statements -------------------------------------------------------------------
    def compile_block(
        self, statements: Sequence[Statement], env: Dict[str, OutputRef], in_loop: bool
    ) -> Dict[str, OutputRef]:
        for stmt in statements:
            env = self.compile_statement(stmt, env, in_loop)
        return env

    def compile_statement(
        self, stmt: Statement, env: Dict[str, OutputRef], in_loop: bool
    ) -> Dict[str, OutputRef]:
        env = dict(env)
        if isinstance(stmt, Assignment):
            if isinstance(stmt.value, IntLiteral):
                if in_loop:
                    raise FrontendCompileError(
                        f"literal assignment to {stmt.name!r} inside a loop/if body is not "
                        f"supported; initialize it before the loop"
                    )
                env[stmt.name] = self.builder.root(stmt.value.value, stmt.name, node_id=stmt.name)
            else:
                env[stmt.name] = self.compile_expr(stmt.value, env)
            return env
        if isinstance(stmt, OutputStatement):
            if stmt.name not in env:
                raise FrontendCompileError(f"output of undefined variable {stmt.name!r}")
            self.builder.output(env[stmt.name], stmt.name)
            return env
        if isinstance(stmt, IfStatement):
            return self.compile_if(stmt, env, in_loop)
        if isinstance(stmt, ForLoop):
            lowered = WhileLoop(
                condition=stmt.condition, body=stmt.body + (stmt.update,)
            )
            env = self.compile_statement(stmt.init, env, in_loop)
            return self.compile_while(lowered, env, in_loop)
        if isinstance(stmt, WhileLoop):
            return self.compile_while(stmt, env, in_loop)
        raise FrontendCompileError(f"unsupported statement {stmt!r}")

    def compile_if(
        self, stmt: IfStatement, env: Dict[str, OutputRef], in_loop: bool
    ) -> Dict[str, OutputRef]:
        if _contains_loop(stmt.then_body) or _contains_loop(stmt.else_body):
            raise FrontendCompileError("loops inside 'if' bodies are not supported")
        condition = self.compile_expr(stmt.condition, env)
        read = (
            _referenced_variables(stmt.then_body) | _referenced_variables(stmt.else_body)
        ) & set(env)
        assigned = _assigned_variables(stmt.then_body) | _assigned_variables(stmt.else_body)

        then_env = dict(env)
        else_env = dict(env)
        for name in sorted(read):
            true_ref, false_ref = self.builder.steer(env[name], condition)
            then_env[name] = true_ref
            else_env[name] = false_ref

        then_env = self.compile_block(stmt.then_body, then_env, in_loop)
        else_env = self.compile_block(stmt.else_body, else_env, in_loop)

        for name in sorted(assigned):
            if name not in then_env or name not in else_env:
                raise FrontendCompileError(
                    f"variable {name!r} must be defined on both branches of the 'if' "
                    f"(or before it) to be used afterwards"
                )
            merge = self.builder.copy(then_env[name])
            self.builder.connect_to_node(else_env[name], merge.node_id, PORT_IN)
            env[name] = merge
        return env

    def compile_while(
        self, stmt: WhileLoop, env: Dict[str, OutputRef], in_loop: bool
    ) -> Dict[str, OutputRef]:
        if in_loop or _contains_loop(stmt.body):
            raise FrontendCompileError(
                "nested loops are not supported (single-level iteration tags, as in the paper)"
            )
        if self._loop_compiled:
            raise FrontendCompileError(
                "only one loop per program is supported: values leaving a loop carry the "
                "iteration tag they exited with, and wiring them into a second loop would "
                "mismatch tags (the paper's single-tag dynamic dataflow model)"
            )
        self._loop_compiled = True
        loop_vars = sorted(
            (_referenced_variables(stmt.condition) | _referenced_variables(stmt.body)
             | _assigned_variables(stmt.body)) & set(env)
            | (_referenced_variables(stmt.condition) & set(env))
        )
        missing = (
            _referenced_variables(stmt.condition) | _referenced_variables(stmt.body)
        ) - set(env) - _assigned_variables(stmt.body)
        if missing:
            raise FrontendCompileError(
                f"loop uses variables {sorted(missing)} that are not defined before it"
            )

        # Inctag vertices: entry edge now, loop-back edge after the body is compiled.
        inctag_refs: Dict[str, OutputRef] = {}
        for name in loop_vars:
            inctag_refs[name] = self.builder.inctag(env[name])

        loop_env = dict(env)
        loop_env.update(inctag_refs)
        condition = self.compile_expr(stmt.condition, loop_env)

        body_env = dict(loop_env)
        exit_env: Dict[str, OutputRef] = {}
        for name in loop_vars:
            true_ref, false_ref = self.builder.steer(loop_env[name], condition)
            body_env[name] = true_ref
            exit_env[name] = false_ref

        body_env = self.compile_block(stmt.body, body_env, in_loop=True)

        for name in loop_vars:
            self.builder.connect_to_node(body_env[name], inctag_refs[name].node_id, PORT_IN)

        env = dict(env)
        env.update(exit_env)
        return env

    # -- driver ----------------------------------------------------------------------
    def compile(self) -> DataflowGraph:
        env = self.env
        for stmt in self.program.statements:
            env = self.compile_statement(stmt, env, in_loop=False)
        self.env = env
        return self.builder.build()


def _contains_loop(statements: Sequence[Statement]) -> bool:
    for stmt in statements:
        if isinstance(stmt, (WhileLoop, ForLoop)):
            return True
        if isinstance(stmt, IfStatement) and (
            _contains_loop(stmt.then_body) or _contains_loop(stmt.else_body)
        ):
            return True
    return False


def compile_program(program: Program) -> DataflowGraph:
    """Compile a parsed :class:`~repro.frontend.ast.Program` to a dataflow graph."""
    return _Compiler(program).compile()


def compile_source_to_graph(source: str, name: str = "program") -> DataflowGraph:
    """Parse and compile source text in one call."""
    return compile_program(parse_source(source, name=name))
