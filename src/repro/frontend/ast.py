"""AST of the miniature imperative language compiled to dataflow graphs.

The language is the smallest von-Neumann-style fragment needed to write the
paper's motivating programs (Section III-A1 starts from exactly this kind of
code): integer variables, arithmetic/comparison expressions, assignments,
``if``/``else``, ``while``/``for`` loops, and ``output`` declarations that
mark which values are the program's observable results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

__all__ = [
    "Expression",
    "IntLiteral",
    "VarRef",
    "BinaryExpr",
    "UnaryExpr",
    "Statement",
    "Assignment",
    "IfStatement",
    "WhileLoop",
    "ForLoop",
    "OutputStatement",
    "Program",
]


class Expression:
    """Base class of expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class IntLiteral(Expression):
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class VarRef(Expression):
    """A reference to a variable."""

    name: str


@dataclass(frozen=True)
class BinaryExpr(Expression):
    """Binary arithmetic (``+ - * / %``) or comparison (``== != < <= > >=``)."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryExpr(Expression):
    """Unary minus."""

    op: str
    operand: Expression


class Statement:
    """Base class of statement nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Assignment(Statement):
    """``name = expression;`` (also used for declarations ``int x = 1;``)."""

    name: str
    value: Expression


@dataclass(frozen=True)
class IfStatement(Statement):
    """``if (cond) { ... } else { ... }``."""

    condition: Expression
    then_body: Tuple[Statement, ...]
    else_body: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class WhileLoop(Statement):
    """``while (cond) { ... }``."""

    condition: Expression
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class ForLoop(Statement):
    """``for (init; cond; update) { ... }`` — sugar for init + while."""

    init: Assignment
    condition: Expression
    update: Assignment
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class OutputStatement(Statement):
    """``output name;`` — marks ``name``'s final value as a program output."""

    name: str


@dataclass
class Program:
    """A full source unit."""

    statements: List[Statement]
    name: str = "program"

    def outputs(self) -> List[str]:
        """The declared output variable names, in order."""
        return [s.name for s in self.statements if isinstance(s, OutputStatement)]
