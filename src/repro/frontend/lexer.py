"""Lexer for the miniature imperative language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Token", "FrontendLexerError", "tokenize"]

KEYWORDS = {"if", "else", "while", "for", "output", "int"}
_TWO_CHAR = {"==", "!=", "<=", ">=", "+=", "-=", "--", "++"}
_ONE_CHAR = set("+-*/%<>=(){};,")


class FrontendLexerError(ValueError):
    """Raised on malformed source text."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'int', 'sym', 'eof'
    value: object
    line: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.value!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` (C-like comments ``//`` are supported)."""
    tokens: List[Token] = []
    i = 0
    line = 1
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            j = i
            while j < length and source[j].isdigit():
                j += 1
            tokens.append(Token("int", int(source[i:j]), line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("sym", two, line))
            i += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token("sym", ch, line))
            i += 1
            continue
        raise FrontendLexerError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens
