"""Miniature imperative frontend: von-Neumann-style source → dataflow graphs."""

from .ast import (
    Assignment,
    BinaryExpr,
    Expression,
    ForLoop,
    IfStatement,
    IntLiteral,
    OutputStatement,
    Program,
    Statement,
    UnaryExpr,
    VarRef,
    WhileLoop,
)
from .compiler import FrontendCompileError, compile_program, compile_source_to_graph
from .lexer import FrontendLexerError, tokenize
from .parser import FrontendParseError, parse_source

__all__ = [
    "parse_source", "compile_program", "compile_source_to_graph", "tokenize",
    "FrontendLexerError", "FrontendParseError", "FrontendCompileError",
    "Program", "Statement", "Expression",
    "Assignment", "IfStatement", "WhileLoop", "ForLoop", "OutputStatement",
    "IntLiteral", "VarRef", "BinaryExpr", "UnaryExpr",
]
