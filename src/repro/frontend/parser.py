"""Recursive-descent parser for the miniature imperative language.

Accepted forms (all used by the paper's motivating snippets)::

    int x = 1;            // declarations (the 'int' is optional noise)
    m = (x + y) - (k * j);
    output m;

    for (i = z; i > 0; i = i - 1) { x = x + y; }
    for (i = z; i > 0; i--) { x = x + y; }       // i-- / i++ sugar
    while (n > 1) { n = n - 1; }
    if (a > b) { max = a; } else { max = b; }
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    Assignment,
    BinaryExpr,
    Expression,
    ForLoop,
    IfStatement,
    IntLiteral,
    OutputStatement,
    Program,
    Statement,
    UnaryExpr,
    VarRef,
    WhileLoop,
)
from .lexer import Token, tokenize

__all__ = ["FrontendParseError", "parse_source"]

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


class FrontendParseError(ValueError):
    """Raised on syntactically invalid source."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}: {message}")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, value=None) -> bool:
        return self.current.kind == kind and (value is None or self.current.value == value)

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        if not self.check(kind, value):
            wanted = value if value is not None else kind
            raise FrontendParseError(
                f"expected {wanted!r}, found {self.current.value!r}", self.current
            )
        return self.advance()

    # -- statements ---------------------------------------------------------------
    def parse_program(self, name: str) -> Program:
        statements: List[Statement] = []
        while not self.check("eof"):
            statements.append(self.parse_statement())
        return Program(statements=statements, name=name)

    def parse_block(self) -> Tuple[Statement, ...]:
        self.expect("sym", "{")
        body: List[Statement] = []
        while not self.check("sym", "}"):
            body.append(self.parse_statement())
        self.expect("sym", "}")
        return tuple(body)

    def parse_statement(self) -> Statement:
        if self.accept("keyword", "output"):
            name = self.expect("ident").value
            self.expect("sym", ";")
            return OutputStatement(name=name)
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            return self.parse_while()
        if self.check("keyword", "for"):
            return self.parse_for()
        # Declarations and assignments.
        self.accept("keyword", "int")
        return self.parse_assignment(require_semicolon=True)

    def parse_assignment(self, require_semicolon: bool) -> Assignment:
        name = self.expect("ident").value
        if self.accept("sym", "--"):
            stmt = Assignment(name=name, value=BinaryExpr("-", VarRef(name), IntLiteral(1)))
        elif self.accept("sym", "++"):
            stmt = Assignment(name=name, value=BinaryExpr("+", VarRef(name), IntLiteral(1)))
        elif self.accept("sym", "+="):
            stmt = Assignment(name=name, value=BinaryExpr("+", VarRef(name), self.parse_expression()))
        elif self.accept("sym", "-="):
            stmt = Assignment(name=name, value=BinaryExpr("-", VarRef(name), self.parse_expression()))
        else:
            self.expect("sym", "=")
            stmt = Assignment(name=name, value=self.parse_expression())
        if require_semicolon:
            self.expect("sym", ";")
        return stmt

    def parse_if(self) -> IfStatement:
        self.expect("keyword", "if")
        self.expect("sym", "(")
        condition = self.parse_expression()
        self.expect("sym", ")")
        then_body = self.parse_block()
        else_body: Tuple[Statement, ...] = ()
        if self.accept("keyword", "else"):
            else_body = self.parse_block()
        return IfStatement(condition=condition, then_body=then_body, else_body=else_body)

    def parse_while(self) -> WhileLoop:
        self.expect("keyword", "while")
        self.expect("sym", "(")
        condition = self.parse_expression()
        self.expect("sym", ")")
        body = self.parse_block()
        return WhileLoop(condition=condition, body=body)

    def parse_for(self) -> ForLoop:
        self.expect("keyword", "for")
        self.expect("sym", "(")
        self.accept("keyword", "int")
        init = self.parse_assignment(require_semicolon=True)
        condition = self.parse_expression()
        self.expect("sym", ";")
        update = self.parse_assignment(require_semicolon=False)
        self.expect("sym", ")")
        body = self.parse_block()
        return ForLoop(init=init, condition=condition, update=update, body=body)

    # -- expressions --------------------------------------------------------------
    def parse_expression(self) -> Expression:
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        expr = self.parse_additive()
        while self.check("sym") and self.current.value in _COMPARISONS:
            op = self.advance().value
            expr = BinaryExpr(op, expr, self.parse_additive())
        return expr

    def parse_additive(self) -> Expression:
        expr = self.parse_multiplicative()
        while self.check("sym") and self.current.value in ("+", "-"):
            op = self.advance().value
            expr = BinaryExpr(op, expr, self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> Expression:
        expr = self.parse_unary()
        while self.check("sym") and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            expr = BinaryExpr(op, expr, self.parse_unary())
        return expr

    def parse_unary(self) -> Expression:
        if self.accept("sym", "-"):
            return UnaryExpr("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current
        if token.kind == "int":
            self.advance()
            return IntLiteral(token.value)
        if token.kind == "ident":
            self.advance()
            return VarRef(token.value)
        if self.accept("sym", "("):
            expr = self.parse_expression()
            self.expect("sym", ")")
            return expr
        raise FrontendParseError(f"unexpected token {token.value!r} in expression", token)


def parse_source(source: str, name: str = "program") -> Program:
    """Parse a source unit into a :class:`~repro.frontend.ast.Program`."""
    return _Parser(tokenize(source)).parse_program(name)
