"""Hash partitioning of multisets over a fixed shard count.

The sharded runtime (:mod:`repro.runtime.sharding`) splits one logical
multiset across N shard workers.  Placement must be *stable*: every node (and
every restart) must route an element to the same home shard, so partitioning
is keyed on :meth:`~repro.multiset.element.Element.stable_hash` — a digest of
the canonical ``(value, label, tag)`` triple — never on the builtin,
per-process-salted ``hash()``.

This module holds the placement function and the batched partitioning
helpers shared by :class:`~repro.runtime.distributed.DistributedMultiset`
(the legacy simulated runtime) and the shard coordinator (the real one), so
the two agree on where every element lives.
"""

from __future__ import annotations

from typing import List, Tuple

from .element import Element
from .multiset import Multiset

__all__ = ["home_of", "partition_counts", "partition_pairs", "hash_partition"]


def home_of(element: Element, num_partitions: int) -> int:
    """The partition ``element`` is routed to by stable-hash placement.

    Parameters
    ----------
    element:
        The element to place.
    num_partitions:
        Number of partitions (must be positive).

    Returns the partition index in ``range(num_partitions)``.  The placement
    is deterministic across processes and ``PYTHONHASHSEED`` values, which is
    what lets independent shard workers agree on elements' homes without
    coordination.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return element.stable_hash() % num_partitions


def partition_counts(
    multiset: Multiset, num_partitions: int
) -> List[List[Tuple[Element, int]]]:
    """Split ``multiset`` into per-partition ``(element, count)`` batches.

    The batches preserve the multiset's insertion order within each
    partition (which deterministic schedulers observe) and carry
    multiplicities, so a partition can be loaded with one batched
    :meth:`~repro.multiset.multiset.Multiset.add_counts` call — the wire
    format of the sharded runtime's load phase.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    batches: List[List[Tuple[Element, int]]] = [[] for _ in range(num_partitions)]
    for element, count in multiset.counts().items():
        batches[element.stable_hash() % num_partitions].append((element, count))
    return batches


def partition_pairs(
    pairs: List[Tuple[Element, int]], num_partitions: int
) -> List[List[Tuple[Element, int]]]:
    """Split ``(element, count)`` pairs into per-partition batches.

    The streaming counterpart of :func:`partition_counts`: an ingest-queue
    epoch batch (already in admission order, not a :class:`Multiset`) is
    routed to stable-hash homes without materializing an intermediate
    multiset, preserving the admission order within each partition — which
    is what keeps seeded streaming runs reproducible shard by shard.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    batches: List[List[Tuple[Element, int]]] = [[] for _ in range(num_partitions)]
    for element, count in pairs:
        batches[home_of(element, num_partitions)].append((element, count))
    return batches


def hash_partition(multiset: Multiset, num_partitions: int) -> List[Multiset]:
    """Split ``multiset`` into ``num_partitions`` multisets by stable-hash home.

    Convenience view over :func:`partition_counts` for callers that want
    ready-made :class:`Multiset` partitions (tests, analyses).  The union of
    the returned partitions equals ``multiset``.
    """
    parts = [Multiset() for _ in range(num_partitions)]
    for index, batch in enumerate(partition_counts(multiset, num_partitions)):
        parts[index].add_counts(batch)
    return parts
