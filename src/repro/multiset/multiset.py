"""Counted multiset container.

The Gamma model operates on a single shared *multiset* (the "chemical
solution").  Reactions remove a sub-multiset of elements satisfying their
condition and insert the elements produced by their action:

    Gamma((R1, A1), ..., (Rm, Am))(M) =
        if no Ri is satisfiable on M: M
        else: Gamma(...)((M - {x1..xn}) + Ai(x1..xn))

This module provides the counted container that supports those operations
efficiently: constant-time membership counting, removal/insertion, snapshots
used by the simulated-parallel scheduler, and a small algebra (union, sum,
difference) used by the equivalence checker and tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .element import Element, make_elements

__all__ = ["Multiset", "ChangeListener"]

#: A change-notification callback: ``listener(element, delta)`` is invoked
#: after ``delta`` copies of ``element`` were inserted (``delta > 0``) or
#: removed (``delta < 0``).
ChangeListener = Callable[[Element, int], None]


class Multiset:
    """A counted multiset of :class:`~repro.multiset.element.Element`.

    The container keeps a ``Counter`` from elements to multiplicities plus an
    incremental index from labels to elements (see
    :class:`~repro.multiset.index.LabelIndex` for the standalone variant); the
    label index is what makes reaction matching tractable for the converted
    dataflow programs, where conditions always constrain element labels.

    External observers (heavier indexes, the incremental reaction scheduler)
    can :meth:`subscribe` a callback that is invoked after every mutation, so
    they stay in sync without per-step rebuilds.
    """

    __slots__ = ("_counts", "_by_label", "_size", "_listeners")

    def __init__(self, elements: Optional[Iterable] = None) -> None:
        self._counts: Counter = Counter()
        self._by_label: Dict[str, Counter] = {}
        self._size = 0
        self._listeners: Tuple[ChangeListener, ...] = ()
        if elements is not None:
            for element in make_elements(elements):
                self.add(element)

    # -- change notification ------------------------------------------------------
    def subscribe(self, listener: ChangeListener) -> ChangeListener:
        """Register ``listener(element, delta)`` to be called after each mutation.

        ``delta`` is positive for insertions and negative for removals; a
        :meth:`replace` emits one notification per removed/added element, in
        application order.  Returns ``listener`` so it can be kept for
        :meth:`unsubscribe`.  Listeners are *not* carried over by :meth:`copy`.
        """
        self._listeners = self._listeners + (listener,)
        return listener

    def unsubscribe(self, listener: ChangeListener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        self._listeners = tuple(cb for cb in self._listeners if cb is not listener)

    def _notify(self, element: Element, delta: int) -> None:
        for listener in self._listeners:
            listener(element, delta)

    # -- basic protocol --------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Element]:
        """Iterate elements with multiplicity (an element of count 3 appears 3 times)."""
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def __contains__(self, element: Any) -> bool:
        element = self._coerce(element)
        return self._counts.get(element, 0) > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Multiset):
            return self._counts == other._counts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(e) for e in sorted(self._counts, key=lambda e: (e.label, e.tag, str(e.value))))
        return f"Multiset({{{inner}}})"

    @staticmethod
    def _coerce(element: Any) -> Element:
        if isinstance(element, Element):
            return element
        if isinstance(element, tuple):
            return Element.from_tuple(element)
        return Element(value=element)

    # -- mutation ---------------------------------------------------------------
    def add(self, element: Any, count: int = 1) -> None:
        """Insert ``count`` copies of ``element``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        element = self._coerce(element)
        self._counts[element] += count
        self._size += count
        bucket = self._by_label.get(element.label)
        if bucket is None:
            bucket = self._by_label[element.label] = Counter()
        bucket[element] += count
        if self._listeners:
            self._notify(element, count)

    def add_all(self, elements: Iterable) -> None:
        """Insert every element of ``elements`` (with multiplicity one each)."""
        for element in elements:
            self.add(element)

    def remove(self, element: Any, count: int = 1) -> None:
        """Remove ``count`` copies of ``element``.

        Raises ``KeyError`` if fewer than ``count`` copies are present; Gamma
        reactions must never consume elements that are not in the solution, so
        violations indicate a scheduler bug and are surfaced loudly.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        element = self._coerce(element)
        have = self._counts.get(element, 0)
        if have < count:
            raise KeyError(f"cannot remove {count} x {element!r}: only {have} present")
        if have == count:
            del self._counts[element]
        else:
            self._counts[element] = have - count
        self._size -= count
        bucket = self._by_label[element.label]
        if bucket[element] == count:
            del bucket[element]
            if not bucket:
                del self._by_label[element.label]
        else:
            bucket[element] -= count
        if self._listeners:
            self._notify(element, -count)

    def remove_all(self, elements: Iterable) -> None:
        """Remove every element of ``elements`` (one copy each)."""
        for element in elements:
            self.remove(element)

    def replace(self, removed: Iterable, added: Iterable) -> None:
        """Atomically apply one Gamma rewrite step: ``M := (M - removed) + added``.

        The removal is validated before anything is mutated so a failed
        replace leaves the multiset untouched.
        """
        removed = [self._coerce(e) for e in removed]
        need = Counter(removed)
        for element, count in need.items():
            if self._counts.get(element, 0) < count:
                raise KeyError(
                    f"replace would consume {count} x {element!r} "
                    f"but only {self._counts.get(element, 0)} present"
                )
        for element in removed:
            self.remove(element)
        for element in added:
            self.add(element)

    def rewrite_unchecked(self, removed: Iterable[Element], added: Iterable[Element]) -> None:
        """Apply one rewrite step without :meth:`replace`'s atomic pre-validation.

        Fast path for the compiled engine loops: the matcher has already
        verified that ``removed`` is available (that is what a match *is*), so
        the availability re-check and the coercion pass of :meth:`replace` are
        redundant.  ``removed``/``added`` must contain :class:`Element`
        instances, one copy each.  On a violation (a scheduler bug),
        ``KeyError`` is still raised, but the multiset may be left partially
        rewritten — use :meth:`replace` when inputs are untrusted.

        The bodies of :meth:`remove`/:meth:`add` are inlined here (single-copy
        specialization): this runs three times per engine step, millions of
        times per run.
        """
        counts = self._counts
        by_label = self._by_label
        listeners = self._listeners
        for element in removed:
            have = counts[element]
            if have <= 0:
                # Counter defaults missing keys to 0, so fail loudly ourselves:
                # consuming an absent element is a scheduler bug, like remove().
                raise KeyError(f"cannot remove {element!r}: not present")
            if have == 1:
                del counts[element]
            else:
                counts[element] = have - 1
            self._size -= 1
            bucket = by_label[element.label]
            if bucket[element] == 1:
                del bucket[element]
                if not bucket:
                    del by_label[element.label]
            else:
                bucket[element] -= 1
            for listener in listeners:
                listener(element, -1)
        for element in added:
            counts[element] += 1
            self._size += 1
            bucket = by_label.get(element.label)
            if bucket is None:
                bucket = by_label[element.label] = Counter()
            bucket[element] += 1
            for listener in listeners:
                listener(element, 1)

    def rewrite_batch_unchecked(
        self, removed: Iterable[Element], added: Iterable[Element]
    ) -> None:
        """Apply one whole *superstep* of rewrites without pre-validation.

        Batch counterpart of :meth:`rewrite_unchecked` for the parallel
        engine: ``removed``/``added`` are the concatenated consumed/produced
        elements of a set of pairwise-disjoint matches, all selected against
        the current state (so no removed element may depend on an added one).
        The batch is applied in two phases — all removals, then all additions
        — with the per-copy work aggregated per distinct element, and **one
        change notification per distinct element per phase** (``delta`` is the
        total copy count) instead of one per copy.  The final counts always
        equal firing the matches one by one, and so does the key/bucket
        insertion order (which seeded schedulers observe) — *except* when one
        match consumes an element that another match of the same batch also
        produces: a sequential interleaving may then net the count above zero
        where the two-phase batch deletes and re-appends the key, moving it
        to the insertion tail.  Callers needing order-exact equivalence with
        a specific sequential interleaving must fire one by one.

        Like :meth:`rewrite_unchecked`, over-consumption raises ``KeyError``
        but may leave the multiset partially rewritten — inputs are trusted.
        """
        counts = self._counts
        by_label = self._by_label
        listeners = self._listeners
        removed_counts: Counter = Counter()
        for element in removed:
            removed_counts[element] += 1
        for element, count in removed_counts.items():
            have = counts.get(element, 0)
            if have < count:
                raise KeyError(
                    f"batch rewrite would consume {count} x {element!r} "
                    f"but only {have} present"
                )
            if have == count:
                del counts[element]
            else:
                counts[element] = have - count
            self._size -= count
            bucket = by_label[element.label]
            if bucket[element] == count:
                del bucket[element]
                if not bucket:
                    del by_label[element.label]
            else:
                bucket[element] -= count
            for listener in listeners:
                listener(element, -count)
        added_counts: Counter = Counter()
        for element in added:
            added_counts[element] += 1
        for element, count in added_counts.items():
            counts[element] += count
            self._size += count
            bucket = by_label.get(element.label)
            if bucket is None:
                bucket = by_label[element.label] = Counter()
            bucket[element] += count
            for listener in listeners:
                listener(element, count)

    def add_counts(self, pairs: Iterable[Tuple["Element", int]]) -> int:
        """Insert a batch of ``(element, count)`` pairs; returns copies added.

        The batched ingest path of cross-partition transfers and streaming
        injection: one listener notification is emitted per pair (``delta`` =
        the pair's count), so an attached index absorbs a whole batch in one
        pass per distinct element instead of one per copy.
        """
        copies = 0
        for element, count in pairs:
            self.add(element, count)
            copies += count
        return copies

    def drain_labels(self, labels: Iterable[str]) -> List[Tuple[Element, int]]:
        """Remove and return every element whose label is in ``labels``.

        Returns ``(element, count)`` pairs in the multiset's insertion order —
        the batched extraction half of a cross-partition transfer; feed the
        result to another partition's :meth:`add_counts`.  One change
        notification is emitted per distinct element (``delta`` = the full
        multiplicity).  Labels with no elements are skipped silently.
        """
        drained: List[Tuple[Element, int]] = []
        for label in labels:
            bucket = self._by_label.get(label)
            if not bucket:
                continue
            drained.extend(bucket.items())
        for element, count in drained:
            self.remove(element, count)
        return drained

    def label_counts(self) -> Dict[str, int]:
        """Copies present per label (the shard-routing histogram).

        The mapping is a snapshot: ``{label: total copies with that label}``,
        in label insertion order.
        """
        return {
            label: sum(bucket.values()) for label, bucket in self._by_label.items()
        }

    def clear(self) -> None:
        """Remove every element."""
        removed = list(self._counts.items()) if self._listeners else []
        self._counts.clear()
        self._by_label.clear()
        self._size = 0
        for element, count in removed:
            self._notify(element, -count)

    # -- queries ----------------------------------------------------------------
    def count(self, element: Any) -> int:
        """Multiplicity of ``element`` (0 if absent)."""
        return self._counts.get(self._coerce(element), 0)

    def distinct(self) -> List[Element]:
        """The distinct elements (each listed once regardless of multiplicity)."""
        return list(self._counts.keys())

    def counts(self) -> Dict[Element, int]:
        """A copy of the element -> multiplicity mapping."""
        return dict(self._counts)

    def labels(self) -> List[str]:
        """The distinct labels present in the multiset."""
        return list(self._by_label.keys())

    def with_label(self, label: str) -> List[Element]:
        """Elements (with multiplicity) whose label equals ``label``."""
        bucket = self._by_label.get(label)
        if not bucket:
            return []
        out: List[Element] = []
        for element, count in bucket.items():
            out.extend([element] * count)
        return out

    def distinct_with_label(self, label: str) -> List[Element]:
        """Distinct elements whose label equals ``label``."""
        bucket = self._by_label.get(label)
        return list(bucket.keys()) if bucket else []

    def with_labels(self, labels: Iterable[str]) -> List[Element]:
        """Elements (with multiplicity) whose label is in ``labels``."""
        out: List[Element] = []
        for label in labels:
            out.extend(self.with_label(label))
        return out

    def values_with_label(self, label: str) -> List[Any]:
        """Values of the elements carrying ``label`` (with multiplicity)."""
        return [e.value for e in self.with_label(label)]

    def select(self, predicate) -> List[Element]:
        """Elements (with multiplicity) satisfying ``predicate(element)``."""
        out: List[Element] = []
        for element, count in self._counts.items():
            if predicate(element):
                out.extend([element] * count)
        return out

    def restrict_labels(self, labels: Iterable[str]) -> "Multiset":
        """New multiset containing only elements whose label is in ``labels``."""
        wanted = set(labels)
        result = Multiset()
        for element, count in self._counts.items():
            if element.label in wanted:
                result.add(element, count)
        return result

    # -- algebra ------------------------------------------------------------------
    def copy(self) -> "Multiset":
        """Deep-enough copy (elements are immutable, so counts are copied)."""
        clone = Multiset()
        for element, count in self._counts.items():
            clone.add(element, count)
        return clone

    def __add__(self, other: "Multiset") -> "Multiset":
        """Multiset sum (multiplicities add)."""
        if not isinstance(other, Multiset):
            return NotImplemented
        result = self.copy()
        for element, count in other._counts.items():
            result.add(element, count)
        return result

    def __sub__(self, other: "Multiset") -> "Multiset":
        """Multiset difference (multiplicities subtract, floored at zero)."""
        if not isinstance(other, Multiset):
            return NotImplemented
        result = Multiset()
        for element, count in self._counts.items():
            keep = count - other._counts.get(element, 0)
            if keep > 0:
                result.add(element, keep)
        return result

    def isdisjoint(self, other: "Multiset") -> bool:
        """True when no element occurs in both multisets."""
        smaller, larger = (self, other) if len(self._counts) <= len(other._counts) else (other, self)
        return all(element not in larger._counts for element in smaller._counts)

    def issubset(self, other: "Multiset") -> bool:
        """True when every element occurs in ``other`` with at least this multiplicity."""
        return all(other._counts.get(e, 0) >= c for e, c in self._counts.items())

    # -- conversions ---------------------------------------------------------------
    def to_tuples(self) -> List[Tuple[Any, str, int]]:
        """Sorted list of ``(value, label, tag)`` triples (with multiplicity)."""
        triples = [e.as_tuple() for e in self]
        return sorted(triples, key=lambda t: (t[1], t[2], repr(t[0])))

    @classmethod
    def from_tuples(cls, tuples: Iterable[Tuple]) -> "Multiset":
        """Inverse of :meth:`to_tuples`."""
        return cls(tuples)
