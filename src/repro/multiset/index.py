"""Label/tag indexes used by the reaction-matching engine.

Reactions produced by Algorithm 1 always constrain the *label* of every
element they consume (and, when loops are present, require all consumed
elements to carry the same *tag*).  Scanning the whole multiset for every
candidate combination is quadratic and dominates execution time for converted
loop programs, so the matching engine works off the :class:`LabelTagIndex`
below: a two-level dictionary ``label -> tag -> [elements]`` maintained
incrementally alongside the multiset.

The index is deliberately decoupled from :class:`~repro.multiset.multiset.Multiset`
(which only indexes by label) so the sequential engine can stay lightweight
while the parallel scheduler builds the heavier index once per step.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set

from .element import Element
from .multiset import Multiset

__all__ = ["LabelTagIndex"]


class LabelTagIndex:
    """Incremental index ``label -> tag -> list of (element, multiplicity)``."""

    def __init__(self, multiset: Optional[Multiset] = None) -> None:
        # label -> tag -> element -> count
        self._index: Dict[str, Dict[int, Dict[Element, int]]] = defaultdict(
            lambda: defaultdict(dict)
        )
        self._size = 0
        if multiset is not None:
            self.rebuild(multiset)

    # -- maintenance ------------------------------------------------------------
    def rebuild(self, multiset: Multiset) -> None:
        """Discard the current contents and re-index ``multiset``."""
        self._index.clear()
        self._size = 0
        for element, count in multiset.counts().items():
            self.add(element, count)

    def add(self, element: Element, count: int = 1) -> None:
        """Register ``count`` additional copies of ``element``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        bucket = self._index[element.label][element.tag]
        bucket[element] = bucket.get(element, 0) + count
        self._size += count

    def remove(self, element: Element, count: int = 1) -> None:
        """Unregister ``count`` copies of ``element``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        tags = self._index.get(element.label)
        if not tags or element.tag not in tags or element not in tags[element.tag]:
            raise KeyError(f"element not indexed: {element!r}")
        bucket = tags[element.tag]
        have = bucket[element]
        if have < count:
            raise KeyError(f"cannot remove {count} x {element!r}: only {have} indexed")
        if have == count:
            del bucket[element]
            if not bucket:
                del tags[element.tag]
                if not tags:
                    del self._index[element.label]
        else:
            bucket[element] = have - count
        self._size -= count

    # -- queries ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def labels(self) -> List[str]:
        """Labels currently present."""
        return list(self._index.keys())

    def tags_for(self, label: str) -> List[int]:
        """Tags present among elements carrying ``label``."""
        return list(self._index.get(label, {}).keys())

    def candidates(self, label: str, tag: Optional[int] = None) -> List[Element]:
        """Distinct elements with ``label`` (and, when given, ``tag``)."""
        tags = self._index.get(label)
        if not tags:
            return []
        if tag is None:
            out: List[Element] = []
            for bucket in tags.values():
                out.extend(bucket.keys())
            return out
        bucket = tags.get(tag)
        return list(bucket.keys()) if bucket else []

    def count(self, element: Element) -> int:
        """Indexed multiplicity of ``element``."""
        return self._index.get(element.label, {}).get(element.tag, {}).get(element, 0)

    def common_tags(self, labels: Iterable[str]) -> Set[int]:
        """Tags that have at least one element for *every* label in ``labels``.

        This is the key pruning step for converted loop programs: a reaction
        consuming labels ``B13`` and ``B15`` can only fire for tags where both
        labels are populated.
        """
        labels = list(labels)
        if not labels:
            return set()
        result: Optional[Set[int]] = None
        for label in labels:
            tags = set(self._index.get(label, {}).keys())
            result = tags if result is None else (result & tags)
            if not result:
                return set()
        return result or set()
