"""Label/tag indexes used by the reaction-matching engine.

Reactions produced by Algorithm 1 always constrain the *label* of every
element they consume (and, when loops are present, require all consumed
elements to carry the same *tag*).  Scanning the whole multiset for every
candidate combination is quadratic and dominates execution time for converted
loop programs, so the matching engine works off the :class:`LabelTagIndex`
below: a two-level dictionary ``label -> tag -> [elements]`` maintained
incrementally alongside the multiset.

The index is deliberately decoupled from :class:`~repro.multiset.multiset.Multiset`
(which only indexes by label).  It can be used in two modes:

* *snapshot*: built once from a multiset (``LabelTagIndex(multiset)``) and
  discarded, as the pre-scheduler engines did once per step;
* *attached*: :meth:`attach` subscribes the index to the multiset's change
  notifications, after which every ``add``/``remove``/``replace`` on the
  multiset is mirrored incrementally — this is the persistent-index path the
  :class:`~repro.gamma.scheduler.ReactionScheduler` runs on.

Incremental maintenance preserves the exact bucket ordering a from-scratch
rebuild would produce (both follow the multiset's own insertion order), so the
two modes are interchangeable even for seeded, order-sensitive schedulers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set

from .element import Element
from .multiset import Multiset

__all__ = ["LabelTagIndex"]


class LabelTagIndex:
    """Incremental index ``label -> tag -> list of (element, multiplicity)``."""

    def __init__(self, multiset: Optional[Multiset] = None) -> None:
        # label -> tag -> element -> count
        self._index: Dict[str, Dict[int, Dict[Element, int]]] = defaultdict(
            lambda: defaultdict(dict)
        )
        # label -> element -> count, in multiset insertion order.  Serves the
        # tag-agnostic queries: grouping by tag would reorder aggregated
        # candidate lists relative to a from-scratch rebuild, which the
        # seeded (shuffling) schedulers would observe.
        self._flat: Dict[str, Dict[Element, int]] = {}
        self._size = 0
        self._source: Optional[Multiset] = None
        self._listener = None
        if multiset is not None:
            self.rebuild(multiset)

    # -- maintenance ------------------------------------------------------------
    def rebuild(self, multiset: Multiset) -> None:
        """Discard the current contents and re-index ``multiset``."""
        self._index.clear()
        self._flat.clear()
        self._size = 0
        for element, count in multiset.counts().items():
            self.add(element, count)

    def attach(self, multiset: Multiset) -> "LabelTagIndex":
        """Bind this index to ``multiset`` and keep it in sync incrementally.

        The index is rebuilt once, then maintained through the multiset's
        change notifications; call :meth:`detach` when done.  Attaching twice
        (or while attached elsewhere) raises ``RuntimeError``.
        """
        if self._source is not None:
            raise RuntimeError("index is already attached to a multiset")
        self.rebuild(multiset)
        self._source = multiset
        self._listener = multiset.subscribe(self._on_change)
        return self

    def detach(self) -> None:
        """Stop tracking the attached multiset (no-op when not attached)."""
        if self._source is not None:
            self._source.unsubscribe(self._listener)
            self._source = None
            self._listener = None

    @property
    def attached(self) -> bool:
        """True while the index mirrors a live multiset."""
        return self._source is not None

    def _on_change(self, element: Element, delta: int) -> None:
        # Mirror of add()/remove() without their argument re-validation: the
        # multiset already validated the mutation it is notifying about.  This
        # runs once per element copy touched by every engine firing — or once
        # per *distinct* element per phase under the batched notifications of
        # ``Multiset.rewrite_batch_unchecked``, whose aggregated ``delta``
        # magnitudes the add/remove branches below absorb unchanged.
        if delta == 0:
            return
        label = element.label
        if delta > 0:
            bucket = self._index[label][element.tag]
            bucket[element] = bucket.get(element, 0) + delta
            flat = self._flat.setdefault(label, {})
            flat[element] = flat.get(element, 0) + delta
            self._size += delta
            return
        count = -delta
        tags = self._index[label]
        bucket = tags[element.tag]
        have = bucket[element]
        if have == count:
            del bucket[element]
            if not bucket:
                del tags[element.tag]
                if not tags:
                    del self._index[label]
        else:
            bucket[element] = have - count
        flat = self._flat[label]
        if flat[element] == count:
            del flat[element]
            if not flat:
                del self._flat[label]
        else:
            flat[element] -= count
        self._size -= count

    def add(self, element: Element, count: int = 1) -> None:
        """Register ``count`` additional copies of ``element``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        bucket = self._index[element.label][element.tag]
        bucket[element] = bucket.get(element, 0) + count
        flat = self._flat.setdefault(element.label, {})
        flat[element] = flat.get(element, 0) + count
        self._size += count

    def remove(self, element: Element, count: int = 1) -> None:
        """Unregister ``count`` copies of ``element``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        tags = self._index.get(element.label)
        if not tags or element.tag not in tags or element not in tags[element.tag]:
            raise KeyError(f"element not indexed: {element!r}")
        bucket = tags[element.tag]
        have = bucket[element]
        if have < count:
            raise KeyError(f"cannot remove {count} x {element!r}: only {have} indexed")
        if have == count:
            del bucket[element]
            if not bucket:
                del tags[element.tag]
                if not tags:
                    del self._index[element.label]
        else:
            bucket[element] = have - count
        flat = self._flat[element.label]
        if flat[element] == count:
            del flat[element]
            if not flat:
                del self._flat[element.label]
        else:
            flat[element] -= count
        self._size -= count

    # -- queries ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def labels(self) -> List[str]:
        """Labels currently present."""
        return list(self._index.keys())

    def tags_for(self, label: str) -> List[int]:
        """Tags present among elements carrying ``label``."""
        return list(self._index.get(label, {}).keys())

    def candidates(self, label: str, tag: Optional[int] = None) -> List[Element]:
        """Distinct elements with ``label`` (and, when given, ``tag``).

        Candidates are listed in the underlying multiset's insertion order,
        whether the index was built from scratch or maintained incrementally.
        """
        if tag is None:
            flat = self._flat.get(label)
            return list(flat.keys()) if flat else []
        tags = self._index.get(label)
        if not tags:
            return []
        bucket = tags.get(tag)
        return list(bucket.keys()) if bucket else []

    def iter_candidates(self, label: str, tag: Optional[int] = None) -> Iterator[Element]:
        """Lazy variant of :meth:`candidates` (same order, no list allocation).

        Deterministic matchers probe only the first few candidates of a
        bucket, so yielding lazily keeps a match probe O(arity) instead of
        O(bucket size).  Callers must not mutate the multiset/index while the
        iterator is live.
        """
        if tag is None:
            flat = self._flat.get(label)
            if flat:
                yield from flat.keys()
            return
        tags = self._index.get(label)
        if not tags:
            return
        bucket = tags.get(tag)
        if bucket:
            yield from bucket.keys()

    def count(self, element: Element) -> int:
        """Indexed multiplicity of ``element``."""
        return self._index.get(element.label, {}).get(element.tag, {}).get(element, 0)

    # -- raw bucket access (compiled matcher) --------------------------------------
    def label_tag_buckets(self) -> Dict[str, Dict[int, Dict[Element, int]]]:
        """The live ``label -> tag -> element -> count`` mapping.

        Exposed for the compiled reaction matcher, which iterates buckets
        directly instead of going through :meth:`candidates`.  The mapping is
        *live* (not a copy): callers must not mutate it, and must not mutate
        the multiset while iterating — the same discipline the scheduler
        already imposes between probe calls.
        """
        return self._index

    def label_buckets(self) -> Dict[str, Dict[Element, int]]:
        """The live tag-agnostic ``label -> element -> count`` mapping.

        Bucket iteration order equals :meth:`candidates` order (multiset
        insertion order).  Same liveness caveats as :meth:`label_tag_buckets`.
        """
        return self._flat

    def common_tags(self, labels: Iterable[str]) -> Set[int]:
        """Tags that have at least one element for *every* label in ``labels``.

        This is the key pruning step for converted loop programs: a reaction
        consuming labels ``B13`` and ``B15`` can only fire for tags where both
        labels are populated.
        """
        labels = list(labels)
        if not labels:
            return set()
        result: Optional[Set[int]] = None
        for label in labels:
            tags = set(self._index.get(label, {}).keys())
            result = tags if result is None else (result & tags)
            if not result:
                return set()
        return result or set()

    def as_dict(self) -> Dict[str, Dict[int, Dict[Element, int]]]:
        """Plain-dict snapshot ``label -> tag -> element -> count`` (for tests)."""
        return {
            label: {tag: dict(bucket) for tag, bucket in tags.items()}
            for label, tags in self._index.items()
        }
