"""Columnar multiset storage: per-label parallel arrays behind the object model.

The object :class:`~repro.multiset.multiset.Multiset` keeps one ``Counter``
entry per distinct :class:`~repro.multiset.element.Element`; every guard
probe of the compiled matchers therefore walks Python objects one by one.
This module provides the storage half of the vectorized execution path
(:mod:`repro.gamma.vectorized`): a :class:`ColumnarStore` mirrors a multiset
as **per-label buckets of parallel arrays** —

* ``values``/``tags``/``counts`` — ``array('q')`` columns (64-bit ints, one
  slot per distinct element, append-only).  When numpy is importable the
  sweeps view these columns zero-copy through ``numpy.frombuffer``; without
  numpy the same columns are scanned scalar-wise, so numpy stays a purely
  optional extra and the stored state is identical either way.
* ``elements`` — the slot -> :class:`Element` objects, preserving the exact
  value objects (``True`` vs ``1``, non-int payloads) so conversion back to
  a :class:`Multiset` is lossless.
* ``seqs`` — a store-wide monotone insertion sequence per slot, preserving
  the multiset's observable ``Counter`` insertion order across buckets.

Slots are **tombstoned, never reused**: a count that returns to zero stays a
dead slot, and re-adding the same element appends a fresh slot at the tail —
exactly mirroring ``Counter`` key deletion + re-insertion, which seeded
schedulers observe through bucket enumeration order.  Buckets whose elements
are not machine-int shaped (non-int values, magnitudes beyond ``±2**31``)
remain fully usable as storage but are flagged non-``vectorizable`` so the
execution kernels fall back to the object path for them.

A store is either *detached* (a snapshot built by :meth:`from_multiset`, the
mode the sequential drain kernel uses) or *attached* to a live multiset via
its change-notification stream (:meth:`attach`), the same discipline as
:class:`~repro.multiset.index.LabelTagIndex` — which keeps the columns fresh
across supersteps and migrations without rebuilds.

The module also owns the sharded runtime's **column-batch wire format**
(:func:`to_column_batch` / :func:`from_column_batch`): element batches cross
process boundaries as four parallel lists instead of per-element quads.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .element import Element
from .multiset import Multiset

__all__ = [
    "ColumnarBucket",
    "ColumnarStore",
    "numpy_or_none",
    "to_column_batch",
    "from_column_batch",
    "column_batch_copies",
    "ColumnBatch",
]

try:  # pragma: no cover - exercised via both CI legs, not branch-countable
    if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
        _np = None  # test/CI seam: force the pure-Python fallback
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None


def numpy_or_none():
    """The numpy module when available (and not disabled), else ``None``.

    The vectorized kernels call this at use time rather than importing numpy
    themselves, so a single seam (monkeypatching this module's ``_np``, or
    setting ``REPRO_NO_NUMPY=1`` before import) switches the whole stack to
    the pure-Python fallback.
    """
    return _np


#: Values/tags a bucket may hold while staying vectorizable.  The bound keeps
#: every *supported* guard expression (see ``repro.gamma.vectorized``) inside
#: int64 during mask arithmetic; larger payloads demote the bucket to
#: object-path storage, they are never an error.
VECTOR_INT_BOUND = 2**31

#: Wire form of an element batch: ``(values, labels, tags, counts)`` parallel
#: lists.  Same information as a list of quads, but the column shape pickles
#: leaner and decodes bucket-at-a-time.
ColumnBatch = Tuple[List[Any], List[str], List[int], List[int]]


def _int_in_bound(value: Any) -> bool:
    """True when ``value`` is a plain int (or bool) within the vector bound."""
    return (
        isinstance(value, int)
        and -VECTOR_INT_BOUND <= value <= VECTOR_INT_BOUND
    )


class ColumnarBucket:
    """One label's slots: parallel columns plus the object-side mirrors.

    ``values``/``tags``/``counts`` are parallel ``array('q')`` columns;
    ``elements``/``seqs`` are parallel Python lists.  ``slot_of`` maps a live
    element's ``(value, tag)`` key to its slot — within one bucket the label
    is fixed, so that pair identifies the element (``True`` and ``1`` collide
    by design: the corresponding elements compare equal).  ``live_head`` is a
    monotone lower bound on the first live slot, letting sweeps skip the
    tombstoned prefix.
    """

    __slots__ = (
        "label",
        "values",
        "tags",
        "counts",
        "elements",
        "seqs",
        "slot_of",
        "live_slots",
        "live_copies",
        "live_head",
        "vectorizable",
        "merge_log",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.values = array("q")
        self.tags = array("q")
        self.counts = array("q")
        self.elements: List[Element] = []
        self.seqs: List[int] = []
        self.slot_of: Dict[Tuple[Any, int], int] = {}
        self.live_slots = 0
        self.live_copies = 0
        self.live_head = 0
        self.vectorizable = True
        #: Slots whose count increased after creation (merge events); the
        #: sequential kernel consumes this as its revival log.
        self.merge_log: List[int] = []

    def __len__(self) -> int:
        return len(self.elements)

    def append(self, element: Element, count: int, seq: int) -> int:
        """Append a fresh slot for ``element``; returns the slot index.

        Non-machine-int payloads are stored as column zeros (the object is in
        ``elements``) and permanently demote the bucket from vectorizable.
        """
        slot = len(self.elements)
        value = element.value
        if _int_in_bound(value) and element.tag <= VECTOR_INT_BOUND:
            self.values.append(value)
            self.tags.append(element.tag)
        else:
            self.vectorizable = False
            self.values.append(0)
            self.tags.append(min(element.tag, VECTOR_INT_BOUND))
        self.counts.append(count)
        self.elements.append(element)
        self.seqs.append(seq)
        self.slot_of[(value, element.tag)] = slot
        self.live_slots += 1
        self.live_copies += count
        return slot

    def merge(self, slot: int, count: int) -> None:
        """Add ``count`` copies to a live slot (position is preserved)."""
        self.counts[slot] += count
        self.live_copies += count
        self.merge_log.append(slot)

    def shrink(self, slot: int, count: int) -> bool:
        """Remove ``count`` copies from a live slot; True when it died."""
        remaining = self.counts[slot] - count
        self.counts[slot] = remaining
        self.live_copies -= count
        if remaining <= 0:
            element = self.elements[slot]
            del self.slot_of[(element.value, element.tag)]
            self.live_slots -= 1
            return True
        return False

    def advance_live_head(self) -> int:
        """Advance (and return) the first-live-slot lower bound."""
        counts = self.counts
        head = self.live_head
        end = len(counts)
        while head < end and counts[head] <= 0:
            head += 1
        self.live_head = head
        return head

    def live_items(self) -> List[Tuple[Element, int]]:
        """Live ``(element, count)`` pairs in slot (= insertion) order."""
        counts = self.counts
        return [
            (element, counts[slot])
            for slot, element in enumerate(self.elements)
            if counts[slot] > 0
        ]

    def values_view(self):
        """Zero-copy numpy views ``(values, tags, counts)`` of the columns.

        Views must be re-taken after any append (the underlying buffer may
        have been reallocated); returns ``None`` without numpy.
        """
        if _np is None:
            return None
        return (
            _np.frombuffer(self.values, dtype=_np.int64),
            _np.frombuffer(self.tags, dtype=_np.int64),
            _np.frombuffer(self.counts, dtype=_np.int64),
        )


class ColumnarStore:
    """A multiset mirrored as per-label-bucket parallel arrays.

    Lossless in both directions: :meth:`from_multiset` / :meth:`to_multiset`
    round-trip counts, labels, the exact element objects, *and* every
    observable ordering (global ``Counter`` insertion order via per-slot
    sequence numbers; per-label bucket order; label-bucket creation order via
    per-label streak sequences).  See the module docstring for the slot
    discipline.
    """

    def __init__(self) -> None:
        self.buckets: Dict[str, ColumnarBucket] = {}
        #: label -> streak sequence: insertion-ordered like
        #: ``Multiset._by_label`` — an entry is deleted when its last copy
        #: dies and re-appended when the label refills, so iteration order
        #: tracks the object container's bucket creation order.
        self.label_streaks: Dict[str, int] = {}
        self._seq = 0
        self.size = 0
        self._multiset: Optional[Multiset] = None
        self._listener = None

    # -- construction / conversion -------------------------------------------------
    @classmethod
    def from_multiset(cls, multiset: Multiset) -> "ColumnarStore":
        """Detached columnar snapshot of ``multiset`` (insertion order kept)."""
        store = cls()
        for element, count in multiset.counts().items():
            store.add(element, count)
        return store

    def to_multiset(self) -> Multiset:
        """Rebuild an equivalent object :class:`Multiset` (lossless)."""
        result = Multiset()
        for element, count in self.live_pairs():
            result.add(element, count)
        return result

    def live_pairs(self) -> List[Tuple[Element, int]]:
        """Live ``(element, count)`` pairs in global insertion (seq) order."""
        pairs: List[Tuple[int, Element, int]] = []
        for bucket in self.buckets.values():
            counts = bucket.counts
            seqs = bucket.seqs
            for slot, element in enumerate(bucket.elements):
                if counts[slot] > 0:
                    pairs.append((seqs[slot], element, counts[slot]))
        pairs.sort(key=lambda item: item[0])
        return [(element, count) for _, element, count in pairs]

    # -- attachment ----------------------------------------------------------------
    def attach(self, multiset: Multiset) -> None:
        """Mirror ``multiset`` and follow its change notifications."""
        if self._multiset is not None:
            raise RuntimeError("store is already attached")
        for element, count in multiset.counts().items():
            self.add(element, count)
        self._multiset = multiset
        self._listener = multiset.subscribe(self._on_change)

    def detach(self) -> None:
        """Stop following the attached multiset (idempotent)."""
        if self._multiset is not None:
            self._multiset.unsubscribe(self._listener)
            self._multiset = None
            self._listener = None

    def _on_change(self, element: Element, delta: int) -> None:
        if delta > 0:
            self.add(element, delta)
        elif delta < 0:
            self.remove(element, -delta)

    # -- mutation ------------------------------------------------------------------
    def bucket_for(self, label: str) -> ColumnarBucket:
        """The label's bucket, created on first use."""
        bucket = self.buckets.get(label)
        if bucket is None:
            bucket = self.buckets[label] = ColumnarBucket(label)
        return bucket

    def add(self, element: Element, count: int = 1) -> Tuple[ColumnarBucket, int, bool]:
        """Add ``count`` copies; returns ``(bucket, slot, appended)``.

        A live slot for an equal element merges in place (its position is
        preserved, like incrementing a live ``Counter`` key); otherwise a new
        slot is appended at the tail (like ``Counter`` key re-insertion).
        """
        bucket = self.bucket_for(element.label)
        refill = bucket.live_copies == 0
        slot = bucket.slot_of.get((element.value, element.tag))
        if slot is not None:
            bucket.merge(slot, count)
            appended = False
        else:
            slot = bucket.append(element, count, self._next_seq())
            appended = True
        self.size += count
        if refill:
            self.label_streaks.pop(element.label, None)
            self.label_streaks[element.label] = self._next_seq()
        return bucket, slot, appended

    def remove(self, element: Element, count: int = 1) -> Tuple[ColumnarBucket, int, bool]:
        """Remove ``count`` copies; returns ``(bucket, slot, died)``."""
        bucket = self.buckets[element.label]
        slot = bucket.slot_of[(element.value, element.tag)]
        died = bucket.shrink(slot, count)
        self.size -= count
        if bucket.live_copies == 0:
            del self.label_streaks[element.label]
        return bucket, slot, died

    def remove_slot(self, bucket: ColumnarBucket, slot: int, count: int = 1) -> bool:
        """Slot-direct :meth:`remove` for callers that already hold the slot.

        The execution kernels consume elements they just matched — the slot
        is in hand, so the label and ``slot_of`` lookups of :meth:`remove`
        are pure overhead at firing rates.  Returns ``True`` when the slot
        died.
        """
        died = bucket.shrink(slot, count)
        self.size -= count
        if bucket.live_copies == 0:
            del self.label_streaks[bucket.label]
        return died

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- queries -------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def labels(self) -> List[str]:
        """Labels with live elements, in bucket-streak (creation) order."""
        return list(self.label_streaks.keys())

    def label_buckets(self) -> Dict[str, Dict[Element, int]]:
        """Live content as ``{label: {element: count}}`` dicts.

        The raw-bucket shape of
        :meth:`~repro.multiset.index.LabelTagIndex.label_buckets`, so code
        written against the index's accessors can read a columnar store
        unchanged.  Labels follow streak order; elements follow slot order
        (both match the incrementally maintained object containers).
        """
        return {
            label: dict(self.buckets[label].live_items())
            for label in self.label_streaks
        }

    def counts(self) -> Dict[Element, int]:
        """Live ``{element: count}`` in global insertion order."""
        return dict(self.live_pairs())

    def vectorizable_labels(self) -> List[str]:
        """Live labels whose buckets are int-shaped (kernel-eligible)."""
        return [
            label
            for label in self.label_streaks
            if self.buckets[label].vectorizable
        ]

    # -- exact object-state reconstruction -----------------------------------------
    def sync_into(self, multiset: Multiset) -> None:
        """Overwrite ``multiset``'s state in place to match this store exactly.

        Used by the sequential drain kernel when it hands control back to the
        object path: the kernel mutates only the store, then reconstructs the
        multiset's ``Counter``s — including the orderings seeded schedulers
        can observe (global key order from slot sequences, per-label bucket
        order, label-bucket streak order) — without emitting change
        notifications.  Callers must re-arm any attached observers
        themselves (the kernel rebuilds the scheduler's index and clears its
        parked set).
        """
        counts = multiset._counts
        by_label = multiset._by_label
        counts.clear()
        by_label.clear()
        for label in self.label_streaks:
            by_label[label] = type(counts)()
        size = 0
        for element, count in self.live_pairs():
            counts[element] = count
            by_label[element.label][element] = count
            size += count
        multiset._size = size


# -- sharded wire format -------------------------------------------------------------
def to_column_batch(pairs: Sequence[Tuple[Element, int]]) -> ColumnBatch:
    """Encode ``(element, count)`` pairs as four parallel columns.

    The batched-exchange wire format of the sharded backends: same
    information as per-element quads, shipped as arrays-of-columns instead of
    arrays-of-tuples (leaner pickles, bucket-at-a-time decode).
    """
    values: List[Any] = []
    labels: List[str] = []
    tags: List[int] = []
    counts: List[int] = []
    for element, count in pairs:
        values.append(element.value)
        labels.append(element.label)
        tags.append(element.tag)
        counts.append(count)
    return values, labels, tags, counts


def from_column_batch(batch: ColumnBatch) -> List[Tuple[Element, int]]:
    """Decode a column batch back into ``(element, count)`` pairs."""
    values, labels, tags, counts = batch
    return [
        (Element(value=value, label=label, tag=tag), count)
        for value, label, tag, count in zip(values, labels, tags, counts)
    ]


def column_batch_copies(batch: ColumnBatch) -> int:
    """Total element copies carried by a column batch."""
    return sum(batch[3])
