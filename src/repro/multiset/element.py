"""Tagged multiset elements.

The Gamma translation of a dynamic dataflow graph represents every operand
(edge value) as a multiset element carrying three pieces of information:

* ``value`` -- the data itself (any hashable/comparable Python value; the
  paper's examples use integers and booleans encoded as 0/1),
* ``label`` -- the edge label of the dataflow graph the element came from
  (``"A1"``, ``"B2"``, ...),
* ``tag``   -- the dynamic-dataflow iteration tag.  The paper's first example
  uses pairs ``[value, label]``; as soon as loops appear the elements become
  triples ``[value, label, tag]``.  We always store the triple and default the
  tag to ``0``, which makes the pair form a special case.

Elements are immutable so that they can live in dictionaries, sets and counted
multisets without surprises, and so that the matching engine can hand them to
reaction actions without defensive copies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Tuple

__all__ = ["Element", "make_elements"]


@dataclass(frozen=True, slots=True)
class Element:
    """A single multiset element ``[value, label, tag]``.

    Parameters
    ----------
    value:
        The payload.  Usually an ``int`` / ``float`` / ``bool``; any hashable
        value is accepted (unhashable values are rejected eagerly so that
        failures do not surface later inside the multiset internals).
    label:
        The edge label this element corresponds to in the dataflow view.
        Labels are plain strings.  Elements that do not originate from a
        dataflow conversion may use any descriptive string (e.g. ``"x"``).
    tag:
        Dynamic dataflow iteration tag.  Non-negative integer.

    Elements spend their lives as keys of the multiset's counters and of the
    label/tag index buckets, so the triple hash is computed once at
    construction and cached; re-deriving it on every dictionary operation
    dominated the engines' rewrite cost.
    """

    value: Any
    label: str = ""
    tag: int = 0
    _hash: int = field(init=False, repr=False, compare=False, default=0)
    _stable: Any = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not isinstance(self.label, str):
            raise TypeError(f"label must be a string, got {type(self.label).__name__}")
        if not isinstance(self.tag, int) or isinstance(self.tag, bool):
            raise TypeError(f"tag must be an int, got {type(self.tag).__name__}")
        if self.tag < 0:
            raise ValueError(f"tag must be non-negative, got {self.tag}")
        try:
            object.__setattr__(self, "_hash", hash((self.value, self.label, self.tag)))
        except TypeError as exc:  # pragma: no cover - defensive
            raise TypeError(f"element value must be hashable, got {self.value!r}") from exc

    def __hash__(self) -> int:
        return self._hash

    # -- convenience constructors -------------------------------------------------
    @classmethod
    def pair(cls, value: Any, label: str) -> "Element":
        """Build a pair-form element ``[value, label]`` (tag defaults to 0)."""
        return cls(value=value, label=label, tag=0)

    @classmethod
    def from_tuple(cls, data: Tuple) -> "Element":
        """Build an element from a 1-, 2- or 3-tuple ``(value[, label[, tag]])``."""
        if not isinstance(data, tuple):
            raise TypeError(f"expected a tuple, got {type(data).__name__}")
        if len(data) == 1:
            return cls(value=data[0])
        if len(data) == 2:
            return cls(value=data[0], label=data[1])
        if len(data) == 3:
            return cls(value=data[0], label=data[1], tag=data[2])
        raise ValueError(f"expected a tuple of length 1-3, got length {len(data)}")

    # -- projections ---------------------------------------------------------------
    def as_tuple(self) -> Tuple[Any, str, int]:
        """Return the canonical ``(value, label, tag)`` triple."""
        return (self.value, self.label, self.tag)

    def stable_hash(self) -> int:
        """A process-independent 64-bit hash of the canonical triple.

        Unlike ``hash(self)``, which varies with ``PYTHONHASHSEED`` for string
        labels (and any string-valued payload), this digest depends only on
        the ``repr`` of the canonicalized ``(value, label, tag)`` triple, so
        it is identical across interpreter processes and seeds.  The
        distributed runtime partitions on it — a partitioning decision taken
        on one node must be reproducible on every other node.

        Equal elements must digest equally, so numeric values that compare
        equal across types (``True == 1 == 1.0``) are canonicalized to one
        form before hashing; exotic numeric types (``Decimal``, ``Fraction``)
        and values with unstable ``repr`` (e.g. sets) are not canonicalized —
        they get a consistent placement per representation, never an error.

        The digest is cached on first use (elements are immutable, so it can
        never go stale): the sharded runtime hashes the same element on every
        partition/routing lookup, and recomputing blake2b per call was
        measurable on the exchange paths.  Caching is lazy rather than done
        in ``__post_init__`` because the single-process engines construct
        millions of elements that are never routed.
        """
        cached = self._stable
        if cached is not None:
            return cached
        value = self.value
        if isinstance(value, bool):
            value = int(value)
        elif isinstance(value, float) and value.is_integer():
            value = int(value)
        digest = hashlib.blake2b(
            repr((value, self.label, self.tag)).encode("utf-8"), digest_size=8
        ).digest()
        result = int.from_bytes(digest, "big")
        object.__setattr__(self, "_stable", result)
        return result

    def with_value(self, value: Any) -> "Element":
        """Copy of this element with a different value."""
        return Element(value=value, label=self.label, tag=self.tag)

    def with_label(self, label: str) -> "Element":
        """Copy of this element with a different label."""
        return Element(value=self.value, label=label, tag=self.tag)

    def with_tag(self, tag: int) -> "Element":
        """Copy of this element with a different tag."""
        return Element(value=self.value, label=self.label, tag=tag)

    def inc_tag(self, delta: int = 1) -> "Element":
        """Copy of this element with the tag incremented by ``delta``."""
        return Element(value=self.value, label=self.label, tag=self.tag + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.value!r}, {self.label!r}, {self.tag}]"


def make_elements(items: Iterable) -> list:
    """Normalize an iterable of tuples/Elements into a list of :class:`Element`.

    Accepts a mix of :class:`Element` instances and plain tuples in any of the
    forms accepted by :meth:`Element.from_tuple`.  This is the convenience
    entry point used by examples and tests to write initial multisets tersely::

        make_elements([(1, "A1"), (5, "B1"), (3, "C1"), (2, "D1")])
    """
    out = []
    for item in items:
        if isinstance(item, Element):
            out.append(item)
        elif isinstance(item, tuple):
            out.append(Element.from_tuple(item))
        else:
            out.append(Element(value=item))
    return out
