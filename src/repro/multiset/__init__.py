"""Multiset substrate: tagged elements, counted multiset and matching indexes.

This subpackage is the data layer shared by both computational models:

* the Gamma engine rewrites a :class:`Multiset` of :class:`Element` triples;
* the dataflow-to-Gamma conversion (Algorithm 1 of the paper) maps dataflow
  edge values to exactly these elements.
"""

from .columnar import (
    ColumnarBucket,
    ColumnarStore,
    column_batch_copies,
    from_column_batch,
    numpy_or_none,
    to_column_batch,
)
from .element import Element, make_elements
from .index import LabelTagIndex
from .multiset import Multiset
from .partition import hash_partition, home_of, partition_counts, partition_pairs

__all__ = [
    "Element",
    "make_elements",
    "Multiset",
    "LabelTagIndex",
    "home_of",
    "partition_counts",
    "partition_pairs",
    "hash_partition",
    "ColumnarBucket",
    "ColumnarStore",
    "to_column_batch",
    "from_column_batch",
    "column_batch_copies",
    "numpy_or_none",
]
