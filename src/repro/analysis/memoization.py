"""Trace/task reuse analysis (the DF-DTM benefit the paper cites).

Section I of the paper lists "performing instruction trace reuse" [3] among the
benefits a Gamma program gains from being viewed as a dataflow graph: when the
same instruction fires repeatedly with the same operand values, a memoization
cache can skip the re-execution.  Because Algorithm 1 maps node firings to
reaction firings one-for-one, the same analysis can be run on either side.

This module provides:

* :func:`reuse_from_dataflow` / :func:`reuse_from_gamma` — reuse statistics
  extracted from execution traces (total firings, unique signatures, reusable
  firings);
* :class:`MemoizationCache` — an executable cache that can be layered on a
  Gamma execution to *measure* (not just estimate) the firings avoided, which
  is what the memoization benchmark of experiment E9(c) reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dataflow.graph import DataflowGraph
from ..dataflow.interpreter import run_graph
from ..gamma.engine import SequentialEngine
from ..gamma.matching import Matcher
from ..gamma.program import GammaProgram
from ..gamma.tracer import Trace
from ..multiset.multiset import Multiset

__all__ = [
    "ReuseStatistics",
    "reuse_from_dataflow",
    "reuse_from_gamma",
    "MemoizationCache",
    "run_with_memoization",
]


@dataclass(frozen=True)
class ReuseStatistics:
    """Counts of repeated work detected in a trace."""

    total: int
    unique: int

    @property
    def reusable(self) -> int:
        """Firings whose (operation, operand values) signature was seen before."""
        return self.total - self.unique

    @property
    def reuse_ratio(self) -> float:
        return self.reusable / self.total if self.total else 0.0


def reuse_from_dataflow(graph: DataflowGraph, **run_kwargs) -> ReuseStatistics:
    """Reuse statistics of one dataflow execution (root injections excluded)."""
    result = run_graph(graph, **run_kwargs)
    signatures = [
        event.signature() for event in result.firings if event.kind != "root"
    ]
    return ReuseStatistics(total=len(signatures), unique=len(set(signatures)))


def reuse_from_gamma(
    program: GammaProgram, initial: Optional[Multiset] = None, engine: str = "sequential",
    seed: Optional[int] = None,
) -> ReuseStatistics:
    """Reuse statistics of one Gamma execution."""
    from ..api import RuntimeConfig
    from ..gamma.engine import run as run_gamma

    result = run_gamma(program, initial, config=RuntimeConfig(engine=engine, seed=seed))
    stats = result.trace.reuse_statistics()
    return ReuseStatistics(total=stats["total"], unique=stats["unique"])


class MemoizationCache:
    """A (reaction, consumed values) -> produced elements cache.

    Keys ignore tags — reuse across loop iterations is precisely the effect
    DF-DTM exploits.  Produced elements are re-tagged with the current match's
    tag when they are replayed, preserving the dynamic-dataflow semantics.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple, List[Tuple]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(reaction_name: str, consumed) -> Tuple:
        return (reaction_name, tuple((e.value, e.label) for e in consumed))

    def lookup(self, reaction_name: str, consumed):
        key = self._key(reaction_name, consumed)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        return None

    def store(self, reaction_name: str, consumed, produced) -> None:
        key = self._key(reaction_name, consumed)
        self._cache[key] = [(e.value, e.label, e.tag) for e in produced]

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class MemoizedRunResult:
    """Outcome of :func:`run_with_memoization`."""

    final: Multiset
    firings: int
    computed: int
    replayed: int

    @property
    def savings_ratio(self) -> float:
        return self.replayed / self.firings if self.firings else 0.0


def run_with_memoization(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    max_steps: int = 1_000_000,
) -> MemoizedRunResult:
    """Sequential Gamma execution with a DF-DTM-style reuse cache.

    Semantically identical to the sequential engine (same stable multiset);
    the point is the ``computed`` / ``replayed`` split: replayed firings are
    the ones whose action evaluation a real implementation would skip.
    """
    from ..multiset.element import Element

    multiset = initial if initial is not None else program.initial
    if multiset is None:
        raise ValueError("an initial multiset is required")
    multiset = multiset.copy()

    cache = MemoizationCache()
    firings = 0
    computed = 0
    replayed = 0

    while firings < max_steps:
        matcher = Matcher(multiset)
        match = None
        for reaction in program.reactions:
            match = matcher.find(reaction)
            if match is not None:
                break
        if match is None:
            break

        cached = cache.lookup(match.reaction.name, match.consumed)
        if cached is not None:
            produced = [Element(value=v, label=l, tag=t) for v, l, t in cached]
            # Re-tag relative to the current match when all consumed tags agree
            # (the loop-iteration case); otherwise replay verbatim.
            consumed_tags = {e.tag for e in match.consumed}
            cached_source_tags = {t for _, _, t in cached}
            if len(consumed_tags) == 1 and len(cached_source_tags) <= 1:
                current_tag = consumed_tags.pop()
                fresh = match.reaction.apply(dict(match.binding))
                # Tag handling (e.g. inctag's +1) must follow the reaction, so use
                # the fresh tags but keep the cached values to model value-reuse.
                produced = [
                    Element(value=c.value, label=f.label, tag=f.tag)
                    for c, f in zip(produced, fresh)
                ] if len(fresh) == len(produced) else fresh
            replayed += 1
        else:
            produced = match.produced()
            cache.store(match.reaction.name, match.consumed, produced)
            computed += 1

        multiset.replace(match.consumed, produced)
        firings += 1

    return MemoizedRunResult(
        final=multiset, firings=firings, computed=computed, replayed=replayed
    )
