"""Plain-text table formatting for the experiment harness.

The benchmark scripts print the same row/series structure the paper's
artifacts imply (reaction counts per example, parallelism profiles, speedup
curves); this module keeps the formatting in one place so every experiment
reads the same way in ``bench_output.txt`` and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_profile", "format_dict", "section"]

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_profile(profile: Sequence[int], title: str = "parallelism profile") -> str:
    """Render a per-step parallelism profile as a compact bar chart."""
    if not profile:
        return f"{title}: (empty)"
    peak = max(profile)
    lines = [f"{title} (peak {peak}):"]
    for step, width in enumerate(profile):
        bar = "#" * width
        lines.append(f"  step {step:3d} |{bar} {width}")
    return "\n".join(lines)


def format_dict(data: Mapping[str, Cell], title: Optional[str] = None) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(k) for k in data), default=0)
    for key, value in data.items():
        lines.append(f"  {key.ljust(width)} : {_format_cell(value)}")
    return "\n".join(lines)


def section(title: str, char: str = "=") -> str:
    """A section header used by the benchmark harness output."""
    bar = char * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
