"""Reaction dependency graphs from program structure and execution traces.

The signalling-pathway literature studies reaction networks as weighted
graphs; this module rebuilds that view from the Gamma side, with no graph
library required (a :func:`to_networkx` export is available when networkx
happens to be installed, but nothing here imports it at module level):

* :func:`dependency_graph` — the *static* graph: an edge ``u -> v`` whenever
  some label reaction ``u`` can produce is a label reaction ``v`` consumes,
  i.e. ``v`` may become enabled by a firing of ``u``.  This is the
  footprint-overlap relation the routing table's union-find works from, so
  the graph's connected components mirror the shard routing groups.
* :func:`flow_weights` — the *dynamic* refinement: from a recorded trace,
  an upper bound on how many elements flowed from ``u`` firings into ``v``
  firings (``sum over labels of min(produced_by_u, consumed_by_v)``).  It
  is an upper bound, not an exact account — element identity is not tracked
  through the multiset, so two producers of one label split the credit
  pessimistically.
* :func:`hot_label_report` — per-label consumption/production totals of a
  trace, sorted hottest first: the report that tells a benchmark *which*
  labels concentrate the load (and therefore which routing groups a
  placement must spread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..gamma.program import GammaProgram
from ..gamma.tracer import Trace

__all__ = [
    "DependencyEdge",
    "DependencyGraph",
    "dependency_graph",
    "flow_weights",
    "hot_label_report",
    "to_networkx",
]

#: Label marker for wildcard dependencies (variable-label pattern or
#: non-constant production label): the overlap cannot be named statically.
WILDCARD = "*"


@dataclass(frozen=True)
class DependencyEdge:
    """One may-enable edge: ``producer`` firings can feed ``consumer``."""

    producer: str
    consumer: str
    #: Labels carrying the dependency; contains :data:`WILDCARD` when the
    #: overlap comes from a variable label rather than a named one.
    labels: FrozenSet[str]


@dataclass(frozen=True)
class DependencyGraph:
    """The static may-enable relation between a program's reactions."""

    nodes: Tuple[str, ...]
    edges: Tuple[DependencyEdge, ...]

    def successors(self, reaction: str) -> List[str]:
        """Reactions that may become enabled by a firing of ``reaction``."""
        return [edge.consumer for edge in self.edges if edge.producer == reaction]

    def predecessors(self, reaction: str) -> List[str]:
        """Reactions whose firings may enable ``reaction``."""
        return [edge.producer for edge in self.edges if edge.consumer == reaction]


def _has_variable_production(reaction: Any) -> bool:
    """True when some production's label is not a compile-time constant."""
    from ..gamma.expr import Const

    return any(
        not isinstance(production.label, Const)
        for branch in reaction.branches
        for production in branch.productions
    )


def dependency_graph(program: GammaProgram) -> DependencyGraph:
    """The label-overlap dependency graph of a program.

    Self-edges are included (a reaction whose products it can itself consume
    keeps re-enabling itself — the shape behind divergent translations).
    Variable labels are handled conservatively: a consumer with a
    variable-label pattern depends on every producer, and a producer with a
    non-constant production label feeds every consumer; such edges carry the
    :data:`WILDCARD` marker in their label set.
    """
    edges: List[DependencyEdge] = []
    for producer in program.reactions:
        produced = producer.produced_labels()
        wildcard_producer = _has_variable_production(producer)
        for consumer in program.reactions:
            shared = set(produced & consumer.consumed_labels())
            if consumer.has_variable_label() and (produced or wildcard_producer):
                shared |= produced  # a variable label matches any produced one
                shared.add(WILDCARD)
            elif wildcard_producer and consumer.consumed_labels():
                shared.add(WILDCARD)
            if shared:
                edges.append(
                    DependencyEdge(
                        producer=producer.name,
                        consumer=consumer.name,
                        labels=frozenset(shared),
                    )
                )
    return DependencyGraph(
        nodes=tuple(reaction.name for reaction in program.reactions),
        edges=tuple(edges),
    )


def _label_totals(trace: Trace) -> Tuple[Dict[str, Dict[str, int]], Dict[str, Dict[str, int]]]:
    """Per-reaction ``{label: count}`` totals: (produced, consumed)."""
    produced: Dict[str, Dict[str, int]] = {}
    consumed: Dict[str, Dict[str, int]] = {}
    for firing in trace.firings():
        by_reaction = produced.setdefault(firing.reaction, {})
        for element in firing.produced:
            by_reaction[element.label] = by_reaction.get(element.label, 0) + 1
        by_reaction = consumed.setdefault(firing.reaction, {})
        for element in firing.consumed:
            by_reaction[element.label] = by_reaction.get(element.label, 0) + 1
    return produced, consumed


def flow_weights(trace: Trace) -> Dict[Tuple[str, str], int]:
    """Upper-bound element flow between reaction pairs of a recorded run.

    For each ordered pair ``(u, v)`` the weight is
    ``sum over labels of min(elements of that label u produced, elements v
    consumed)`` — an *upper bound* on actual flow, since multiset elements
    are anonymous and several producers of one label split the same credit.
    Pairs with zero weight are omitted.
    """
    produced, consumed = _label_totals(trace)
    weights: Dict[Tuple[str, str], int] = {}
    for source, source_produced in produced.items():
        for target, target_consumed in consumed.items():
            weight = sum(
                min(count, target_consumed.get(label, 0))
                for label, count in source_produced.items()
            )
            if weight:
                weights[(source, target)] = weight
    return weights


def hot_label_report(trace: Trace, top: Optional[int] = None) -> List[Tuple[str, int, int]]:
    """Per-label ``(label, consumed, produced)`` totals, hottest first.

    Sorted by combined traffic descending (label name breaks ties for
    determinism); ``top`` truncates to the hottest entries.
    """
    consumed: Dict[str, int] = {}
    produced: Dict[str, int] = {}
    for firing in trace.firings():
        for element in firing.consumed:
            consumed[element.label] = consumed.get(element.label, 0) + 1
        for element in firing.produced:
            produced[element.label] = produced.get(element.label, 0) + 1
    labels = sorted(
        set(consumed) | set(produced),
        key=lambda label: (-(consumed.get(label, 0) + produced.get(label, 0)), label),
    )
    report = [
        (label, consumed.get(label, 0), produced.get(label, 0)) for label in labels
    ]
    return report[:top] if top is not None else report


def to_networkx(graph: DependencyGraph, trace: Optional[Trace] = None) -> Any:
    """Export a dependency graph as a ``networkx.DiGraph`` (optional extra).

    Edge attributes: ``labels`` (sorted list) and — when a trace is given —
    ``weight`` from :func:`flow_weights`.  Raises ``ImportError`` with a
    clear message when networkx is not installed; nothing else in this
    module needs it.
    """
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise ImportError(
            "to_networkx requires the optional networkx package; the rest of "
            "repro.analysis.reaction_graph works without it"
        ) from exc
    weights = flow_weights(trace) if trace is not None else {}
    digraph = networkx.DiGraph()
    digraph.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        attributes: Dict[str, Any] = {"labels": sorted(edge.labels)}
        if trace is not None:
            attributes["weight"] = weights.get((edge.producer, edge.consumer), 0)
        digraph.add_edge(edge.producer, edge.consumer, **attributes)
    return digraph
