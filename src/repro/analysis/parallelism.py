"""Parallelism analysis for both models.

Two kinds of quantities are produced:

* **static** bounds derived from the dataflow graph structure: critical-path
  length (the minimum number of parallel steps any schedule needs) and maximum
  width of the precedence DAG — computed on acyclic graphs (expression DAGs)
  or on the unrolled firing DAG of executions with loops;
* **dynamic** profiles measured on executions: firings per step of the
  simulators / the max-parallel Gamma engine, summarized by
  :class:`~repro.runtime.metrics.ParallelRunMetrics`.

The cross-model comparison of experiment E9(a) uses
:func:`compare_parallelism`, which runs the same program on both sides and
returns the two profiles with matching semantics (root injections are not
counted as work on either side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.df_to_gamma import dataflow_to_gamma
from ..dataflow.graph import DataflowGraph
from ..gamma.engine import MaxParallelEngine, ParallelEngine
from ..gamma.program import GammaProgram
from ..multiset.multiset import Multiset
from ..runtime.df_simulator import simulate_graph
from ..runtime.gamma_simulator import simulate_program
from ..runtime.metrics import ParallelRunMetrics

__all__ = [
    "critical_path_length",
    "graph_width",
    "dataflow_parallelism",
    "gamma_parallelism",
    "measured_parallelism",
    "ParallelismComparison",
    "compare_parallelism",
    "BackendParallelism",
    "compare_backend_parallelism",
]


def critical_path_length(graph: DataflowGraph) -> int:
    """Length (in vertices) of the longest path through operational vertices.

    Only defined for acyclic graphs — loop graphs should be measured
    dynamically instead.  Root vertices contribute depth 0.
    """
    order = graph.topological_order()
    depth: Dict[str, int] = {}
    for node_id in order:
        node = graph.node(node_id)
        incoming = graph.in_edges(node_id)
        best = 0
        for edge in incoming:
            best = max(best, depth.get(edge.src, 0))
        depth[node_id] = best if node.is_root else best + 1
    return max(depth.values(), default=0)


def graph_width(graph: DataflowGraph) -> int:
    """Maximum number of operational vertices at the same depth (acyclic graphs)."""
    order = graph.topological_order()
    depth: Dict[str, int] = {}
    for node_id in order:
        node = graph.node(node_id)
        incoming = graph.in_edges(node_id)
        best = 0
        for edge in incoming:
            best = max(best, depth.get(edge.src, 0))
        depth[node_id] = best if node.is_root else best + 1
    counts: Dict[int, int] = {}
    for node_id, level in depth.items():
        if not graph.node(node_id).is_root:
            counts[level] = counts.get(level, 0) + 1
    return max(counts.values(), default=0)


def dataflow_parallelism(
    graph: DataflowGraph,
    num_pes: Optional[int] = None,
    seed: Optional[int] = None,
) -> ParallelRunMetrics:
    """Dynamic parallelism profile of a dataflow execution."""
    return simulate_graph(graph, num_pes=num_pes, seed=seed).metrics


def gamma_parallelism(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    num_pes: Optional[int] = None,
    seed: Optional[int] = None,
) -> ParallelRunMetrics:
    """Dynamic parallelism profile of a (PE-bounded) parallel Gamma execution."""
    if num_pes is None:
        # Use the unbounded max-parallel engine, whose trace gives the profile.
        engine = MaxParallelEngine(seed=seed)
        result = engine.run(program, initial)
        return ParallelRunMetrics.from_profile(result.parallelism_profile(), num_pes=None)
    from ..api import RuntimeConfig

    return simulate_program(
        program, initial, num_pes=num_pes, config=RuntimeConfig(seed=seed)
    ).metrics


def measured_parallelism(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    max_batch: Optional[int] = None,
) -> ParallelRunMetrics:
    """Parallelism profile of an actual :class:`ParallelEngine` execution.

    Unlike :func:`gamma_parallelism` — which *counts* disjoint matches on the
    unit-latency PE model — this runs the batched superstep backend for real
    and reads the executed per-superstep widths from its trace.  ``max_batch``
    (reported as the profile's PE bound) caps each superstep like a finite PE
    pool would.
    """
    engine = ParallelEngine(seed=seed, workers=workers, max_batch=max_batch)
    result = engine.run(program, initial)
    return ParallelRunMetrics.from_profile(
        result.parallelism_profile(), num_pes=max_batch
    )


@dataclass
class BackendParallelism:
    """Available vs. measured parallelism of one Gamma program (E9 extension).

    ``available`` comes from the :class:`MaxParallelEngine` counting model
    (how many disjoint firings *exist* per step); ``measured`` from an actual
    :class:`ParallelEngine` run (how many the parallel backend *executed* per
    superstep).  ``realization`` is the fraction of available width the
    backend realized, averaged over the run.
    """

    available: ParallelRunMetrics
    measured: ParallelRunMetrics

    @property
    def realization(self) -> float:
        if not self.available.average_parallelism:
            return 0.0
        return self.measured.average_parallelism / self.available.average_parallelism

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """Rows ``(metric, available, measured)`` for the report printer."""
        keys = ["steps", "work", "max_parallelism", "average_parallelism", "speedup"]
        av = self.available.as_dict()
        ms = self.measured.as_dict()
        return [(key, av[key], ms[key]) for key in keys]


def compare_backend_parallelism(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
    max_batch: Optional[int] = None,
) -> BackendParallelism:
    """Run the counting model and the executing backend side by side."""
    available = gamma_parallelism(program, initial, num_pes=max_batch, seed=seed)
    measured = measured_parallelism(
        program, initial, seed=seed, workers=workers, max_batch=max_batch
    )
    return BackendParallelism(available=available, measured=measured)


@dataclass
class ParallelismComparison:
    """Side-by-side parallelism of one program executed in both models."""

    dataflow: ParallelRunMetrics
    gamma: ParallelRunMetrics

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """Rows ``(metric, dataflow value, gamma value)`` for the report printer."""
        keys = ["steps", "work", "max_parallelism", "average_parallelism", "speedup"]
        df = self.dataflow.as_dict()
        gm = self.gamma.as_dict()
        return [(key, df[key], gm[key]) for key in keys]

    @property
    def profiles_match(self) -> bool:
        """True when both sides did the same amount of work in the same number of steps."""
        return (
            self.dataflow.work == self.gamma.work
            and self.dataflow.steps == self.gamma.steps
        )


def compare_parallelism(
    graph: DataflowGraph,
    num_pes: Optional[int] = None,
    seed: Optional[int] = None,
) -> ParallelismComparison:
    """Run ``graph`` on the dataflow simulator and its Algorithm 1 conversion on the
    Gamma simulator with the same PE budget, and return both profiles."""
    dataflow_metrics = dataflow_parallelism(graph, num_pes=num_pes, seed=seed)
    conversion = dataflow_to_gamma(graph)
    gamma_metrics = gamma_parallelism(
        conversion.program, conversion.initial, num_pes=num_pes, seed=seed
    )
    return ParallelismComparison(dataflow=dataflow_metrics, gamma=gamma_metrics)
