"""Granularity study: the effect of the Section III-A3 reductions.

The paper notes that fusing reactions "decreases the opportunity to explore
the parallelism of reactions" and lowers "the chance of the reaction condition
occurring" (a coarser reaction needs more specific element combinations to be
drawn at once).  This module quantifies both effects for a program and its
reduced/expanded variants:

* available parallelism (unbounded profile) and firings to completion,
* matching probability: the fraction of uniformly drawn element tuples of the
  right arity that satisfy some reaction condition in the initial multiset —
  a direct operationalization of the paper's "chance of the reactions
  condition occurring".
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.reduction import granularity_metrics
from ..gamma.matching import Matcher
from ..gamma.program import GammaProgram
from ..multiset.multiset import Multiset
from .parallelism import gamma_parallelism

__all__ = ["GranularityReport", "matching_probability", "granularity_report", "compare_granularity"]


def matching_probability(
    program: GammaProgram,
    multiset: Multiset,
    samples: int = 2000,
    seed: Optional[int] = 0,
) -> float:
    """Probability that a uniformly drawn tuple of elements enables some reaction.

    For each sample a reaction is drawn uniformly, then ``arity`` distinct
    element occurrences are drawn uniformly from the multiset (without
    replacement) and assigned to the replace list in order; the sample counts
    as a success when the reaction's condition accepts the assignment.
    This follows the paper's intuition that coarser reactions make the
    "right" combination less likely under nondeterministic drawing.
    """
    rng = random.Random(seed)
    elements = list(multiset)
    if not elements:
        return 0.0
    successes = 0
    reactions = list(program.reactions)
    for _ in range(samples):
        reaction = rng.choice(reactions)
        if reaction.arity > len(elements):
            continue
        drawn = rng.sample(range(len(elements)), reaction.arity)
        binding: Optional[dict] = {}
        for pattern, index in zip(reaction.replace, drawn):
            binding = pattern.match(elements[index], binding)
            if binding is None:
                break
        if binding is not None and reaction.is_enabled(binding):
            successes += 1
    return successes / samples


@dataclass
class GranularityReport:
    """All granularity indicators for one program variant."""

    name: str
    reactions: int
    mean_arity: float
    max_arity: float
    firings: int
    steps: int
    max_parallelism: int
    average_parallelism: float
    match_probability: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "reactions": float(self.reactions),
            "mean_arity": self.mean_arity,
            "max_arity": self.max_arity,
            "firings": float(self.firings),
            "steps": float(self.steps),
            "max_parallelism": float(self.max_parallelism),
            "average_parallelism": self.average_parallelism,
            "match_probability": self.match_probability,
        }


def granularity_report(
    name: str,
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    seed: Optional[int] = 0,
    probability_samples: int = 2000,
) -> GranularityReport:
    """Measure one program variant (structure, execution, matching probability)."""
    initial = initial if initial is not None else program.initial
    if initial is None:
        raise ValueError("an initial multiset is required")
    structure = granularity_metrics(program)
    metrics = gamma_parallelism(program, initial, num_pes=None, seed=seed)
    probability = matching_probability(
        program, initial, samples=probability_samples, seed=seed
    )
    return GranularityReport(
        name=name,
        reactions=int(structure["reactions"]),
        mean_arity=structure["mean_arity"],
        max_arity=structure["max_arity"],
        firings=int(metrics.work),
        steps=int(metrics.steps),
        max_parallelism=int(metrics.max_parallelism),
        average_parallelism=metrics.average_parallelism,
        match_probability=probability,
    )


def compare_granularity(
    variants: Sequence, seed: Optional[int] = 0
) -> List[GranularityReport]:
    """Measure several ``(name, program, initial)`` variants with one call."""
    reports = []
    for name, program, initial in variants:
        reports.append(granularity_report(name, program, initial, seed=seed))
    return reports
