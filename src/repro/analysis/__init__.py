"""Analyses enabled by the dataflow/Gamma equivalence (paper §I and §IV)."""

from .granularity import (
    GranularityReport,
    compare_granularity,
    granularity_report,
    matching_probability,
)
from .memoization import (
    MemoizationCache,
    MemoizedRunResult,
    ReuseStatistics,
    reuse_from_dataflow,
    reuse_from_gamma,
    run_with_memoization,
)
from .parallelism import (
    BackendParallelism,
    ParallelismComparison,
    compare_backend_parallelism,
    compare_parallelism,
    critical_path_length,
    dataflow_parallelism,
    gamma_parallelism,
    graph_width,
    measured_parallelism,
)
from .reaction_graph import (
    DependencyEdge,
    DependencyGraph,
    dependency_graph,
    flow_weights,
    hot_label_report,
    to_networkx,
)
from .report import format_dict, format_profile, format_table, section
from .sharding import (
    ShardLoadReport,
    communication_volume,
    shard_balance,
    shard_load_report,
)

__all__ = [
    "shard_balance", "communication_volume", "shard_load_report", "ShardLoadReport",
    "critical_path_length", "graph_width",
    "dataflow_parallelism", "gamma_parallelism", "measured_parallelism",
    "compare_parallelism", "ParallelismComparison",
    "compare_backend_parallelism", "BackendParallelism",
    "granularity_report", "compare_granularity", "matching_probability", "GranularityReport",
    "reuse_from_dataflow", "reuse_from_gamma", "run_with_memoization",
    "ReuseStatistics", "MemoizationCache", "MemoizedRunResult",
    "format_table", "format_profile", "format_dict", "section",
    "dependency_graph", "flow_weights", "hot_label_report", "to_networkx",
    "DependencyGraph", "DependencyEdge",
]
