"""Shard balance and communication-volume analyses for distributed runs.

The sharded runtime's scaling story has two failure modes the paper's E9(d)
experiment cares about: *skew* (one shard carries the work while the others
idle) and *communication* (migrations/messages swamp useful firings).  This
module turns a :class:`~repro.runtime.distributed.DistributedRunResult` —
legacy or sharded — into the two corresponding scalar reports, so partition
sweeps can be compared across backends and sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..runtime.distributed import DistributedRunResult

__all__ = ["shard_balance", "communication_volume", "ShardLoadReport", "shard_load_report"]


def shard_balance(loads: Sequence[int]) -> float:
    """Max-over-mean ratio of per-shard loads (1.0 = perfectly balanced).

    ``loads`` is any per-shard count (firings, element copies, supersteps).
    An empty or all-zero sequence is trivially balanced and reports ``1.0``;
    a run where one of N shards did everything reports ``N``.
    """
    total = sum(loads)
    if not loads or not total:
        return 1.0
    return max(loads) * len(loads) / total


@dataclass(frozen=True)
class ShardLoadReport:
    """Summary of one distributed run's load and communication profile.

    ``scale_events`` and ``group_migrations`` report what the elasticity
    layer did during the run (always 0 for legacy results and for sharded
    runs without an :class:`~repro.runtime.elasticity.ElasticityPolicy`).
    ``injected`` and ``wire_bytes`` report the ingest-path copies and the
    network transport's socket traffic (both 0 off the network backend).
    """

    firings: int
    migrations: int
    messages: int
    firing_balance: float
    migrations_per_firing: float
    messages_per_firing: float
    scale_events: int = 0
    group_migrations: int = 0
    injected: int = 0
    wire_bytes: int = 0


def communication_volume(result: DistributedRunResult) -> Dict[str, float]:
    """Communication metrics of a distributed run, normalized per firing.

    Returns ``{"migrations", "messages", "injected", "wire_bytes",
    "migrations_per_firing", "messages_per_firing"}``.  ``injected`` counts
    element copies that entered through the ingest path (gateway or direct
    stream injection) rather than the initial load, and ``wire_bytes`` the
    socket bytes the network transport moved — both 0 for in-process and
    multiprocessing results, which communicate without a wire.  The
    per-firing ratios use the same division semantics as
    :attr:`DistributedRunResult.communication_ratio`: a run that
    communicated without firing reports ``inf``, a run that did neither
    reports ``0.0``.
    """

    def ratio(amount: int) -> float:
        if result.firings:
            return amount / result.firings
        return float("inf") if amount else 0.0

    return {
        "migrations": float(result.migrations),
        "messages": float(result.messages),
        "injected": float(getattr(result, "injected", 0)),
        "wire_bytes": float(getattr(result, "wire_bytes", 0)),
        "migrations_per_firing": ratio(result.migrations),
        "messages_per_firing": ratio(result.messages),
    }


def shard_load_report(result: DistributedRunResult) -> ShardLoadReport:
    """Bundle balance and communication metrics for one run.

    ``firing_balance`` is :func:`shard_balance` over the per-partition firing
    counts (``1.0`` when the result carries none).
    """
    volume = communication_volume(result)
    return ShardLoadReport(
        firings=result.firings,
        migrations=result.migrations,
        messages=result.messages,
        firing_balance=shard_balance(result.per_partition_firings),
        migrations_per_firing=volume["migrations_per_firing"],
        messages_per_firing=volume["messages_per_firing"],
        scale_events=getattr(result, "scale_events", 0),
        group_migrations=getattr(result, "group_migrations", 0),
        injected=getattr(result, "injected", 0),
        wire_bytes=getattr(result, "wire_bytes", 0),
    )
