"""Reaction expansion: the inverse of the Section III-A3 reduction.

Where :mod:`repro.core.reduction` fuses chains of reactions into coarser ones,
expansion splits a reaction whose production evaluates a *composite*
arithmetic expression into a chain of binary reactions connected by fresh
intermediate labels.  Applied to the paper's Rd1::

    Rd1 = replace [id1,'A1'], [id2,'B1'], [id3,'C1'], [id4,'D1']
          by [(id1+id2)-(id3*id4), 'm']

expansion regenerates a three-reaction program with the same shape as R1–R3
(up to label names), restoring the finer-grained parallelism.  The paper
mentions "reductions or expansions can be performed"; this is the expansion
direction, used by the granularity ablation (experiment E3) to sweep
granularity in both directions.

Only unconditional single-branch reactions are expanded; conditional reactions
are returned unchanged (splitting under a condition would have to replicate
the guard, changing the matching probabilities the ablation is measuring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..gamma.expr import BinOp, Const, Expr, Var
from ..gamma.pattern import ElementPattern, ElementTemplate
from ..gamma.program import GammaProgram
from ..gamma.reaction import Branch, Reaction
from .labels import TAG_VARIABLE, LabelAllocator

__all__ = ["ExpansionResult", "expand_reaction", "expand_program"]


@dataclass
class ExpansionResult:
    """Outcome of :func:`expand_program`."""

    program: GammaProgram
    #: original reaction name -> names of the reactions it was split into.
    provenance: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def reaction_count(self) -> int:
        return len(self.program)


def _is_expandable(reaction: Reaction) -> bool:
    if reaction.guard is not None or len(reaction.branches) != 1:
        return False
    branch = reaction.branches[0]
    if branch.condition is not None:
        return False
    # At least one production must contain a nested arithmetic expression.
    return any(_depth(t.value) > 1 for t in branch.productions)


def _depth(expr: Expr) -> int:
    if isinstance(expr, BinOp):
        return 1 + max(_depth(expr.left), _depth(expr.right))
    return 0


def expand_reaction(
    reaction: Reaction,
    labels: LabelAllocator,
    names: LabelAllocator,
) -> List[Reaction]:
    """Split one reaction into a chain of binary reactions.

    The splitting walks each production's expression tree bottom-up: every
    internal :class:`BinOp` whose operands are not both leaves becomes its own
    reaction producing a fresh intermediate label, which the parent then
    consumes.
    """
    if not _is_expandable(reaction):
        return [reaction]

    new_reactions: List[Reaction] = []
    branch = reaction.branches[0]

    # Map from variable name to the pattern that binds it, so generated
    # sub-reactions can consume exactly the elements their operands need.
    pattern_for_var: Dict[str, ElementPattern] = {}
    for pattern in reaction.replace:
        if isinstance(pattern.value, Var):
            pattern_for_var[pattern.value.name] = pattern

    def lower_top(expr: Expr) -> Tuple[Expr, List[ElementPattern]]:
        """Keep the top operation in place, extracting non-leaf operands as sub-reactions."""
        if isinstance(expr, (Var, Const)):
            patterns = []
            if isinstance(expr, Var) and expr.name in pattern_for_var:
                patterns.append(pattern_for_var[expr.name])
            return expr, patterns
        if isinstance(expr, BinOp):
            left_expr, left_patterns = lower_operand(expr.left)
            right_expr, right_patterns = lower_operand(expr.right)
            return BinOp(expr.op, left_expr, right_expr), left_patterns + right_patterns
        return expr, []

    def lower_operand(expr: Expr) -> Tuple[Expr, List[ElementPattern]]:
        """Lower an operand: leaves stay, nested operations become their own reaction.

        The emitted reaction produces a fresh intermediate label which the
        parent consumes — the chain structure of R1/R2/R3 in the paper.
        """
        if isinstance(expr, (Var, Const)):
            return lower_top(expr)
        value_expr, consumed = lower_top(expr)
        fresh_label = labels.fresh("T")
        fresh_name = names.fresh(f"{reaction.name}_s")
        sub = Reaction(
            name=fresh_name,
            replace=consumed or [
                ElementPattern(value=Var("_unused"), label=Const(fresh_label), tag=Var(TAG_VARIABLE))
            ],
            branches=[
                Branch(
                    productions=[
                        ElementTemplate(
                            value=value_expr,
                            label=Const(fresh_label),
                            tag=Var(TAG_VARIABLE),
                        )
                    ]
                )
            ],
        )
        new_reactions.append(sub)
        fresh_var = Var(f"t_{fresh_label}")
        pattern = ElementPattern(
            value=fresh_var, label=Const(fresh_label), tag=Var(TAG_VARIABLE)
        )
        return fresh_var, [pattern]

    final_templates: List[ElementTemplate] = []
    final_patterns: List[ElementPattern] = []
    seen_patterns: set = set()

    for template in branch.productions:
        lowered_value, patterns = lower_top(template.value)
        final_templates.append(
            ElementTemplate(value=lowered_value, label=template.label, tag=template.tag)
        )
        for pattern in patterns:
            key = repr(pattern)
            if key not in seen_patterns:
                seen_patterns.add(key)
                final_patterns.append(pattern)

    if not final_patterns:
        final_patterns = list(reaction.replace)

    top = Reaction(
        name=reaction.name,
        replace=final_patterns,
        branches=[Branch(productions=final_templates)],
    )
    new_reactions.append(top)
    return new_reactions


def expand_program(program: GammaProgram) -> ExpansionResult:
    """Expand every expandable reaction of ``program``."""
    labels = LabelAllocator(reserved=program.consumed_labels() | program.produced_labels())
    names = LabelAllocator(reserved=program.reaction_names(), prefix="S")
    reactions: List[Reaction] = []
    provenance: Dict[str, List[str]] = {}
    for reaction in program.reactions:
        pieces = expand_reaction(reaction, labels, names)
        reactions.extend(pieces)
        provenance[reaction.name] = [r.name for r in pieces]
    expanded = GammaProgram(reactions, initial=program.initial, name=f"expanded({program.name})")
    return ExpansionResult(program=expanded, provenance=provenance)
