"""Label and variable-name allocation shared by the conversion algorithms.

Algorithm 1 (dataflow → Gamma) names the consumed-value variables ``x0, x1``
and the common tag variable ``tag`` (the worked examples use ``id1, id2`` and
``v``); Algorithm 2 (Gamma → dataflow) needs fresh edge labels and node ids
when it synthesizes graphs from reactions.  Keeping the allocators here keeps
both directions consistent and the generated artifacts readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

__all__ = ["TAG_VARIABLE", "value_variable", "label_variable", "LabelAllocator"]

#: Name of the shared iteration-tag variable in generated reactions (the
#: paper's ``v``).
TAG_VARIABLE = "v"


def value_variable(position: int) -> str:
    """Variable bound to the value of the ``position``-th consumed element.

    The paper's examples use ``id1, id2, ...``; we keep that convention so the
    generated reactions read like the listings.
    """
    return f"id{position + 1}"


def label_variable(position: int) -> str:
    """Variable bound to the *label* of a consumed element on a merged port.

    Used for the inctag idiom of reactions R11–R13, where the consumed label
    may be either the initial edge or the loop-back edge.
    """
    return f"lbl{position + 1}" if position else "x"


class LabelAllocator:
    """Allocates fresh edge labels / node ids avoiding a set of reserved names."""

    def __init__(self, reserved: Optional[Iterable[str]] = None, prefix: str = "E") -> None:
        self._used: Set[str] = set(reserved or ())
        self._prefix = prefix
        self._counters: Dict[str, int] = {}

    def reserve(self, name: str) -> str:
        """Mark ``name`` as used (idempotent) and return it."""
        self._used.add(name)
        return name

    def is_used(self, name: str) -> bool:
        return name in self._used

    def fresh(self, prefix: Optional[str] = None) -> str:
        """Return a fresh name ``<prefix><n>`` not yet reserved."""
        prefix = prefix if prefix is not None else self._prefix
        counter = self._counters.get(prefix, 0)
        while True:
            counter += 1
            name = f"{prefix}{counter}"
            if name not in self._used:
                self._counters[prefix] = counter
                self._used.add(name)
                return name
