"""Algorithm 1 of the paper: convert a dynamic dataflow graph into a Gamma program.

The conversion follows Section III-B / Algorithm 1, with the edge-label
convention of the worked examples (Section III-A1):

* every **root vertex** contributes one initial multiset element per outgoing
  edge: ``[value, edge label, 0]``;
* every **non-root vertex** becomes one reaction whose

  - *replace list* has one pattern per input port, requiring the label of the
    incoming edge and binding the value to ``id1, id2, ...`` and the tag to the
    shared variable ``v`` (all consumed elements must carry the same tag — the
    dynamic dataflow matching rule);
  - *by list* produces one element per outgoing edge, labelled with that
    edge's label:

    * arithmetic vertices produce ``[id1 op id2, label, v]`` (Algorithm 1
      lines 29–33),
    * comparison vertices produce ``[1, label, v]`` under the comparison and
      ``[0, label, v]`` otherwise (lines 23–28),
    * steer vertices produce the data value on the labels of their ``true``
      port when the control value is 1 and on the labels of their ``false``
      port otherwise (lines 13–19) — an empty port yields the paper's
      ``by 0``,
    * inctag vertices reproduce the value with ``v + 1`` as tag (lines 20–22);

* an input port fed by **several** edges (the merge at the entry of a loop,
  e.g. ``A1``/``A11`` feeding R11 in Fig. 2) binds the consumed label to a
  variable and adds the disjunctive guard ``(x == 'A1') or (x == 'A11')`` —
  the paper's label-discrimination idiom.

The result bundles the Gamma program, the initial multiset, and bookkeeping
maps used by the equivalence checker and the analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dataflow.graph import DataflowGraph, Edge
from ..dataflow.nodes import (
    PORT_FALSE,
    PORT_TRUE,
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    Node,
    RootNode,
    SteerNode,
)
from ..gamma.expr import BinOp, BoolOp, Compare, Const, Expr, Not, Var
from ..gamma.pattern import ElementPattern, ElementTemplate
from ..gamma.program import GammaProgram
from ..gamma.reaction import Branch, Reaction
from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .labels import TAG_VARIABLE, value_variable

__all__ = ["ConversionError", "DataflowToGammaResult", "dataflow_to_gamma"]


class ConversionError(ValueError):
    """Raised when a graph contains a construct the conversion cannot express."""


@dataclass
class DataflowToGammaResult:
    """Output of :func:`dataflow_to_gamma`."""

    program: GammaProgram
    initial: Multiset
    #: node id -> reaction name (identity for operational nodes).
    node_to_reaction: Dict[str, str]
    #: labels of the graph's dangling output edges (the observable results).
    output_labels: List[str]
    #: source graph, kept for cross-checking and round-trip experiments.
    graph: DataflowGraph = field(repr=False, default=None)

    @property
    def reactions(self) -> Tuple[Reaction, ...]:
        return self.program.reactions

    def reaction_for(self, node_id: str) -> Reaction:
        """The reaction generated for dataflow vertex ``node_id``."""
        return self.program[self.node_to_reaction[node_id]]


# ---------------------------------------------------------------------------
# Per-node translation helpers
# ---------------------------------------------------------------------------

def _replace_list(
    graph: DataflowGraph, node: Node
) -> Tuple[List[ElementPattern], Optional[Expr], Dict[str, Var]]:
    """Build the replace list for ``node``.

    Returns ``(patterns, guard, port_vars)`` where ``port_vars`` maps each
    input port to the variable bound to the value consumed on that port, and
    ``guard`` carries the label-discrimination disjunction for merged ports
    (``None`` when every port has a single producer edge).
    """
    patterns: List[ElementPattern] = []
    guard: Optional[Expr] = None
    port_vars: Dict[str, Var] = {}
    for position, port in enumerate(node.input_ports()):
        edges = graph.in_edges(node.node_id, port)
        if not edges:
            raise ConversionError(
                f"node {node.node_id!r} input port {port!r} has no incoming edge; "
                f"validate the graph before converting"
            )
        value_var = Var(value_variable(position))
        port_vars[port] = value_var
        if len(edges) == 1:
            label_expr: Expr = Const(edges[0].label)
        else:
            # Merged port: the consumed element may carry any of the incoming
            # edge labels — bind the label and guard on the disjunction.
            label_expr = Var(f"x{position}" if position else "x")
            disjunction: Optional[Expr] = None
            for edge in edges:
                clause = Compare("==", label_expr, Const(edge.label))
                disjunction = clause if disjunction is None else BoolOp("or", disjunction, clause)
            guard = disjunction if guard is None else BoolOp("and", guard, disjunction)
        patterns.append(
            ElementPattern(value=value_var, label=label_expr, tag=Var(TAG_VARIABLE))
        )
    return patterns, guard, port_vars


def _productions_for_port(
    graph: DataflowGraph, node: Node, port: str, value_expr: Expr, tag_expr: Expr
) -> List[ElementTemplate]:
    """One production per outgoing edge of ``port``, labelled by the edge label."""
    return [
        ElementTemplate(value=value_expr, label=Const(edge.label), tag=tag_expr)
        for edge in graph.out_edges(node.node_id, port)
    ]


def _convert_operator(
    graph: DataflowGraph, node: Node, patterns, guard, port_vars
) -> Reaction:
    """Arithmetic / comparison / copy vertices (Algorithm 1 lines 23–33)."""
    tag_expr: Expr = Var(TAG_VARIABLE)

    if isinstance(node, (ArithmeticNode, ComparisonNode)):
        if node.immediate is None:
            left: Expr = port_vars["a"]
            right: Expr = port_vars["b"]
        else:
            side, value = node.immediate
            operand = port_vars["in"]
            left, right = (operand, Const(value)) if side == "right" else (Const(value), operand)

        if isinstance(node, ArithmeticNode):
            value_expr: Expr = BinOp(node.op, left, right)
            productions = []
            for port in node.output_ports():
                productions.extend(
                    _productions_for_port(graph, node, port, value_expr, tag_expr)
                )
            branches = [Branch(productions=productions)]
            return Reaction(node.node_id, patterns, branches, guard=guard)

        # Comparison: produce 1 under the condition, 0 otherwise (lines 25–27).
        condition = Compare(node.op, left, right)
        true_productions: List[ElementTemplate] = []
        false_productions: List[ElementTemplate] = []
        for port in node.output_ports():
            true_productions.extend(
                _productions_for_port(graph, node, port, Const(1), tag_expr)
            )
            false_productions.extend(
                _productions_for_port(graph, node, port, Const(0), tag_expr)
            )
        branches = [
            Branch(productions=true_productions, condition=condition),
            Branch(productions=false_productions, condition=None),
        ]
        return Reaction(node.node_id, patterns, branches, guard=guard)

    if isinstance(node, CopyNode):
        value_expr = port_vars["in"]
        productions = []
        for port in node.output_ports():
            productions.extend(_productions_for_port(graph, node, port, value_expr, tag_expr))
        return Reaction(node.node_id, patterns, [Branch(productions=productions)], guard=guard)

    raise ConversionError(f"unsupported operator node {node!r}")


def _convert_steer(graph: DataflowGraph, node: SteerNode, patterns, guard, port_vars) -> Reaction:
    """Steer vertices (Algorithm 1 lines 13–19)."""
    tag_expr: Expr = Var(TAG_VARIABLE)
    data_var = port_vars["data"]
    control_var = port_vars["control"]
    true_productions = _productions_for_port(graph, node, PORT_TRUE, data_var, tag_expr)
    false_productions = _productions_for_port(graph, node, PORT_FALSE, data_var, tag_expr)
    branches = [
        Branch(productions=true_productions, condition=Compare("==", control_var, Const(1))),
        Branch(productions=false_productions, condition=None),
    ]
    return Reaction(node.node_id, patterns, branches, guard=guard)


def _convert_inctag(graph: DataflowGraph, node: IncTagNode, patterns, guard, port_vars) -> Reaction:
    """Inctag vertices (Algorithm 1 lines 20–22)."""
    tag_expr: Expr = BinOp("+", Var(TAG_VARIABLE), Const(node.delta))
    value_expr = port_vars["in"]
    productions: List[ElementTemplate] = []
    for port in node.output_ports():
        productions.extend(_productions_for_port(graph, node, port, value_expr, tag_expr))
    return Reaction(node.node_id, patterns, [Branch(productions=productions)], guard=guard)


# ---------------------------------------------------------------------------
# Whole-graph conversion
# ---------------------------------------------------------------------------

def dataflow_to_gamma(
    graph: DataflowGraph,
    program_name: Optional[str] = None,
    root_values: Optional[Dict[str, object]] = None,
) -> DataflowToGammaResult:
    """Convert ``graph`` into a Gamma program plus its initial multiset.

    ``root_values`` optionally overrides the values injected by root vertices
    (keyed by node id), mirroring
    :meth:`repro.dataflow.interpreter.DataflowInterpreter.run`.
    """
    reactions: List[Reaction] = []
    node_to_reaction: Dict[str, str] = {}
    initial = Multiset()

    values = {node.node_id: node.value for node in graph.roots()}
    if root_values:
        unknown = set(root_values) - set(values)
        if unknown:
            raise ConversionError(f"root_values for unknown roots: {sorted(unknown)}")
        values.update(root_values)

    for node in graph.nodes:
        if isinstance(node, RootNode):
            # Line 9: the initial multiset holds one element per initial edge.
            for edge in graph.out_edges(node.node_id):
                initial.add(Element(value=values[node.node_id], label=edge.label, tag=0))
            continue

        patterns, guard, port_vars = _replace_list(graph, node)
        if isinstance(node, SteerNode):
            reaction = _convert_steer(graph, node, patterns, guard, port_vars)
        elif isinstance(node, IncTagNode):
            reaction = _convert_inctag(graph, node, patterns, guard, port_vars)
        else:
            reaction = _convert_operator(graph, node, patterns, guard, port_vars)
        reactions.append(reaction)
        node_to_reaction[node.node_id] = reaction.name

    if not reactions:
        raise ConversionError("graph has no operational vertices; nothing to convert")

    program = GammaProgram(
        reactions,
        initial=initial,
        name=program_name or f"gamma({graph.name})",
    )
    return DataflowToGammaResult(
        program=program,
        initial=initial,
        node_to_reaction=node_to_reaction,
        output_labels=graph.output_labels(),
        graph=graph,
    )
