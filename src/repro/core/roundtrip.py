"""Round-trip drivers combining both conversion directions.

These are thin orchestration helpers used by the examples, the benchmarks and
the property-based tests: convert, execute on both sides, and return all the
intermediate artifacts so callers can inspect structure as well as results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..dataflow.graph import DataflowGraph
from ..dataflow.interpreter import DataflowResult, run_graph
from ..gamma.engine import ExecutionResult, run as run_gamma
from ..gamma.program import GammaProgram
from ..multiset.multiset import Multiset
from .df_to_gamma import DataflowToGammaResult, dataflow_to_gamma
from .equivalence import EquivalenceReport, check_dataflow_vs_gamma, check_gamma_vs_dataflow
from .gamma_to_df import ReactionGraph, program_to_graphs
from .instancing import DataflowEmulationResult, execute_via_dataflow

__all__ = ["RoundTripArtifacts", "roundtrip_dataflow", "roundtrip_gamma"]


@dataclass
class RoundTripArtifacts:
    """Everything produced by a round-trip run, for inspection and reporting."""

    #: the starting object (a graph or a program), kept for reference
    source: object
    conversion: Optional[DataflowToGammaResult] = None
    reaction_graphs: Dict[str, ReactionGraph] = field(default_factory=dict)
    dataflow_result: Optional[DataflowResult] = None
    gamma_result: Optional[ExecutionResult] = None
    emulation_result: Optional[DataflowEmulationResult] = None
    report: Optional[EquivalenceReport] = None

    @property
    def equivalent(self) -> bool:
        return bool(self.report) and self.report.passed


def roundtrip_dataflow(
    graph: DataflowGraph,
    root_values: Optional[Dict[str, object]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    engines: Sequence[str] = ("sequential", "chaotic", "max-parallel"),
) -> RoundTripArtifacts:
    """dataflow → Gamma → dataflow, with equivalence verdicts at every hop.

    Produces: the Algorithm 1 conversion, per-reaction graphs from Algorithm 2,
    the original graph's interpreter result, the Gamma engine result of the
    converted program, the dataflow emulation of the converted program, and
    the combined equivalence report.
    """
    artifacts = RoundTripArtifacts(source=graph)
    artifacts.dataflow_result = run_graph(graph, root_values=root_values)
    artifacts.conversion = dataflow_to_gamma(graph, root_values=root_values)
    artifacts.gamma_result = run_gamma(artifacts.conversion.program, engine="sequential")
    artifacts.reaction_graphs = program_to_graphs(artifacts.conversion.program)
    artifacts.emulation_result = execute_via_dataflow(
        artifacts.conversion.program, artifacts.conversion.initial, seed=seeds[0]
    )

    report = check_dataflow_vs_gamma(
        graph, engines=engines, seeds=seeds, root_values=root_values,
        conversion=artifacts.conversion,
    )
    # Append the closing leg (converted program executed purely through
    # replicated dataflow instances) to the same report.
    expected = artifacts.dataflow_result.outputs_as_multiset()
    for seed in seeds:
        emulated = execute_via_dataflow(
            artifacts.conversion.program, artifacts.conversion.initial, seed=seed
        )
        actual = emulated.final.restrict_labels(artifacts.conversion.output_labels)
        report.add(f"roundtrip[seed={seed}]", expected, actual)
    artifacts.report = report
    return artifacts


def roundtrip_gamma(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    seeds: Sequence[int] = (0, 1, 2),
    labels: Optional[Sequence[str]] = None,
) -> RoundTripArtifacts:
    """Gamma → dataflow (Algorithm 2 + instancing) with an equivalence verdict."""
    artifacts = RoundTripArtifacts(source=program)
    artifacts.gamma_result = run_gamma(program, initial, engine="sequential")
    artifacts.reaction_graphs = program_to_graphs(program)
    artifacts.emulation_result = execute_via_dataflow(program, initial, seed=seeds[0])
    artifacts.report = check_gamma_vs_dataflow(program, initial, seeds=seeds, labels=labels)
    return artifacts
