"""Mechanical equivalence checking between the two computational models.

The paper argues the equivalence of dynamic dataflow and Gamma by construction
(Algorithm 1 / Algorithm 2 plus a sketch of proof).  This module turns the
argument into an executable check used throughout the tests and benchmarks:

* :func:`check_dataflow_vs_gamma` — run a dataflow graph with the tagged-token
  interpreter, convert it with Algorithm 1, run the resulting Gamma program
  with one or more engines/seeds, and compare the observable results (tokens
  that reached output edges vs. the stable multiset restricted to the same
  labels);
* :func:`check_gamma_vs_dataflow` — run a Gamma program natively and through
  the dataflow emulation of Algorithm 2 + Fig. 4 instancing, and compare the
  stable multisets;
* :func:`check_roundtrip` — compose both directions (dataflow → Gamma →
  dataflow) and compare against the original graph's results.

All checkers return an :class:`EquivalenceReport` carrying per-run outcomes so
failures are diagnosable (which engine, which seed, what differed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dataflow.graph import DataflowGraph
from ..dataflow.interpreter import run_graph
from ..gamma.engine import run as run_gamma
from ..gamma.program import GammaProgram
from ..multiset.multiset import Multiset
from .df_to_gamma import DataflowToGammaResult, dataflow_to_gamma
from .instancing import execute_via_dataflow

__all__ = [
    "CheckOutcome",
    "EquivalenceReport",
    "check_dataflow_vs_gamma",
    "check_gamma_vs_dataflow",
    "check_roundtrip",
]

DEFAULT_ENGINES: Tuple[str, ...] = ("sequential", "chaotic", "max-parallel")
DEFAULT_SEEDS: Tuple[int, ...] = (0, 1, 2)


@dataclass(frozen=True)
class CheckOutcome:
    """One comparison: a configuration, the two observed results, the verdict."""

    name: str
    passed: bool
    expected: Tuple
    actual: Tuple

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "ok" if self.passed else "MISMATCH"
        return f"{self.name}: {status}"


@dataclass
class EquivalenceReport:
    """Aggregate verdict over a collection of comparisons."""

    subject: str
    outcomes: List[CheckOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def failures(self) -> List[CheckOutcome]:
        return [o for o in self.outcomes if not o.passed]

    def add(self, name: str, expected: Multiset, actual: Multiset) -> CheckOutcome:
        outcome = CheckOutcome(
            name=name,
            passed=expected == actual,
            expected=tuple(expected.to_tuples()),
            actual=tuple(actual.to_tuples()),
        )
        self.outcomes.append(outcome)
        return outcome

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "EQUIVALENT" if self.passed else "NOT EQUIVALENT"
        return (
            f"{self.subject}: {status} "
            f"({len(self.outcomes) - len(self.failures)}/{len(self.outcomes)} checks passed)"
        )

    def __bool__(self) -> bool:
        return self.passed


def check_dataflow_vs_gamma(
    graph: DataflowGraph,
    engines: Sequence[str] = DEFAULT_ENGINES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    root_values: Optional[Dict[str, object]] = None,
    conversion: Optional[DataflowToGammaResult] = None,
) -> EquivalenceReport:
    """Experiment E1/E2-style check: dataflow execution vs. its Algorithm 1 conversion.

    The observable compared is the multiset of ``[value, label, tag]`` triples
    on the graph's output edges, against the stable Gamma multiset restricted
    to the same labels.
    """
    from ..api import RuntimeConfig

    report = EquivalenceReport(subject=f"dataflow→gamma({graph.name})")
    df_result = run_graph(graph, root_values=root_values)
    expected = df_result.outputs_as_multiset()

    conversion = conversion or dataflow_to_gamma(graph, root_values=root_values)
    output_labels = conversion.output_labels

    for engine in engines:
        engine_seeds: Iterable[Optional[int]] = seeds if engine != "sequential" else (None,)
        for seed in engine_seeds:
            result = run_gamma(
                conversion.program, config=RuntimeConfig(engine=engine, seed=seed)
            )
            actual = result.final.restrict_labels(output_labels)
            name = engine if seed is None else f"{engine}[seed={seed}]"
            report.add(name, expected, actual)
    return report


def check_gamma_vs_dataflow(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    labels: Optional[Sequence[str]] = None,
    max_rounds: int = 100_000,
) -> EquivalenceReport:
    """Experiment E5-style check: native Gamma execution vs. the Algorithm 2 emulation.

    By default the *entire* stable multisets are compared; pass ``labels`` to
    restrict the comparison (useful for programs with confluent results but
    nondeterministic leftovers).
    """
    report = EquivalenceReport(subject=f"gamma→dataflow({program.name})")
    reference = run_gamma(program, initial, engine="sequential")
    expected = reference.final
    if labels is not None:
        expected = expected.restrict_labels(labels)
    for seed in seeds:
        emulated = execute_via_dataflow(program, initial, seed=seed, max_rounds=max_rounds)
        actual = emulated.final
        if labels is not None:
            actual = actual.restrict_labels(labels)
        report.add(f"dataflow-emulation[seed={seed}]", expected, actual)
    return report


def check_roundtrip(
    graph: DataflowGraph,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    root_values: Optional[Dict[str, object]] = None,
) -> EquivalenceReport:
    """Full round trip: dataflow → Gamma (Algorithm 1) → dataflow (Algorithm 2 + Fig. 4).

    The converted Gamma program is executed *only* through replicated dataflow
    graph instances; its stable outputs must equal the original graph's
    outputs.
    """
    report = EquivalenceReport(subject=f"roundtrip({graph.name})")
    df_result = run_graph(graph, root_values=root_values)
    expected = df_result.outputs_as_multiset()
    conversion = dataflow_to_gamma(graph, root_values=root_values)
    for seed in seeds:
        emulated = execute_via_dataflow(conversion.program, conversion.initial, seed=seed)
        actual = emulated.final.restrict_labels(conversion.output_labels)
        report.add(f"roundtrip[seed={seed}]", expected, actual)
    return report
