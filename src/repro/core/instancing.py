"""Step 2 of the Gamma-to-dataflow conversion: mapping the multiset onto graph instances.

Figure 4 of the paper shows a reaction graph replicated three times so that
every element of a six-element initial multiset is connected to a root of some
instance.  This module implements that mapping and the iterative driver the
paper describes ("the produced elements have to be connected to the dataflow
graph until the reactions finish their processing"):

* :func:`instantiate_round` finds a maximal set of disjoint reaction matches
  in the current multiset and builds one dataflow graph containing one
  instance of the corresponding reaction graph per match — exactly the
  replication of Fig. 4;
* :func:`execute_via_dataflow` repeats such rounds, running each combined
  graph with the dataflow interpreter and feeding the produced elements back
  into the multiset, until no reaction matches.  Its final multiset equals the
  stable state computed by the native Gamma engines (experiment E5 checks this
  mechanically).

The driver takes values from the dataflow execution and labels/tags from the
reaction templates evaluated under the match binding, which is the same
division of labour the paper uses (the graph computes, the multiset carries
the tagged data between rounds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataflow.graph import DataflowGraph
from ..dataflow.interpreter import DataflowInterpreter, DataflowResult
from ..gamma.expr import Const
from ..gamma.matching import Match
from ..gamma.pattern import ElementTemplate
from ..gamma.program import GammaProgram
from ..gamma.scheduler import greedy_disjoint_matches
from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .gamma_to_df import ReactionGraph, program_to_graphs

__all__ = [
    "InstanceInfo",
    "InstancedGraph",
    "DataflowEmulationResult",
    "instantiate_round",
    "instantiate_over_multiset",
    "execute_via_dataflow",
]


@dataclass(frozen=True)
class InstanceInfo:
    """One replicated reaction-graph instance and the match that fills its roots."""

    prefix: str
    reaction_name: str
    match: Match


@dataclass
class InstancedGraph:
    """A combined graph holding one instance per disjoint match (Fig. 4)."""

    graph: DataflowGraph
    instances: List[InstanceInfo]
    #: Elements of the multiset not covered by any instance this round.
    leftover: Multiset

    @property
    def num_instances(self) -> int:
        return len(self.instances)


@dataclass
class DataflowEmulationResult:
    """Outcome of emulating a whole Gamma execution through dataflow rounds."""

    final: Multiset
    rounds: int
    total_instances: int
    total_firings: int
    round_graphs: List[InstancedGraph] = field(default_factory=list)

    def values_with_label(self, label: str) -> List:
        return self.final.values_with_label(label)


def _disjoint_matches(
    program: GammaProgram, multiset: Multiset, rng: Optional[random.Random]
) -> List[Match]:
    """A maximal set of matches that consume disjoint element occurrences."""
    return greedy_disjoint_matches(program.reactions, multiset, rng=rng)


def instantiate_round(
    program: GammaProgram,
    multiset: Multiset,
    graphs: Optional[Dict[str, ReactionGraph]] = None,
    rng: Optional[random.Random] = None,
) -> Optional[InstancedGraph]:
    """Build the Fig. 4 replication for one round, or ``None`` if nothing matches."""
    graphs = graphs if graphs is not None else program_to_graphs(program)
    matches = _disjoint_matches(program, multiset, rng)
    if not matches:
        return None
    combined = DataflowGraph(name=f"instanced({program.name})")
    instances: List[InstanceInfo] = []
    consumed_total = Multiset()
    for index, match in enumerate(matches):
        prefix = f"i{index}_"
        reaction_graph = graphs[match.reaction.name]
        values = [element.value for element in match.consumed]
        instance = reaction_graph.instantiate(values, prefix)
        for node in instance.nodes:
            combined.add_node(node)
        for edge in instance.edges:
            combined.add_edge(
                edge.src, edge.dst, edge.label, src_port=edge.src_port, dst_port=edge.dst_port
            )
        instances.append(
            InstanceInfo(prefix=prefix, reaction_name=match.reaction.name, match=match)
        )
        for element in match.consumed:
            consumed_total.add(element)
    leftover = multiset - consumed_total
    return InstancedGraph(graph=combined, instances=instances, leftover=leftover)


# Backwards-compatible name used in DESIGN.md / examples.
instantiate_over_multiset = instantiate_round


def _round_outputs(
    instanced: InstancedGraph, result: DataflowResult, graphs: Dict[str, ReactionGraph]
) -> List[Element]:
    """Convert the tokens of one round into the elements added to the multiset.

    Values come from the dataflow execution; labels and tags come from the
    production templates evaluated under the match binding (the bookkeeping
    the multiset carries between rounds).
    """
    produced: List[Element] = []
    for info in instanced.instances:
        binding = dict(info.match.binding)
        reaction_graph = graphs[info.reaction_name]
        for edge_label in reaction_graph.output_labels:
            tokens = result.outputs.get(f"{info.prefix}{edge_label}", [])
            if not tokens:
                continue
            template = reaction_graph.templates[edge_label]
            label = reaction_graph.output_map[edge_label]
            tag = int(template.tag.evaluate(binding))
            for token in tokens:
                produced.append(Element(value=token.value, label=label, tag=tag))
    return produced


def execute_via_dataflow(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    max_rounds: int = 100_000,
    seed: Optional[int] = None,
    keep_graphs: bool = False,
    recognize_idioms: bool = True,
) -> DataflowEmulationResult:
    """Run ``program`` to its stable state using only dataflow-graph execution.

    Every round: convert (cached), replicate over the current multiset,
    execute the combined graph with the tagged-token interpreter, and replace
    the consumed elements by the produced ones.  Terminates when no reaction
    matches — the same stopping condition as Eq. 1.
    """
    multiset = (initial if initial is not None else program.initial)
    if multiset is None:
        raise ValueError("an initial multiset is required")
    multiset = multiset.copy()
    graphs = program_to_graphs(program, recognize_idioms=recognize_idioms)
    rng = random.Random(seed)
    rounds = 0
    total_instances = 0
    total_firings = 0
    kept: List[InstancedGraph] = []

    while rounds < max_rounds:
        instanced = instantiate_round(program, multiset, graphs=graphs, rng=rng)
        if instanced is None:
            break
        interpreter = DataflowInterpreter(instanced.graph, record_events=False)
        result = interpreter.run()
        produced = _round_outputs(instanced, result, graphs)
        consumed = [e for info in instanced.instances for e in info.match.consumed]
        multiset.replace(consumed, produced)
        rounds += 1
        total_instances += instanced.num_instances
        total_firings += result.total_firings
        if keep_graphs:
            kept.append(instanced)
    else:
        raise RuntimeError(f"execute_via_dataflow exceeded {max_rounds} rounds")

    return DataflowEmulationResult(
        final=multiset,
        rounds=rounds,
        total_instances=total_instances,
        total_firings=total_firings,
        round_graphs=kept,
    )
