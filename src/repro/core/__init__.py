"""The paper's contribution: conversions between dynamic dataflow and Gamma.

* :func:`dataflow_to_gamma` — Algorithm 1 (graph → reactions + initial multiset),
* :func:`reaction_to_graph` / :func:`program_to_graphs` — Algorithm 2, step 1,
* :func:`instantiate_round` / :func:`execute_via_dataflow` — Algorithm 2, step 2
  (the Fig. 4 replication) and the iterative execution driver,
* :func:`reduce_program` / :func:`expand_program` — the Section III-A3
  granularity transformations,
* :func:`check_dataflow_vs_gamma` / :func:`check_gamma_vs_dataflow` /
  :func:`check_roundtrip` — mechanical equivalence checking,
* :func:`roundtrip_dataflow` / :func:`roundtrip_gamma` — one-call drivers
  returning all intermediate artifacts.
"""

from .df_to_gamma import ConversionError, DataflowToGammaResult, dataflow_to_gamma
from .equivalence import (
    CheckOutcome,
    EquivalenceReport,
    check_dataflow_vs_gamma,
    check_gamma_vs_dataflow,
    check_roundtrip,
)
from .expansion import ExpansionResult, expand_program, expand_reaction
from .gamma_to_df import (
    ReactionConversionError,
    ReactionGraph,
    program_to_graphs,
    reaction_to_graph,
)
from .instancing import (
    DataflowEmulationResult,
    InstancedGraph,
    InstanceInfo,
    execute_via_dataflow,
    instantiate_over_multiset,
    instantiate_round,
)
from .labels import TAG_VARIABLE, LabelAllocator
from .reduction import ReductionResult, fuse_once, granularity_metrics, reduce_program
from .roundtrip import RoundTripArtifacts, roundtrip_dataflow, roundtrip_gamma

__all__ = [
    "dataflow_to_gamma", "DataflowToGammaResult", "ConversionError",
    "reaction_to_graph", "program_to_graphs", "ReactionGraph", "ReactionConversionError",
    "instantiate_round", "instantiate_over_multiset", "execute_via_dataflow",
    "InstancedGraph", "InstanceInfo", "DataflowEmulationResult",
    "reduce_program", "fuse_once", "granularity_metrics", "ReductionResult",
    "expand_program", "expand_reaction", "ExpansionResult",
    "check_dataflow_vs_gamma", "check_gamma_vs_dataflow", "check_roundtrip",
    "EquivalenceReport", "CheckOutcome",
    "roundtrip_dataflow", "roundtrip_gamma", "RoundTripArtifacts",
    "LabelAllocator", "TAG_VARIABLE",
]
