"""Reaction reductions (Section III-A3 of the paper).

The paper observes that the reaction set produced by Algorithm 1 can be
*reduced*: chains of reactions can be fused into fewer, coarser reactions
(e.g. R1, R2, R3 of Example 1 collapse into the single reaction Rd1), at the
cost of available parallelism and of a lower probability that a reaction
condition is satisfied by a randomly drawn tuple of elements.

This module implements that transformation as *producer-into-consumer fusion*:

  A reaction ``P`` can be fused into a reaction ``C`` when

  * ``P`` has a single unconditional branch and no guard,
  * ``P`` produces exactly one element, with a literal label ``L`` and an
    unshifted tag (no inctag behaviour),
  * ``L`` is not an observable output, does not appear in the initial
    multiset, is produced by no other reaction and is consumed by exactly one
    pattern of exactly one reaction (``C``).

  The fusion removes ``P``, removes ``C``'s pattern for ``L`` and substitutes
  ``P``'s production expression for the variable that pattern bound, after
  α-renaming ``P``'s variables away from ``C``'s.

Repeated to a fixed point this reproduces the paper's Rd1 for Example 1; the
paper's hand-reduced six-reaction version of Example 2 uses additional ad-hoc
fusions (conditions duplicated into consumers) and is provided verbatim in
:mod:`repro.workloads.paper_reduced` for the granularity experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..gamma.expr import BinOp, BoolOp, Compare, Const, Expr, Not, Var
from ..gamma.pattern import ElementPattern, ElementTemplate
from ..gamma.program import GammaProgram
from ..gamma.reaction import Branch, Reaction
from ..multiset.multiset import Multiset

__all__ = ["ReductionResult", "fuse_once", "reduce_program", "granularity_metrics"]


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------

def _substitute(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Substitute variables by expressions, recursively."""
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _substitute(expr.left, mapping), _substitute(expr.right, mapping))
    if isinstance(expr, Compare):
        return Compare(expr.op, _substitute(expr.left, mapping), _substitute(expr.right, mapping))
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, _substitute(expr.left, mapping), _substitute(expr.right, mapping))
    if isinstance(expr, Not):
        return Not(_substitute(expr.operand, mapping))
    raise TypeError(f"cannot substitute into {type(expr).__name__}")


def _rename(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Rename variables (a special case of substitution)."""
    return _substitute(expr, {old: Var(new) for old, new in mapping.items()})


def _rename_pattern(pattern: ElementPattern, mapping: Dict[str, str]) -> ElementPattern:
    def fix(field: Expr) -> Expr:
        if isinstance(field, Var) and field.name in mapping:
            return Var(mapping[field.name])
        return field

    return ElementPattern(value=fix(pattern.value), label=fix(pattern.label), tag=fix(pattern.tag))


def _rename_template(template: ElementTemplate, mapping: Dict[str, str]) -> ElementTemplate:
    return ElementTemplate(
        value=_rename(template.value, mapping),
        label=_rename(template.label, mapping),
        tag=_rename(template.tag, mapping),
    )


def _substitute_template(template: ElementTemplate, mapping: Dict[str, Expr]) -> ElementTemplate:
    return ElementTemplate(
        value=_substitute(template.value, mapping),
        label=_substitute(template.label, mapping),
        tag=_substitute(template.tag, mapping),
    )


def _substitute_branch(branch: Branch, mapping: Dict[str, Expr]) -> Branch:
    return Branch(
        productions=[_substitute_template(t, mapping) for t in branch.productions],
        condition=None if branch.condition is None else _substitute(branch.condition, mapping),
    )


# ---------------------------------------------------------------------------
# Fusion
# ---------------------------------------------------------------------------

@dataclass
class ReductionResult:
    """Outcome of :func:`reduce_program`."""

    program: GammaProgram
    #: Reactions removed by fusion, in the order they were absorbed.
    fused: List[str] = field(default_factory=list)
    #: name of the reduced reaction -> names of the original reactions it absorbs.
    provenance: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def reaction_count(self) -> int:
        return len(self.program)


def _is_fusible_producer(reaction: Reaction) -> bool:
    """True when ``reaction`` matches the producer shape described above."""
    if reaction.guard is not None or len(reaction.branches) != 1:
        return False
    branch = reaction.branches[0]
    if branch.condition is not None or len(branch.productions) != 1:
        return False
    template = branch.productions[0]
    if not isinstance(template.label, Const):
        return False
    # No inctag behaviour: the produced tag must be a bare variable or constant.
    if not isinstance(template.tag, (Var, Const)):
        return False
    # All consumed labels must be literal (no label-discrimination guard, ensured
    # above) so the fused replace list stays in Algorithm 1's class.
    return not reaction.has_variable_label()


def _consumers_of(label: str, program: GammaProgram) -> List[Tuple[Reaction, int]]:
    """(reaction, pattern index) pairs whose replace list requires ``label``."""
    consumers = []
    for reaction in program.reactions:
        for index, pattern in enumerate(reaction.replace):
            if pattern.fixed_label() == label:
                consumers.append((reaction, index))
    return consumers


def _producers_of(label: str, program: GammaProgram) -> List[Reaction]:
    return [r for r in program.reactions if label in r.produced_labels()]


def fuse_once(
    program: GammaProgram,
    preserve_labels: Optional[Set[str]] = None,
    initial: Optional[Multiset] = None,
) -> Optional[Tuple[GammaProgram, str, str]]:
    """Perform one producer-into-consumer fusion.

    Returns ``(new program, producer name, consumer name)`` or ``None`` when no
    fusion applies.  ``preserve_labels`` are labels that must stay observable
    (typically the program's outputs); ``initial`` guards against fusing away
    labels that the initial multiset feeds directly.
    """
    preserve = set(preserve_labels or ())
    initial_labels = set(initial.labels()) if initial is not None else set(
        (program.initial.labels() if program.initial is not None else [])
    )

    for producer in program.reactions:
        if not _is_fusible_producer(producer):
            continue
        template = producer.branches[0].productions[0]
        label = template.label.value
        if label in preserve or label in initial_labels:
            continue
        if len(_producers_of(label, program)) != 1:
            continue
        consumers = _consumers_of(label, program)
        if len(consumers) != 1:
            continue
        consumer, pattern_index = consumers[0]
        if consumer.name == producer.name:
            continue

        # α-rename the producer's variables so they cannot clash with the consumer's.
        rename = {name: f"{name}_{producer.name}" for name in producer.variables()}
        producer_patterns = [_rename_pattern(p, rename) for p in producer.replace]
        producer_template = _rename_template(template, rename)

        consumed_pattern = consumer.replace[pattern_index]
        substitution: Dict[str, Expr] = {}
        if isinstance(consumed_pattern.value, Var):
            substitution[consumed_pattern.value.name] = producer_template.value
        # Unify the tag variables: the producer's (renamed) tag variable must
        # equal the consumer's tag variable for the fused reaction to keep the
        # same-iteration semantics.
        tag_rename: Dict[str, str] = {}
        if isinstance(producer_template.tag, Var) and isinstance(consumed_pattern.tag, Var):
            tag_rename[producer_template.tag.name] = consumed_pattern.tag.name

        new_replace = list(consumer.replace)
        del new_replace[pattern_index]
        new_replace.extend(_rename_pattern(p, tag_rename) for p in producer_patterns)

        new_branches = [_substitute_branch(b, substitution) for b in consumer.branches]
        new_guard = None if consumer.guard is None else _substitute(consumer.guard, substitution)
        if producer.guard is not None:  # pragma: no cover - excluded by _is_fusible_producer
            renamed_guard = _rename(producer.guard, rename)
            new_guard = renamed_guard if new_guard is None else BoolOp("and", new_guard, renamed_guard)

        fused = Reaction(
            name=consumer.name,
            replace=new_replace,
            branches=new_branches,
            guard=new_guard,
        )
        new_reactions = [
            fused if r.name == consumer.name else r
            for r in program.reactions
            if r.name != producer.name
        ]
        new_program = GammaProgram(
            new_reactions, initial=program.initial, name=program.name
        )
        return new_program, producer.name, consumer.name
    return None


def reduce_program(
    program: GammaProgram,
    preserve_labels: Optional[Sequence[str]] = None,
    initial: Optional[Multiset] = None,
    max_fusions: Optional[int] = None,
) -> ReductionResult:
    """Fuse producer/consumer chains to a fixed point (the paper's reduction).

    ``preserve_labels`` defaults to the program's output labels (labels that
    are produced but never consumed), which is what keeps the observable
    behaviour intact.
    """
    preserve = set(preserve_labels) if preserve_labels is not None else program.output_labels()
    result = ReductionResult(program=program)
    provenance: Dict[str, List[str]] = {r.name: [r.name] for r in program.reactions}

    current = program
    fusions = 0
    while max_fusions is None or fusions < max_fusions:
        step = fuse_once(current, preserve_labels=preserve, initial=initial)
        if step is None:
            break
        current, producer_name, consumer_name = step
        provenance[consumer_name] = provenance.get(consumer_name, [consumer_name]) + provenance.pop(
            producer_name, [producer_name]
        )
        result.fused.append(producer_name)
        fusions += 1

    result.program = current
    result.provenance = {
        name: sorted(set(sources)) for name, sources in provenance.items() if name in current
    }
    return result


def granularity_metrics(program: GammaProgram) -> Dict[str, float]:
    """Simple granularity indicators used by the E3 ablation.

    * ``reactions``  — number of reactions,
    * ``mean_arity`` — average number of elements consumed per reaction,
    * ``max_arity``  — largest replace list,
    * ``mean_productions`` — average number of elements produced per branch.
    """
    arities = [r.arity for r in program.reactions]
    productions = [
        len(branch.productions) for r in program.reactions for branch in r.branches
    ]
    return {
        "reactions": float(len(arities)),
        "mean_arity": sum(arities) / len(arities),
        "max_arity": float(max(arities)),
        "mean_productions": sum(productions) / len(productions) if productions else 0.0,
    }
