"""Algorithm 2 of the paper: convert Gamma reactions into dataflow (sub)graphs.

Step 1 of the paper's procedure builds one dataflow graph per reaction:

* every element of the *replace list* becomes a root vertex (Algorithm 2,
  lines 2–4);
* when the *by list* has no condition, the arithmetic expressions of the
  productions become arithmetic vertices wired from those roots
  (lines 17–21);
* when a condition is present, a comparison vertex is created for it, a steer
  vertex is created for every consumed element that feeds the conditional
  productions, and the productions are wired from the steers' ``true`` ports
  (lines 6–16).

The paper notes that recognizing *inctag* (and bare *steer*) behaviour from
reaction syntax alone is left as future work; this module implements those
recognizers as a documented extension so that reactions produced by
Algorithm 1 round-trip into graphs with the same vertex kinds:

* **inctag idiom** — a single consumed element whose productions carry the
  same value with tag ``v + d`` becomes an inctag vertex;
* **comparison idiom** — a two-branch reaction producing ``1`` under a
  comparison and ``0`` otherwise becomes a comparison vertex;
* **steer idiom** — a two-branch reaction guarded by ``control == 1`` whose
  productions forward the data value becomes a steer vertex.

Step 2 of the paper's procedure — mapping the initial multiset onto replicated
instances of these graphs (Fig. 4) — lives in :mod:`repro.core.instancing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataflow.graph import DataflowGraph
from ..dataflow.nodes import (
    PORT_CONTROL,
    PORT_DATA,
    PORT_FALSE,
    PORT_IN,
    PORT_LEFT,
    PORT_OUT,
    PORT_RIGHT,
    PORT_TRUE,
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    RootNode,
    SteerNode,
)
from ..gamma.expr import BinOp, BoolOp, Compare, Const, Expr, Var
from ..gamma.pattern import ElementPattern, ElementTemplate
from ..gamma.program import GammaProgram
from ..gamma.reaction import Branch, Reaction
from .labels import LabelAllocator

__all__ = [
    "ReactionConversionError",
    "ReactionGraph",
    "reaction_to_graph",
    "program_to_graphs",
]


class ReactionConversionError(ValueError):
    """Raised when a reaction uses constructs outside Algorithm 2's supported class."""


@dataclass
class ReactionGraph:
    """The dataflow graph generated for one reaction (Algorithm 2, step 1).

    Attributes
    ----------
    reaction:
        The source reaction.
    graph:
        The generated dataflow graph.  Root vertices are named
        ``in0, in1, ...`` in replace-list order and have ``value=None``
        placeholders; instancing fills them from matched multiset elements.
    pattern_roots:
        Root node ids, one per replace-list pattern (in order).
    output_labels:
        Labels of the graph's dangling *edges*, one per production.  Edge
        labels must be unique within a graph, so a reaction that produces two
        elements with the same multiset label (``gcd``'s ``a-b`` and ``b``)
        gets suffixed edge labels (``x``, ``x#2``); :attr:`output_map` maps
        them back to the produced multiset label.
    output_map:
        ``edge label -> multiset label`` of the corresponding production.
    templates:
        ``edge label -> production template`` (used by instancing to evaluate
        the produced tag under the match binding).
    tag_behaviour:
        ``edge label -> tag delta`` (0 for plain productions, the inctag delta
        for ``v + d`` productions).
    """

    reaction: Reaction
    graph: DataflowGraph
    pattern_roots: List[str]
    output_labels: List[str]
    output_map: Dict[str, str] = field(default_factory=dict)
    templates: Dict[str, ElementTemplate] = field(default_factory=dict)
    tag_behaviour: Dict[str, int] = field(default_factory=dict)

    def instantiate(self, values: Sequence[object], prefix: str) -> DataflowGraph:
        """A renamed copy of the graph with root placeholders set to ``values``.

        ``prefix`` is prepended to every node id and edge label so several
        instances can be merged into one graph (Fig. 4).
        """
        if len(values) != len(self.pattern_roots):
            raise ValueError(
                f"reaction {self.reaction.name!r} consumes {len(self.pattern_roots)} elements, "
                f"got {len(values)} values"
            )
        value_by_root = dict(zip(self.pattern_roots, values))
        clone = DataflowGraph(name=f"{prefix}{self.graph.name}")
        for node in self.graph.nodes:
            if isinstance(node, RootNode) and node.node_id in value_by_root:
                clone.add_node(
                    RootNode(
                        node_id=f"{prefix}{node.node_id}",
                        value=value_by_root[node.node_id],
                        name=node.name,
                    )
                )
            else:
                clone.add_node(_rename_node(node, prefix))
        for edge in self.graph.edges:
            clone.add_edge(
                f"{prefix}{edge.src}",
                f"{prefix}{edge.dst}" if edge.dst is not None else None,
                f"{prefix}{edge.label}",
                src_port=edge.src_port,
                dst_port=edge.dst_port,
            )
        return clone


def _rename_node(node, prefix: str):
    """Copy ``node`` under a prefixed id (dataclasses are frozen, so rebuild)."""
    import dataclasses

    return dataclasses.replace(node, node_id=f"{prefix}{node.node_id}")


# ---------------------------------------------------------------------------
# Idiom recognizers (extension: the paper leaves these to future work)
# ---------------------------------------------------------------------------

def _tag_delta(template: ElementTemplate, tag_vars: frozenset) -> Optional[int]:
    """Tag delta of a production: 0 for a bare tag variable or constant,
    ``d`` for ``v + d``; ``None`` when the expression is anything else."""
    tag = template.tag
    if isinstance(tag, Const):
        return 0
    if isinstance(tag, Var):
        return 0
    if (
        isinstance(tag, BinOp)
        and tag.op == "+"
        and isinstance(tag.left, Var)
        and tag.left.name in tag_vars
        and isinstance(tag.right, Const)
        and isinstance(tag.right.value, int)
    ):
        return tag.right.value
    return None


def _constant_label(template: ElementTemplate) -> str:
    if not isinstance(template.label, Const) or not isinstance(template.label.value, str):
        raise ReactionConversionError(
            "Algorithm 2 requires productions with literal labels; "
            f"got {template.label!r}"
        )
    return template.label.value


def _label_variables(reaction: Reaction) -> frozenset:
    """Variables bound in label position by the replace list."""
    from ..gamma.expr import Var as _Var

    names = set()
    for pat in reaction.replace:
        if isinstance(pat.label, _Var):
            names.add(pat.label.name)
    return frozenset(names)


def _is_inctag_idiom(reaction: Reaction) -> bool:
    if len(reaction.replace) != 1 or len(reaction.branches) != 1:
        return False
    branch = reaction.branches[0]
    if not branch.productions:
        return False
    # A condition (or guard) that only constrains the consumed *label* — the
    # paper's (x=='A1') or (x=='A11') idiom — is a structural constraint, not a
    # data computation, so it does not block the inctag recognition.
    label_vars = _label_variables(reaction)
    if branch.condition is not None and not (branch.condition.variables() <= label_vars):
        return False
    value_var = reaction.replace[0].value
    if not isinstance(value_var, Var):
        return False
    tag_vars = reaction.tag_variables()
    deltas = set()
    for tmpl in branch.productions:
        if not (isinstance(tmpl.value, Var) and tmpl.value.name == value_var.name):
            return False
        delta = _tag_delta(tmpl, tag_vars)
        if delta is None:
            return False
        deltas.add(delta)
    return deltas == {1} or (len(deltas) == 1 and deltas.pop() >= 1)


def _is_comparison_idiom(reaction: Reaction) -> Optional[Compare]:
    """Return the comparison when the reaction is the 1/0-producing idiom."""
    if len(reaction.branches) != 2:
        return None
    true_branch, false_branch = reaction.branches
    if not isinstance(true_branch.condition, Compare) or false_branch.condition is not None:
        return None
    if len(true_branch.productions) != len(false_branch.productions) or not true_branch.productions:
        return None
    for t_tmpl, f_tmpl in zip(true_branch.productions, false_branch.productions):
        if not (isinstance(t_tmpl.value, Const) and t_tmpl.value.value == 1):
            return None
        if not (isinstance(f_tmpl.value, Const) and f_tmpl.value.value == 0):
            return None
        if _constant_label(t_tmpl) != _constant_label(f_tmpl):
            return None
    return true_branch.condition


def _is_steer_idiom(reaction: Reaction) -> Optional[Tuple[str, str]]:
    """Return (data variable, control variable) when the reaction is a steer.

    Shape: two consumed elements, condition ``control == 1`` (or ``== 0``
    reversed), true branch forwarding the data variable, else branch either
    empty or forwarding the data variable.
    """
    if len(reaction.replace) != 2 or len(reaction.branches) != 2:
        return None
    true_branch, false_branch = reaction.branches
    cond = true_branch.condition
    if false_branch.condition is not None or not isinstance(cond, Compare) or cond.op != "==":
        return None
    if not (isinstance(cond.left, Var) and isinstance(cond.right, Const) and cond.right.value == 1):
        return None
    control = cond.left.name
    variables = [p.value.name for p in reaction.replace if isinstance(p.value, Var)]
    if control not in variables or len(variables) != 2:
        return None
    data = next(v for v in variables if v != control)
    for tmpl in true_branch.productions:
        if not (isinstance(tmpl.value, Var) and tmpl.value.name == data):
            return None
    for tmpl in false_branch.productions:
        if not (isinstance(tmpl.value, Var) and tmpl.value.name == data):
            return None
    if not true_branch.productions and not false_branch.productions:
        return None
    return data, control


# ---------------------------------------------------------------------------
# Expression trees -> dataflow vertices
# ---------------------------------------------------------------------------

class _GraphAssembler:
    """Shared machinery for wiring expression trees into a graph."""

    def __init__(self, reaction: Reaction) -> None:
        self.reaction = reaction
        self.graph = DataflowGraph(name=f"df({reaction.name})")
        self.labels = LabelAllocator()
        self.pattern_roots: List[str] = []
        self.var_source: Dict[str, Tuple[str, str]] = {}
        self._node_counter = 0
        # Output bookkeeping (filled by emit_output / register_output).
        self.output_labels: List[str] = []
        self.output_map: Dict[str, str] = {}
        self.templates: Dict[str, ElementTemplate] = {}
        self.tag_behaviour: Dict[str, int] = {}
        self._tag_vars = reaction.tag_variables()

    # -- construction helpers ---------------------------------------------------
    def fresh_node_id(self, prefix: str) -> str:
        self._node_counter += 1
        return f"{prefix}{self._node_counter}"

    def add_pattern_roots(self) -> None:
        for position, pat in enumerate(self.reaction.replace):
            node_id = f"in{position}"
            name = pat.fixed_label() or (
                pat.value.name if isinstance(pat.value, Var) else f"arg{position}"
            )
            self.graph.add_node(RootNode(node_id=node_id, value=None, name=name))
            self.pattern_roots.append(node_id)
            if isinstance(pat.value, Var):
                self.var_source[pat.value.name] = (node_id, PORT_OUT)

    def source_for(self, name: str) -> Tuple[str, str]:
        try:
            return self.var_source[name]
        except KeyError as exc:
            raise ReactionConversionError(
                f"reaction {self.reaction.name!r} uses variable {name!r} "
                f"in a position Algorithm 2 cannot wire (tag or label variable?)"
            ) from exc

    def wire(self, src: Tuple[str, str], dst: str, dst_port: str) -> None:
        self.graph.add_edge(
            src[0], dst, self.labels.fresh("e"), src_port=src[1], dst_port=dst_port
        )

    def build_expression(self, expr: Expr, kind: str = "arith") -> Tuple[str, str]:
        """Create vertices computing ``expr``; return the producing (node, port)."""
        if isinstance(expr, Var):
            return self.source_for(expr.name)
        if isinstance(expr, Const):
            node_id = self.fresh_node_id("const")
            self.graph.add_node(RootNode(node_id=node_id, value=expr.value, name="const"))
            return (node_id, PORT_OUT)
        if isinstance(expr, (BinOp, Compare)):
            cls = ArithmeticNode if isinstance(expr, BinOp) else ComparisonNode
            prefix = "op" if isinstance(expr, BinOp) else "cmp"
            left, right = expr.left, expr.right
            # Fold a constant operand into an immediate, as the paper's Fig. 2
            # does for ``- 1`` and ``> 0``.
            if isinstance(right, Const) and not isinstance(left, Const):
                node_id = self.fresh_node_id(prefix)
                self.graph.add_node(
                    cls(node_id=node_id, op=expr.op, immediate=("right", right.value))
                )
                self.wire(self.build_expression(left), node_id, PORT_IN)
                return (node_id, PORT_OUT)
            if isinstance(left, Const) and not isinstance(right, Const):
                node_id = self.fresh_node_id(prefix)
                self.graph.add_node(
                    cls(node_id=node_id, op=expr.op, immediate=("left", left.value))
                )
                self.wire(self.build_expression(right), node_id, PORT_IN)
                return (node_id, PORT_OUT)
            node_id = self.fresh_node_id(prefix)
            self.graph.add_node(cls(node_id=node_id, op=expr.op))
            self.wire(self.build_expression(left), node_id, PORT_LEFT)
            self.wire(self.build_expression(right), node_id, PORT_RIGHT)
            return (node_id, PORT_OUT)
        raise ReactionConversionError(
            f"reaction {self.reaction.name!r}: expression {expr!r} is outside the class "
            f"Algorithm 2 supports (boolean connectives are only allowed in guards)"
        )

    def build_condition(self, expr: Expr) -> Tuple[str, str]:
        """Create vertices computing a boolean condition as a 0/1 control value.

        Single comparisons map to one comparison vertex (Algorithm 2); boolean
        connectives — which the paper's algorithm does not cover but its
        guards (e.g. the label-discrimination idiom) and the classic Gamma
        programs use — are lowered to ``min`` (and), ``max`` (or) and
        ``1 - x`` (not) vertices over the 0/1 control values.
        """
        if isinstance(expr, Compare):
            return self.build_expression(expr)
        if isinstance(expr, BoolOp):
            left = self.build_condition(expr.left)
            right = self.build_condition(expr.right)
            op = "min" if expr.op == "and" else "max"
            node_id = self.fresh_node_id("bool")
            self.graph.add_node(ArithmeticNode(node_id=node_id, op=op))
            self.wire(left, node_id, PORT_LEFT)
            self.wire(right, node_id, PORT_RIGHT)
            return (node_id, PORT_OUT)
        from ..gamma.expr import Not as _Not

        if isinstance(expr, _Not):
            inner = self.build_condition(expr.operand)
            node_id = self.fresh_node_id("bool")
            self.graph.add_node(ArithmeticNode(node_id=node_id, op="-", immediate=("left", 1)))
            self.wire(inner, node_id, PORT_IN)
            return (node_id, PORT_OUT)
        raise ReactionConversionError(
            f"reaction {self.reaction.name!r}: condition {expr!r} cannot be lowered to "
            f"comparison/steer vertices"
        )

    def _fresh_edge_label(self, production_label: str) -> str:
        """Edge label for a production — unique even when labels repeat (``x``, ``x#2``)."""
        edge_label = production_label
        suffix = 1
        while self.graph.has_label(edge_label):
            suffix += 1
            edge_label = f"{production_label}#{suffix}"
        return edge_label

    def register_output(
        self, src: Tuple[str, str], port: str, template: ElementTemplate
    ) -> str:
        """Attach a dangling edge for ``template`` from ``(src node, port)``."""
        production_label = _constant_label(template)
        delta = _tag_delta(template, self._tag_vars)
        if delta is None:
            raise ReactionConversionError(
                f"reaction {self.reaction.name!r} produces tag {template.tag!r} "
                f"which Algorithm 2 cannot represent"
            )
        edge_label = self._fresh_edge_label(production_label)
        self.graph.add_edge(src[0], None, edge_label, src_port=port)
        self.output_labels.append(edge_label)
        self.output_map[edge_label] = production_label
        self.templates[edge_label] = template
        self.tag_behaviour[edge_label] = delta
        return edge_label

    def emit_output(self, src: Tuple[str, str], template: ElementTemplate) -> str:
        """Attach a (possibly inctag-shifted) dangling output edge for ``template``."""
        delta = _tag_delta(template, self._tag_vars)
        if delta is None:
            raise ReactionConversionError(
                f"reaction {self.reaction.name!r} produces tag {template.tag!r} "
                f"which Algorithm 2 cannot represent"
            )
        if delta:
            node_id = self.fresh_node_id("it")
            self.graph.add_node(IncTagNode(node_id=node_id, delta=delta))
            self.wire(src, node_id, PORT_IN)
            src = (node_id, PORT_OUT)
        elif src[0] in self.pattern_roots and src[1] == PORT_OUT:
            # A bare relabelling of an input: go through a copy vertex so the
            # output edge has a producing instruction (keeps instancing and
            # firing counts meaningful).
            node_id = self.fresh_node_id("cp")
            self.graph.add_node(CopyNode(node_id=node_id))
            self.wire(src, node_id, PORT_IN)
            src = (node_id, PORT_OUT)
        return self.register_output(src, src[1], template)

    def result(self) -> "ReactionGraph":
        """Bundle the assembled graph and bookkeeping into a :class:`ReactionGraph`."""
        return ReactionGraph(
            reaction=self.reaction,
            graph=self.graph,
            pattern_roots=self.pattern_roots,
            output_labels=self.output_labels,
            output_map=self.output_map,
            templates=self.templates,
            tag_behaviour=self.tag_behaviour,
        )


# ---------------------------------------------------------------------------
# Reaction -> graph
# ---------------------------------------------------------------------------

def _convert_inctag_reaction(reaction: Reaction) -> ReactionGraph:
    asm = _GraphAssembler(reaction)
    asm.add_pattern_roots()
    branch = reaction.branches[0]
    node_id = "it1"
    delta = _tag_delta(branch.productions[0], reaction.tag_variables()) or 1
    asm.graph.add_node(IncTagNode(node_id=node_id, delta=delta))
    asm.wire((asm.pattern_roots[0], PORT_OUT), node_id, PORT_IN)
    for tmpl in branch.productions:
        asm.register_output((node_id, PORT_OUT), PORT_OUT, tmpl)
    return asm.result()


def _convert_comparison_reaction(reaction: Reaction, condition: Compare) -> ReactionGraph:
    asm = _GraphAssembler(reaction)
    asm.add_pattern_roots()
    src = asm.build_expression(condition)
    for tmpl in reaction.branches[0].productions:
        asm.register_output(src, src[1], tmpl)
    return asm.result()


def _convert_steer_reaction(reaction: Reaction, data: str, control: str) -> ReactionGraph:
    asm = _GraphAssembler(reaction)
    asm.add_pattern_roots()
    steer_id = "st1"
    asm.graph.add_node(SteerNode(node_id=steer_id))
    asm.wire(asm.source_for(data), steer_id, PORT_DATA)
    asm.wire(asm.source_for(control), steer_id, PORT_CONTROL)
    for port, branch in ((PORT_TRUE, reaction.branches[0]), (PORT_FALSE, reaction.branches[1])):
        for tmpl in branch.productions:
            asm.register_output((steer_id, port), port, tmpl)
    return asm.result()


def _convert_unconditional_reaction(reaction: Reaction) -> ReactionGraph:
    """Algorithm 2, lines 17–21: arithmetic productions wired straight from roots."""
    asm = _GraphAssembler(reaction)
    asm.add_pattern_roots()
    for tmpl in reaction.branches[0].productions:
        src = asm.build_expression(tmpl.value)
        asm.emit_output(src, tmpl)
    return asm.result()


def _convert_conditional_reaction(reaction: Reaction) -> ReactionGraph:
    """Algorithm 2, lines 6–16: comparison + steer vertices guarding the productions."""
    # Normalize the three accepted shapes into (condition, true branch, false branch).
    if len(reaction.branches) == 1:
        branch = reaction.branches[0]
        condition = reaction.guard if branch.condition is None else branch.condition
        true_branch = Branch(productions=branch.productions, condition=None)
        false_branch = Branch(productions=[], condition=None)
    elif len(reaction.branches) == 2:
        true_branch, false_branch = reaction.branches
        condition = true_branch.condition
        if false_branch.condition is not None:
            raise ReactionConversionError(
                f"reaction {reaction.name!r}: the second 'by' branch must be an else arm"
            )
    else:
        raise ReactionConversionError(
            f"reaction {reaction.name!r} has {len(reaction.branches)} branches; "
            f"Algorithm 2 handles at most an if/else pair"
        )
    if condition is None:
        raise ReactionConversionError(
            f"reaction {reaction.name!r} has no condition to lower; "
            f"use the unconditional translation instead"
        )

    asm = _GraphAssembler(reaction)
    asm.add_pattern_roots()
    cmp_src = asm.build_condition(condition)

    # One steer per consumed variable referenced by the conditional productions.
    steered: Dict[str, str] = {}
    needed = set()
    for branch in (true_branch, false_branch):
        for tmpl in branch.productions:
            needed |= {
                name
                for name in tmpl.value.variables()
                if name in asm.var_source
            }
    for name in sorted(needed):
        steer_id = asm.fresh_node_id("st")
        asm.graph.add_node(SteerNode(node_id=steer_id))
        asm.wire(asm.source_for(name), steer_id, PORT_DATA)
        asm.wire(cmp_src, steer_id, PORT_CONTROL)
        steered[name] = steer_id

    def _emit(branch: Branch, port: str) -> None:
        # Rebind variable sources to the steer port for this branch.
        saved = dict(asm.var_source)
        for name, steer_id in steered.items():
            asm.var_source[name] = (steer_id, port)
        try:
            for tmpl in branch.productions:
                if not (tmpl.value.variables() & set(steered)) and false_branch.productions != true_branch.productions:
                    # A production that does not flow through any steer would
                    # be emitted unconditionally, changing the semantics (this
                    # is the 1/0 comparison idiom when the values are
                    # constants — handled by the recognizer — or a construct
                    # outside Algorithm 2 otherwise).
                    raise ReactionConversionError(
                        f"reaction {reaction.name!r}: conditional production {tmpl!r} does not "
                        f"depend on any steered input; Algorithm 2 cannot express it"
                    )
                src = asm.build_expression(tmpl.value)
                asm.emit_output(src, tmpl)
        finally:
            asm.var_source = saved

    _emit(true_branch, PORT_TRUE)
    _emit(false_branch, PORT_FALSE)
    return asm.result()


def reaction_to_graph(reaction: Reaction, recognize_idioms: bool = True) -> ReactionGraph:
    """Convert one reaction into a dataflow graph (Algorithm 2, step 1).

    ``recognize_idioms`` enables the inctag / comparison / steer recognizers
    (our extension of the paper's future-work note); with it disabled the
    conversion uses only the constructs spelled out in Algorithm 2.
    """
    if recognize_idioms:
        if _is_inctag_idiom(reaction):
            return _convert_inctag_reaction(reaction)
        condition = _is_comparison_idiom(reaction)
        if condition is not None:
            return _convert_comparison_reaction(reaction, condition)
        steer = _is_steer_idiom(reaction)
        if steer is not None:
            return _convert_steer_reaction(reaction, *steer)

    has_condition = (
        reaction.guard is not None
        or any(branch.condition is not None for branch in reaction.branches)
        or len(reaction.branches) > 1
    )
    if has_condition:
        return _convert_conditional_reaction(reaction)
    return _convert_unconditional_reaction(reaction)


def program_to_graphs(
    program: GammaProgram, recognize_idioms: bool = True
) -> Dict[str, ReactionGraph]:
    """Convert every reaction of ``program`` (Algorithm 2, step 1, for a whole program)."""
    return {
        reaction.name: reaction_to_graph(reaction, recognize_idioms=recognize_idioms)
        for reaction in program.reactions
    }
