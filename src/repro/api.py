"""Unified runtime configuration: one composable surface for every backend.

Seven PRs of growth left the execution modes configured through accreted
keyword arguments — ``run(engine=..., seed=..., compiled=..., parallel=...,
columnar=...)``, ``DistributedGammaRuntime(backend=..., seed=...)``,
``StreamingGammaRuntime(recovery=..., checkpoint_interval=...)`` — with the
conflict rules duplicated (and slightly diverging) across the three entry
points.  This module centralizes all of it:

* :class:`RuntimeConfig` — a frozen dataclass naming every execution knob
  once.  Build one config and hand it to any entry point::

      from repro.api import RuntimeConfig, run, StreamingGammaRuntime

      cfg = RuntimeConfig(backend="multiprocessing", shards=8, seed=7,
                          elasticity=ElasticityPolicy(seed=7))
      result = run(program, initial, config=cfg)          # batch
      stream = StreamingGammaRuntime(program, config=cfg) # online

* :meth:`RuntimeConfig.validate` — the single home of the conflict rules.
  Each entry point declares its *surface* (``"engine"``, ``"distributed"``,
  ``"streaming"``, ``"simulator"``); fields that do not apply to that
  surface are rejected, and the surface-specific rules (unknown
  engine/backend names, ``parallel`` vs ``engine`` conflicts, recovery and
  elasticity requiring a sharded backend, positivity checks) raise the same
  ``ValueError`` texts the legacy keyword paths raised — because the legacy
  paths now *delegate* here.

* The legacy keywords still work: each entry point builds a config from
  them, validates it, and emits a ``DeprecationWarning`` (message prefix
  ``"legacy keyword configuration"``, which CI escalates to an error for
  the repo's own tests so internal callers stay on the new surface).

The module also re-exports the entry points themselves, so ``repro.api`` is
a one-stop import for running programs any way the system supports.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Any, Optional, Tuple, Union

__all__ = [
    "RuntimeConfig",
    "SURFACES",
    "run",
    "run_program",
    "simulate_program",
    "DistributedGammaRuntime",
    "StreamingGammaRuntime",
    "ShardCoordinator",
    "ElasticityPolicy",
    "RecoveryManager",
]

#: Entry-point surfaces a config can be validated against.
SURFACES = ("engine", "distributed", "streaming", "simulator")

#: Config fields meaningful per surface; everything else must stay unset.
_APPLICABLE = {
    "engine": frozenset(
        {"engine", "compiled", "parallel", "columnar", "seed", "max_steps",
         "raise_on_budget"}
    ),
    "distributed": frozenset(
        {"backend", "shards", "seed", "max_steps", "compiled", "recovery",
         "checkpoint_interval", "elasticity"}
    ),
    "streaming": frozenset(
        {"backend", "shards", "seed", "max_steps", "compiled", "columnar",
         "recovery", "checkpoint_interval", "elasticity", "gateway_capacity",
         "gateway_tenant_quota"}
    ),
    "simulator": frozenset({"seed", "max_steps", "compiled", "columnar"}),
}

_FIELDS = (
    "engine", "compiled", "parallel", "columnar", "backend", "shards",
    "recovery", "checkpoint_interval", "elasticity", "gateway_capacity",
    "gateway_tenant_quota", "seed", "max_steps", "raise_on_budget",
)


@dataclass(frozen=True)
class RuntimeConfig:
    """Every execution knob of the system, named once.

    All fields default to ``None`` ("unset" — the entry point's default
    applies), so a config only states what it changes and composes cleanly
    across surfaces: the fields a surface ignores must simply stay unset
    (enforced by :meth:`validate`).

    Fields
    ------
    engine:
        Single-process engine name (``"sequential"``, ``"chaotic"``,
        ``"max-parallel"``, ``"parallel"``).  Engine *instances* are not
        configuration — configure them directly and call their ``run``.
    compiled:
        Compiled reaction pipeline (default) or the interpreted baseline.
    parallel:
        ``True`` selects the parallel superstep engine; an int additionally
        sets its production-evaluation worker count.  ``False`` is
        normalized to unset.
    columnar:
        Vectorized columnar execution where supported.  ``False`` is
        normalized to unset.
    backend:
        Distributed/streaming backend name.  On the batch :func:`run`
        surface, setting this routes execution through
        :class:`DistributedGammaRuntime`.
    shards:
        Shard / partition count for the distributed and streaming surfaces
        (the *starting* count under elasticity).
    recovery:
        A :class:`~repro.runtime.recovery.RecoveryManager` (sharded
        backends only).
    checkpoint_interval:
        Checkpoint cadence: pumps between checkpoints when streaming,
        barrier rounds between checkpoints in batch mode.
    elasticity:
        An :class:`~repro.runtime.elasticity.ElasticityPolicy` (sharded
        backends only): online group migration and shard autoscaling.
    gateway_capacity:
        Streaming surface only: capacity (element copies) of the ingest
        queue behind :meth:`StreamingGammaRuntime.serve_gateway` — the
        global backpressure bound producers feel through the socket.
    gateway_tenant_quota:
        Streaming surface only: per-tenant cap on pending copies admitted
        through the gateway (must not exceed ``gateway_capacity`` when both
        are set).
    seed:
        Scheduling/admission seed; ``None`` is fully deterministic
        declaration-order scheduling.
    max_steps:
        Step / barrier-round budget (divergence guard).
    raise_on_budget:
        Whether an exhausted budget raises (engine surface only).
    """

    engine: Optional[str] = None
    compiled: Optional[bool] = None
    parallel: Union[None, bool, int] = None
    columnar: Optional[bool] = None
    backend: Optional[str] = None
    shards: Optional[int] = None
    recovery: Optional[Any] = None
    checkpoint_interval: Optional[int] = None
    elasticity: Optional[Any] = None
    gateway_capacity: Optional[int] = None
    gateway_tenant_quota: Optional[int] = None
    seed: Optional[int] = None
    max_steps: Optional[int] = None
    raise_on_budget: Optional[bool] = None

    def __post_init__(self) -> None:
        # parallel=False / columnar=False mean "off", which is the unset
        # default — normalize so sweeps can forward uniform False values
        # (the same tolerance the legacy keywords always had).
        if self.parallel is False:
            object.__setattr__(self, "parallel", None)
        if self.columnar is False:
            object.__setattr__(self, "columnar", None)

    # -- derivation ---------------------------------------------------------------
    def merged(self, **overrides: Any) -> "RuntimeConfig":
        """A copy of this config with ``overrides`` applied (unset-safe)."""
        return replace(self, **overrides)

    # -- validation ---------------------------------------------------------------
    def validate(self, surface: str = "engine") -> "RuntimeConfig":
        """Check this config against one entry-point surface; returns ``self``.

        Raises ``ValueError`` on a field the surface does not understand or
        on any illegal combination — with the exact messages the legacy
        keyword paths raise, since those paths delegate here.  The batch
        ``"engine"`` surface with :attr:`backend` set validates as
        ``"distributed"`` (that is where :func:`run` routes it).
        """
        if surface not in SURFACES:
            raise ValueError(
                f"unknown config surface {surface!r}; expected one of {SURFACES}"
            )
        if surface == "engine" and self.backend is not None:
            surface = "distributed"
        applicable = _APPLICABLE[surface]
        for name in _FIELDS:
            value = getattr(self, name)
            if value is not None and name not in applicable:
                raise ValueError(
                    f"config field {name}={value!r} does not apply to the "
                    f"{surface} surface"
                )
        if self.shards is not None and self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.max_steps is not None and self.max_steps <= 0:
            raise ValueError("max_steps must be positive")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.engine is not None and not isinstance(self.engine, str):
            raise ValueError(
                f"config.engine must be an engine name, got {self.engine!r}; "
                f"configure engine instances directly and call their run()"
            )
        if surface == "engine":
            self._validate_engine()
        elif surface == "distributed":
            self._validate_distributed()
        elif surface == "streaming":
            self._validate_streaming()
        return self

    def _validate_engine(self) -> None:
        """Engine-surface rules (mirrors the historic ``run()`` checks)."""
        from .gamma.engine import _ENGINES

        engine = self.engine
        if self.parallel is not None:
            if engine not in (None, "sequential", "parallel"):
                raise ValueError(
                    f"parallel={self.parallel!r} selects the 'parallel' engine "
                    f"and cannot be combined with engine={engine!r}"
                )
            engine = "parallel"
        if engine is not None and engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
            )

    def _validate_distributed(self) -> None:
        """Distributed-surface rules (mirrors ``DistributedGammaRuntime``)."""
        from .runtime.distributed import DistributedGammaRuntime
        from .runtime.sharding.coordinator import SHARD_BACKENDS

        backend = self.backend if self.backend is not None else "legacy"
        if backend not in DistributedGammaRuntime.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{DistributedGammaRuntime.BACKENDS}"
            )
        if self.recovery is not None and backend not in SHARD_BACKENDS:
            raise ValueError(
                f"recovery requires a sharded backend {SHARD_BACKENDS}, "
                f"got {backend!r}"
            )
        if self.elasticity is not None and backend not in SHARD_BACKENDS:
            raise ValueError(
                f"elasticity requires a sharded backend {SHARD_BACKENDS}, "
                f"got {backend!r}"
            )
        if self.checkpoint_interval is not None and self.recovery is None:
            raise ValueError("checkpoint_interval requires a RecoveryManager")

    def _validate_streaming(self) -> None:
        """Streaming-surface rules (mirrors ``StreamingGammaRuntime``)."""
        from .runtime.streaming import _SHARDED_BACKENDS, STREAM_BACKENDS

        backend = self.backend if self.backend is not None else "sequential"
        if backend not in STREAM_BACKENDS:
            raise ValueError(
                f"unknown streaming backend {backend!r}; "
                f"expected one of {STREAM_BACKENDS}"
            )
        if self.recovery is not None and backend not in _SHARDED_BACKENDS:
            raise ValueError(
                f"recovery requires a sharded backend {_SHARDED_BACKENDS}, "
                f"got {backend!r} (engine backends hold all state in this "
                f"process; there is no worker to lose)"
            )
        if self.elasticity is not None and backend not in _SHARDED_BACKENDS:
            raise ValueError(
                f"elasticity requires a sharded backend {_SHARDED_BACKENDS}, "
                f"got {backend!r} (engine backends have no shards to rebalance)"
            )
        if self.gateway_capacity is not None and self.gateway_capacity <= 0:
            raise ValueError("gateway_capacity must be positive")
        if self.gateway_tenant_quota is not None:
            if self.gateway_tenant_quota <= 0:
                raise ValueError("gateway_tenant_quota must be positive")
            if (
                self.gateway_capacity is not None
                and self.gateway_tenant_quota > self.gateway_capacity
            ):
                raise ValueError(
                    f"gateway_tenant_quota={self.gateway_tenant_quota} exceeds "
                    f"gateway_capacity={self.gateway_capacity}"
                )


# -- legacy-shim helpers (used by every entry point) ------------------------------

def _legacy_names(pairs: Tuple[Tuple[str, Any], ...]) -> Tuple[str, ...]:
    """Names of the legacy keywords actually passed (value is not None)."""
    return tuple(name for name, value in pairs if value is not None)


def _reject_config_mix(names: Tuple[str, ...]) -> None:
    """Config and legacy keywords are mutually exclusive."""
    if names:
        raise ValueError(
            f"cannot combine config= with legacy keyword(s) {', '.join(names)}"
        )


def _warn_legacy(entry_point: str, names: Tuple[str, ...]) -> None:
    """Emit the deprecation for a legacy-keyword call (stable message prefix)."""
    warnings.warn(
        f"legacy keyword configuration of {entry_point} ({', '.join(names)}) "
        f"is deprecated; pass config=RuntimeConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )


# -- facade re-exports ------------------------------------------------------------
# Imported after RuntimeConfig is defined: the entry points import this module
# lazily (inside their functions), so these module-level imports cannot cycle.
from .gamma.engine import run, run_program  # noqa: E402
from .runtime.distributed import DistributedGammaRuntime  # noqa: E402
from .runtime.elasticity import ElasticityPolicy  # noqa: E402
from .runtime.gamma_simulator import simulate_program  # noqa: E402
from .runtime.recovery import RecoveryManager  # noqa: E402
from .runtime.sharding import ShardCoordinator  # noqa: E402
from .runtime.streaming import StreamingGammaRuntime  # noqa: E402
