"""Dataflow graph structure: nodes, labelled edges and structural queries.

A :class:`DataflowGraph` is a directed multigraph whose vertices are
:class:`~repro.dataflow.nodes.Node` instances and whose edges connect an
output port of a producer to an input port of a consumer.  Three aspects
deserve explanation because they mirror the paper's conventions:

* **Edge labels.**  Every edge carries a label (``"A1"``, ``"B2"`` …).  The
  worked examples of the paper label *edges*, not nodes, and the Gamma
  translation turns each edge label into a multiset element label; fan-out of
  one output port is therefore represented as several edges with distinct
  labels (e.g. the inctag R12 of Fig. 2 produces both ``B12`` and ``B13``).
* **Dangling output edges.**  An edge whose destination is ``None`` is a
  program output (the ``m`` edge of Fig. 1): tokens sent on it are collected
  by the interpreter as results.  A steer port with *no* outgoing edge simply
  discards its token (the ``by 0 else`` of the Gamma translation).
* **Merged input ports.**  An input port may have several incoming edges
  (the inctag of Fig. 2 receives either the initial ``A1`` or the loop-back
  ``A11``); whichever token arrives is deposited on the port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .nodes import Node, RootNode

__all__ = ["Edge", "DataflowGraph", "GraphError"]


class GraphError(ValueError):
    """Raised for structural errors when building or validating a graph."""


@dataclass(frozen=True)
class Edge:
    """A directed, labelled edge between two ports.

    ``dst`` / ``dst_port`` are ``None`` for dangling output edges.
    """

    src: str
    src_port: str
    dst: Optional[str]
    dst_port: Optional[str]
    label: str

    @property
    def is_output(self) -> bool:
        """True when this edge is a program output (no consumer)."""
        return self.dst is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = f"{self.dst}.{self.dst_port}" if self.dst is not None else "<output>"
        return f"Edge({self.label}: {self.src}.{self.src_port} -> {head})"


class DataflowGraph:
    """A dynamic dataflow graph."""

    def __init__(self, name: str = "dataflow") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._edges: List[Edge] = []
        self._out_index: Dict[Tuple[str, str], List[Edge]] = {}
        self._in_index: Dict[Tuple[str, str], List[Edge]] = {}
        self._labels: Set[str] = set()

    # -- construction -----------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add ``node`` to the graph; node ids must be unique."""
        if not isinstance(node, Node):
            raise GraphError(f"expected a Node, got {type(node).__name__}")
        if node.node_id in self._nodes:
            raise GraphError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        return node

    def add_edge(
        self,
        src: str,
        dst: Optional[str],
        label: str,
        src_port: Optional[str] = None,
        dst_port: Optional[str] = None,
    ) -> Edge:
        """Connect ``src``'s output port to ``dst``'s input port under ``label``.

        Ports default to the producer's/consumer's single port when
        unambiguous.  Labels must be unique across the graph: the Gamma
        conversion uses them as multiset element labels.
        """
        if src not in self._nodes:
            raise GraphError(f"unknown source node {src!r}")
        src_node = self._nodes[src]
        if src_port is None:
            ports = src_node.output_ports()
            if len(ports) != 1:
                raise GraphError(
                    f"node {src!r} has output ports {ports}; src_port must be given"
                )
            src_port = ports[0]
        if src_port not in src_node.output_ports():
            raise GraphError(f"node {src!r} has no output port {src_port!r}")

        if dst is not None:
            if dst not in self._nodes:
                raise GraphError(f"unknown destination node {dst!r}")
            dst_node = self._nodes[dst]
            if dst_port is None:
                ports = dst_node.input_ports()
                if len(ports) != 1:
                    raise GraphError(
                        f"node {dst!r} has input ports {ports}; dst_port must be given"
                    )
                dst_port = ports[0]
            if dst_port not in dst_node.input_ports():
                raise GraphError(f"node {dst!r} has no input port {dst_port!r}")
        elif dst_port is not None:
            raise GraphError("dst_port given for a dangling output edge")

        if not label:
            raise GraphError("edge label must be non-empty")
        if label in self._labels:
            raise GraphError(f"duplicate edge label {label!r}")

        edge = Edge(src=src, src_port=src_port, dst=dst, dst_port=dst_port, label=label)
        self._edges.append(edge)
        self._labels.add(label)
        self._out_index.setdefault((src, src_port), []).append(edge)
        if dst is not None:
            self._in_index.setdefault((dst, dst_port), []).append(edge)
        return edge

    # -- node / edge access --------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise GraphError(f"unknown node {node_id!r}") from exc

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def edge_by_label(self, label: str) -> Edge:
        for edge in self._edges:
            if edge.label == label:
                return edge
        raise GraphError(f"no edge labelled {label!r}")

    def has_label(self, label: str) -> bool:
        return label in self._labels

    def labels(self) -> List[str]:
        return [e.label for e in self._edges]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    # -- structural queries ----------------------------------------------------------
    def out_edges(self, node_id: str, port: Optional[str] = None) -> List[Edge]:
        """Edges leaving ``node_id`` (optionally restricted to one output port)."""
        if port is not None:
            return list(self._out_index.get((node_id, port), []))
        out: List[Edge] = []
        for p in self.node(node_id).output_ports():
            out.extend(self._out_index.get((node_id, p), []))
        return out

    def in_edges(self, node_id: str, port: Optional[str] = None) -> List[Edge]:
        """Edges entering ``node_id`` (optionally restricted to one input port)."""
        if port is not None:
            return list(self._in_index.get((node_id, port), []))
        out: List[Edge] = []
        for p in self.node(node_id).input_ports():
            out.extend(self._in_index.get((node_id, p), []))
        return out

    def producers(self, node_id: str) -> List[str]:
        """Ids of nodes feeding ``node_id``."""
        return sorted({e.src for e in self.in_edges(node_id)})

    def consumers(self, node_id: str) -> List[str]:
        """Ids of nodes fed by ``node_id``."""
        return sorted({e.dst for e in self.out_edges(node_id) if e.dst is not None})

    def roots(self) -> List[RootNode]:
        """The root (square) vertices, in insertion order."""
        return [n for n in self._nodes.values() if n.is_root]

    def operational_nodes(self) -> List[Node]:
        """All non-root vertices (the ones Algorithm 1 turns into reactions)."""
        return [n for n in self._nodes.values() if not n.is_root]

    def output_edges(self) -> List[Edge]:
        """Dangling edges: the program's observable outputs."""
        return [e for e in self._edges if e.is_output]

    def output_labels(self) -> List[str]:
        return [e.label for e in self.output_edges()]

    def initial_edges(self) -> List[Edge]:
        """Edges leaving root vertices — the paper's "initial edges"."""
        return [e for e in self._edges if self._nodes[e.src].is_root]

    def has_cycle(self) -> bool:
        """True when the graph contains a (loop) cycle."""
        color: Dict[str, int] = {}

        def visit(node_id: str) -> bool:
            color[node_id] = 1
            for edge in self.out_edges(node_id):
                if edge.dst is None:
                    continue
                state = color.get(edge.dst, 0)
                if state == 1:
                    return True
                if state == 0 and visit(edge.dst):
                    return True
            color[node_id] = 2
            return False

        return any(visit(n) for n in self._nodes if color.get(n, 0) == 0)

    def topological_order(self) -> List[str]:
        """Topological order of node ids; raises :class:`GraphError` on cycles."""
        indegree: Dict[str, int] = {n: 0 for n in self._nodes}
        for edge in self._edges:
            if edge.dst is not None:
                indegree[edge.dst] += 1
        ready = [n for n, d in indegree.items() if d == 0]
        order: List[str] = []
        while ready:
            node_id = ready.pop(0)
            order.append(node_id)
            for edge in self.out_edges(node_id):
                if edge.dst is None:
                    continue
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._nodes):
            raise GraphError("graph has a cycle; no topological order exists")
        return order

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of nodes of each kind (used by tests against the paper's figures)."""
        counts: Dict[str, int] = {}
        for node in self._nodes.values():
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    # -- label management -------------------------------------------------------------
    def fresh_label(self, prefix: str = "E") -> str:
        """A label not yet used by any edge."""
        i = len(self._edges)
        while True:
            label = f"{prefix}{i}"
            if label not in self._labels:
                return label
            i += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataflowGraph({self.name!r}, nodes={len(self._nodes)}, edges={len(self._edges)})"
        )
