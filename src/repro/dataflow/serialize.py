"""JSON serialization of dataflow graphs.

Graphs round-trip through a plain-dict schema so they can be stored next to
experiment results, shipped between processes by the distributed runtime, and
diffed in tests.  Only JSON-representable root values survive the round trip
(the graphs in the paper use integers and booleans).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .graph import DataflowGraph, GraphError
from .nodes import (
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    Node,
    RootNode,
    SteerNode,
)

__all__ = ["graph_to_dict", "graph_from_dict", "dumps", "loads", "save", "load"]

_SCHEMA_VERSION = 1


def _node_to_dict(node: Node) -> Dict[str, Any]:
    data: Dict[str, Any] = {"id": node.node_id, "kind": node.kind}
    if isinstance(node, RootNode):
        data["value"] = node.value
        data["name"] = node.name
    elif isinstance(node, (ArithmeticNode, ComparisonNode)):
        data["op"] = node.op
        if node.immediate is not None:
            data["immediate"] = {"side": node.immediate[0], "value": node.immediate[1]}
    elif isinstance(node, IncTagNode):
        data["delta"] = node.delta
    return data


def _node_from_dict(data: Dict[str, Any]) -> Node:
    kind = data["kind"]
    node_id = data["id"]
    if kind == "root":
        return RootNode(node_id=node_id, value=data.get("value"), name=data.get("name", ""))
    if kind in ("arith", "cmp"):
        immediate = None
        if data.get("immediate") is not None:
            immediate = (data["immediate"]["side"], data["immediate"]["value"])
        cls = ArithmeticNode if kind == "arith" else ComparisonNode
        return cls(node_id=node_id, op=data["op"], immediate=immediate)
    if kind == "steer":
        return SteerNode(node_id=node_id)
    if kind == "inctag":
        return IncTagNode(node_id=node_id, delta=data.get("delta", 1))
    if kind == "copy":
        return CopyNode(node_id=node_id)
    raise GraphError(f"unknown node kind {kind!r} in serialized graph")


def graph_to_dict(graph: DataflowGraph) -> Dict[str, Any]:
    """Convert ``graph`` to a JSON-serializable dict."""
    return {
        "schema": _SCHEMA_VERSION,
        "name": graph.name,
        "nodes": [_node_to_dict(n) for n in graph.nodes],
        "edges": [
            {
                "src": e.src,
                "src_port": e.src_port,
                "dst": e.dst,
                "dst_port": e.dst_port,
                "label": e.label,
            }
            for e in graph.edges
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> DataflowGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise GraphError(f"unsupported graph schema {data.get('schema')!r}")
    graph = DataflowGraph(name=data.get("name", "dataflow"))
    for node_data in data["nodes"]:
        graph.add_node(_node_from_dict(node_data))
    for edge_data in data["edges"]:
        graph.add_edge(
            edge_data["src"],
            edge_data["dst"],
            edge_data["label"],
            src_port=edge_data["src_port"],
            dst_port=edge_data["dst_port"],
        )
    return graph


def dumps(graph: DataflowGraph, indent: Optional[int] = 2) -> str:
    """Serialize ``graph`` to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> DataflowGraph:
    """Deserialize a graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: DataflowGraph, path) -> None:
    """Write ``graph`` as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(graph))


def load(path) -> DataflowGraph:
    """Read a graph previously written by :func:`save`."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
