"""Tagged-token matching store (the dynamic dataflow waiting-matching unit).

Dynamic dataflow machines keep arriving operands in a matching store keyed by
``(instruction, tag)``; an instruction becomes *ready* when operands for all
of its input ports with one common tag are present.  :class:`TokenStore`
implements exactly that rule and is shared by the sequential interpreter and
the multi-PE simulator.

Tokens arriving on a port that already holds a value for the same tag are
queued (FIFO): this happens on merged ports such as the inctag input of
Fig. 2, which receives both the initial value and every loop-back value.

The store *is* the dataflow side's persistent scheduling index: the ready set
is maintained incrementally on every deposit/consume, the exact analog of the
Gamma side's attached :class:`~repro.multiset.index.LabelTagIndex` — neither
runtime rescans its pool between steps.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from .graph import DataflowGraph
from .nodes import Node
from .token import Token

__all__ = ["TokenStore", "ReadyEntry"]

#: A ready entry: (node id, tag).
ReadyEntry = Tuple[str, int]


class TokenStore:
    """Waiting-matching store for one graph execution."""

    def __init__(self, graph: DataflowGraph) -> None:
        self.graph = graph
        # (node_id, tag) -> port -> FIFO of values
        self._waiting: Dict[Tuple[str, int], Dict[str, Deque]] = defaultdict(dict)
        self._ready: Set[ReadyEntry] = set()
        self._arity: Dict[str, int] = {
            node.node_id: len(node.input_ports()) for node in graph.nodes
        }

    # -- deposits -----------------------------------------------------------------
    def deposit(self, node_id: str, port: str, token: Token) -> None:
        """Deliver ``token`` to ``node_id``'s input ``port``."""
        node = self.graph.node(node_id)
        if port not in node.input_ports():
            raise ValueError(f"node {node_id!r} has no input port {port!r}")
        key = (node_id, token.tag)
        ports = self._waiting[key]
        ports.setdefault(port, deque()).append(token.value)
        if self._is_complete(node, ports):
            self._ready.add(key)

    def _is_complete(self, node: Node, ports: Dict[str, Deque]) -> bool:
        return all(ports.get(p) for p in node.input_ports())

    # -- readiness ------------------------------------------------------------------
    def ready(self) -> List[ReadyEntry]:
        """The (node, tag) pairs whose firing rule is satisfied."""
        return sorted(self._ready)

    def has_ready(self) -> bool:
        return bool(self._ready)

    def is_ready(self, node_id: str, tag: int) -> bool:
        return (node_id, tag) in self._ready

    # -- consumption ------------------------------------------------------------------
    def consume(self, node_id: str, tag: int) -> Dict[str, object]:
        """Pop one operand per input port for ``(node_id, tag)``.

        Returns the mapping ``port -> value`` the node fires with.  Raises
        ``KeyError`` if the entry is not ready.
        """
        key = (node_id, tag)
        if key not in self._ready:
            raise KeyError(f"({node_id!r}, tag={tag}) is not ready")
        node = self.graph.node(node_id)
        ports = self._waiting[key]
        inputs: Dict[str, object] = {}
        for port in node.input_ports():
            inputs[port] = ports[port].popleft()
        if not self._is_complete(node, ports):
            self._ready.discard(key)
        if all(not q for q in ports.values()):
            del self._waiting[key]
        return inputs

    # -- inspection -----------------------------------------------------------------
    def pending_tokens(self) -> int:
        """Number of operands currently waiting (unmatched or partially matched)."""
        return sum(len(q) for ports in self._waiting.values() for q in ports.values())

    def waiting_tags(self, node_id: str) -> List[int]:
        """Tags for which ``node_id`` holds at least one operand."""
        return sorted(tag for (nid, tag) in self._waiting if nid == node_id)

    def snapshot(self) -> Dict[Tuple[str, int], Dict[str, List]]:
        """A copy of the waiting store (for debugging and tests)."""
        return {
            key: {port: list(queue) for port, queue in ports.items()}
            for key, ports in self._waiting.items()
        }
