"""Graphviz/DOT export of dataflow graphs.

Renders graphs with the paper's visual conventions (Figs. 1, 2 and 4):

* root vertices as squares,
* arithmetic / comparison operators as circles,
* steer vertices as triangles,
* inctag vertices as lozenges (diamonds),
* edges annotated with their labels, dashed for control edges.

The export is plain text; no Graphviz installation is required to produce it
(only to render it), so the examples can always write ``.dot`` files.
"""

from __future__ import annotations

from typing import Dict, Optional, TextIO

from .graph import DataflowGraph
from .nodes import (
    PORT_CONTROL,
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    Node,
    RootNode,
    SteerNode,
)

__all__ = ["to_dot", "write_dot"]

_SHAPES: Dict[type, str] = {
    RootNode: "box",
    ArithmeticNode: "circle",
    ComparisonNode: "circle",
    SteerNode: "triangle",
    IncTagNode: "diamond",
    CopyNode: "ellipse",
}


def _node_shape(node: Node) -> str:
    for cls, shape in _SHAPES.items():
        if isinstance(node, cls):
            return shape
    return "ellipse"


def _node_label(node: Node) -> str:
    if isinstance(node, RootNode):
        name = node.name or ""
        return f"{name}={node.value!r}" if name else repr(node.value)
    if isinstance(node, (ArithmeticNode, ComparisonNode)):
        if node.immediate is not None:
            side, value = node.immediate
            if side == "right":
                return f"{node.op} {value!r}"
            return f"{value!r} {node.op}"
        return node.op
    if isinstance(node, SteerNode):
        return "steer"
    if isinstance(node, IncTagNode):
        return "inctag"
    return node.kind


def to_dot(graph: DataflowGraph, name: Optional[str] = None, rankdir: str = "TB") -> str:
    """Render ``graph`` as a DOT digraph string."""
    title = name or graph.name or "dataflow"
    lines = [f'digraph "{title}" {{', f"  rankdir={rankdir};", "  node [fontsize=11];"]

    for node in graph.nodes:
        shape = _node_shape(node)
        label = _node_label(node).replace('"', '\\"')
        lines.append(
            f'  "{node.node_id}" [shape={shape}, label="{node.node_id}\\n{label}"];'
        )

    sink_count = 0
    for edge in graph.edges:
        attrs = [f'label="{edge.label}"']
        if edge.dst_port == PORT_CONTROL:
            attrs.append("style=dashed")
        if edge.src_port in ("true", "false"):
            attrs.append(f'taillabel="{edge.src_port[0].upper()}"')
        if edge.dst is None:
            sink_id = f"__out_{sink_count}"
            sink_count += 1
            lines.append(f'  "{sink_id}" [shape=plaintext, label="{edge.label}"];')
            lines.append(f'  "{edge.src}" -> "{sink_id}" [{", ".join(attrs)}];')
        else:
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [{", ".join(attrs)}];')

    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(graph: DataflowGraph, path_or_file, **kwargs) -> None:
    """Write :func:`to_dot` output to a path or file object."""
    text = to_dot(graph, **kwargs)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
