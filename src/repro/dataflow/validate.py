"""Structural validation of dataflow graphs.

Validation catches the wiring mistakes that otherwise show up as confusing
runtime deadlocks (a node that never receives an operand simply never fires):

* every input port of every non-root node must have at least one incoming edge;
* steer control inputs should be fed by comparison nodes or roots (warning-level);
* root nodes must not have input edges (enforced structurally by the graph) and
  should feed at least one consumer;
* the graph should have at least one output edge, otherwise running it observably
  does nothing;
* every cycle must pass through an inctag node — this is the dynamic dataflow
  well-formedness condition that keeps loop iterations distinguishable (without
  it, tokens from different iterations would collide on the same tag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from .graph import DataflowGraph
from .nodes import ComparisonNode, IncTagNode, RootNode, SteerNode, PORT_CONTROL

__all__ = ["ValidationIssue", "ValidationReport", "validate_graph"]


@dataclass(frozen=True)
class ValidationIssue:
    """A single finding: ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    node_id: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.node_id}: {self.message}"


@dataclass
class ValidationReport:
    """All findings for one graph."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when there are no error-level findings."""
        return not self.errors

    def raise_if_errors(self) -> None:
        """Raise ``ValueError`` listing all error-level findings."""
        if self.errors:
            details = "; ".join(str(i) for i in self.errors)
            raise ValueError(f"invalid dataflow graph: {details}")

    def add(self, severity: str, node_id: str, message: str) -> None:
        self.issues.append(ValidationIssue(severity=severity, node_id=node_id, message=message))


def _cycles_without_inctag(graph: DataflowGraph) -> List[str]:
    """Node ids on some cycle that contains no inctag vertex."""
    # Build adjacency restricted to non-inctag nodes; any cycle there is a
    # cycle of the full graph avoiding inctag vertices.
    allowed: Set[str] = {
        n.node_id for n in graph.nodes if not isinstance(n, IncTagNode)
    }
    color = {}
    offenders: List[str] = []

    def visit(node_id: str, stack: List[str]) -> None:
        color[node_id] = 1
        stack.append(node_id)
        for edge in graph.out_edges(node_id):
            dst = edge.dst
            if dst is None or dst not in allowed:
                continue
            state = color.get(dst, 0)
            if state == 1:
                # Found a back-edge: everything from dst to the stack top is a cycle.
                idx = stack.index(dst)
                offenders.extend(stack[idx:])
            elif state == 0:
                visit(dst, stack)
        stack.pop()
        color[node_id] = 2

    for node_id in allowed:
        if color.get(node_id, 0) == 0:
            visit(node_id, [])
    return sorted(set(offenders))


def validate_graph(graph: DataflowGraph) -> ValidationReport:
    """Validate ``graph`` and return a :class:`ValidationReport`."""
    report = ValidationReport()

    if len(graph) == 0:
        report.add("error", "<graph>", "graph has no nodes")
        return report

    for node in graph.nodes:
        if isinstance(node, RootNode):
            if not graph.out_edges(node.node_id):
                report.add("warning", node.node_id, "root node feeds no consumer")
            continue
        for port in node.input_ports():
            if not graph.in_edges(node.node_id, port):
                report.add(
                    "error",
                    node.node_id,
                    f"input port {port!r} has no incoming edge (node can never fire)",
                )
        if not graph.out_edges(node.node_id) and not isinstance(node, SteerNode):
            report.add(
                "warning",
                node.node_id,
                "node has no outgoing edges; its results are discarded",
            )
        if isinstance(node, SteerNode):
            for edge in graph.in_edges(node.node_id, PORT_CONTROL):
                src = graph.node(edge.src)
                if not isinstance(src, (ComparisonNode, RootNode, SteerNode)):
                    report.add(
                        "warning",
                        node.node_id,
                        f"control input fed by {src.kind!r} node {src.node_id!r}; "
                        f"expected a comparison or boolean source",
                    )

    if not graph.output_edges():
        report.add("warning", "<graph>", "graph has no output edges; results are unobservable")

    if not graph.roots():
        report.add("error", "<graph>", "graph has no root nodes; nothing can ever fire")

    for node_id in _cycles_without_inctag(graph):
        report.add(
            "error",
            node_id,
            "node lies on a cycle with no inctag vertex; loop iterations would share tags",
        )

    return report
