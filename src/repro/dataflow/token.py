"""Tagged tokens of the dynamic dataflow model.

In dynamic (tagged-token) dataflow every operand travelling on an edge carries
an *iteration tag* identifying the loop instance it belongs to.  A node fires
only when all of its input ports hold tokens **with the same tag** — this is
the matching rule that lets multiple loop iterations execute concurrently
without interference, and it is exactly the information the Gamma translation
stores in the third field of its multiset elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Token", "INITIAL_TAG"]

#: Tag carried by tokens emitted by root/constant nodes before any iteration.
INITIAL_TAG = 0


@dataclass(frozen=True, slots=True)
class Token:
    """A value travelling on a dataflow edge, stamped with an iteration tag."""

    value: Any
    tag: int = INITIAL_TAG

    def __post_init__(self) -> None:
        if isinstance(self.tag, bool) or not isinstance(self.tag, int):
            raise TypeError(f"token tag must be an int, got {type(self.tag).__name__}")
        if self.tag < 0:
            raise ValueError(f"token tag must be non-negative, got {self.tag}")

    def with_value(self, value: Any) -> "Token":
        """Copy with a different value (same tag)."""
        return Token(value=value, tag=self.tag)

    def with_tag(self, tag: int) -> "Token":
        """Copy with a different tag (same value)."""
        return Token(value=self.value, tag=tag)

    def inc_tag(self, delta: int = 1) -> "Token":
        """Copy with the tag incremented — the effect of an ``inctag`` node."""
        return Token(value=self.value, tag=self.tag + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.value!r}@{self.tag})"
