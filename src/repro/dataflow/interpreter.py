"""Firing-rule interpreter for dynamic dataflow graphs.

The interpreter implements the execution model of §II-A of the paper:

* root vertices inject their value once, as a token with tag 0;
* a vertex fires as soon as all of its input ports hold tokens carrying the
  same tag (the dynamic dataflow matching rule);
* firing consumes the matched tokens, computes the vertex's outputs and sends
  one token per outgoing edge (inctag vertices increment the tag of the tokens
  they emit);
* execution terminates when no vertex can fire;
* tokens sent on dangling edges are the program's outputs.

The interpreter is *sequential* (one firing at a time) but accepts a firing
policy — ``"fifo"``, ``"lifo"`` or ``"random"`` — so tests can check that the
final outputs do not depend on the firing order (the dataflow counterpart of
Gamma's scheduler independence).  Parallelism measurements are the job of the
multi-PE simulator in :mod:`repro.runtime.df_simulator`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .compiled_ops import CompiledGraphOps
from .graph import DataflowGraph
from .matching import TokenStore
from .token import INITIAL_TAG, Token

__all__ = ["FiringEvent", "DataflowResult", "DataflowInterpreter", "run_graph"]

DEFAULT_MAX_FIRINGS = 1_000_000


class DataflowDeadlockError(RuntimeError):
    """Raised when the step budget is exhausted before the graph drains."""


@dataclass(frozen=True)
class FiringEvent:
    """A record of one vertex firing."""

    index: int
    node_id: str
    kind: str
    tag: int
    inputs: Dict[str, Any]
    outputs: Dict[str, Any]

    def signature(self) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
        """Reuse signature: node plus input values, tag excluded (see DF-DTM)."""
        return (self.node_id, tuple(sorted(self.inputs.items())))


@dataclass
class DataflowResult:
    """Outcome of draining a dataflow graph."""

    outputs: Dict[str, List[Token]]
    firings: List[FiringEvent]
    total_firings: int
    drained: bool = True

    def output_values(self, label: str) -> List[Any]:
        """Values of the tokens that reached output edge ``label``."""
        return [t.value for t in self.outputs.get(label, [])]

    def single_output(self, label: str) -> Any:
        """The unique token value on ``label`` (raises if 0 or >1 tokens arrived)."""
        tokens = self.outputs.get(label, [])
        if len(tokens) != 1:
            raise ValueError(f"expected exactly one token on {label!r}, got {len(tokens)}")
        return tokens[0].value

    def outputs_as_multiset(self) -> Multiset:
        """Output tokens as a multiset of ``[value, label, tag]`` elements.

        This is the observable the equivalence checker compares against the
        stable Gamma multiset restricted to the same labels.
        """
        elements = []
        for label, tokens in self.outputs.items():
            for token in tokens:
                elements.append(Element(value=token.value, label=label, tag=token.tag))
        return Multiset(elements)

    def firing_counts(self) -> Dict[str, int]:
        """Node id -> number of firings."""
        counts: Dict[str, int] = {}
        for event in self.firings:
            counts[event.node_id] = counts.get(event.node_id, 0) + 1
        return counts

    def reuse_statistics(self) -> Dict[str, int]:
        """Trace-reuse statistics (same contract as :meth:`Trace.reuse_statistics`)."""
        signatures = [f.signature() for f in self.firings]
        unique = len(set(signatures))
        total = len(signatures)
        return {"total": total, "unique": unique, "reusable": total - unique}


class DataflowInterpreter:
    """Sequential tagged-token interpreter."""

    def __init__(
        self,
        graph: DataflowGraph,
        policy: str = "fifo",
        seed: Optional[int] = None,
        max_firings: int = DEFAULT_MAX_FIRINGS,
        record_events: bool = True,
        compiled: bool = True,
    ) -> None:
        if policy not in ("fifo", "lifo", "random"):
            raise ValueError(f"unknown firing policy {policy!r}")
        self.graph = graph
        self.policy = policy
        self.max_firings = max_firings
        self.record_events = record_events
        self.compiled = compiled
        # Compiled node kernels + emit adjacency, built once per interpreter:
        # firing then costs two dict lookups instead of method dispatch and a
        # fresh out-edge list per emit.  ``compiled=False`` keeps the
        # node.compute / graph.out_edges baseline.
        self._ops: Optional[CompiledGraphOps] = CompiledGraphOps(graph) if compiled else None
        self._rng = random.Random(seed)

    # -- overridable hooks ---------------------------------------------------------
    def root_values(self) -> Dict[str, Any]:
        """Value injected by each root node (override to re-run with new inputs)."""
        return {node.node_id: node.value for node in self.graph.roots()}

    # -- execution -------------------------------------------------------------------
    def run(self, root_values: Optional[Dict[str, Any]] = None) -> DataflowResult:
        """Drain the graph and return its outputs.

        ``root_values`` optionally overrides the values injected by root
        vertices (keyed by node id), which lets the same graph be executed on
        many inputs — the equivalence experiments sweep inputs this way.
        """
        store = TokenStore(self.graph)
        outputs: Dict[str, List[Token]] = {e.label: [] for e in self.graph.output_edges()}
        firings: List[FiringEvent] = []
        values = dict(self.root_values())
        if root_values:
            unknown = set(root_values) - {n.node_id for n in self.graph.roots()}
            if unknown:
                raise ValueError(f"root_values for unknown roots: {sorted(unknown)}")
            values.update(root_values)

        total = 0
        # Inject the initial tokens produced by root vertices.
        for root in self.graph.roots():
            token = Token(values[root.node_id], INITIAL_TAG)
            self._emit(root.node_id, {"out": token.value}, INITIAL_TAG, store, outputs)
            if self.record_events:
                firings.append(
                    FiringEvent(
                        index=total,
                        node_id=root.node_id,
                        kind=root.kind,
                        tag=INITIAL_TAG,
                        inputs={},
                        outputs={"out": token.value},
                    )
                )
            total += 1

        ops = self._ops
        while store.has_ready():
            if total >= self.max_firings:
                raise DataflowDeadlockError(
                    f"exceeded {self.max_firings} firings on graph {self.graph.name!r}"
                )
            node_id, tag = self._pick(store.ready())
            inputs = store.consume(node_id, tag)
            if ops is not None:
                produced = ops.kernels[node_id](inputs)
                out_tag = tag + ops.tag_delta[node_id]
                kind = ops.kind[node_id]
            else:
                node = self.graph.node(node_id)
                produced = node.compute(inputs)
                out_tag = tag + node.tag_delta()
                kind = node.kind
            self._emit(node_id, produced, out_tag, store, outputs)
            if self.record_events:
                firings.append(
                    FiringEvent(
                        index=total,
                        node_id=node_id,
                        kind=kind,
                        tag=tag,
                        inputs=dict(inputs),
                        outputs=dict(produced),
                    )
                )
            total += 1

        return DataflowResult(
            outputs=outputs,
            firings=firings,
            total_firings=total,
            drained=True,
        )

    # -- helpers ----------------------------------------------------------------------
    def _pick(self, ready: Sequence[Tuple[str, int]]) -> Tuple[str, int]:
        if self.policy == "fifo":
            return ready[0]
        if self.policy == "lifo":
            return ready[-1]
        return ready[self._rng.randrange(len(ready))]

    def _emit(
        self,
        node_id: str,
        produced: Dict[str, Any],
        tag: int,
        store: TokenStore,
        outputs: Dict[str, List[Token]],
    ) -> None:
        """Send one token per outgoing edge of every produced output port."""
        ops = self._ops
        for port, value in produced.items():
            token = Token(value, tag)
            edges = (
                ops.emit_edges(node_id, port)
                if ops is not None
                else self.graph.out_edges(node_id, port)
            )
            for edge in edges:
                if edge.dst is None:
                    outputs.setdefault(edge.label, []).append(token)
                else:
                    store.deposit(edge.dst, edge.dst_port, token)


def run_graph(
    graph: DataflowGraph,
    root_values: Optional[Dict[str, Any]] = None,
    policy: str = "fifo",
    seed: Optional[int] = None,
    max_firings: int = DEFAULT_MAX_FIRINGS,
    compiled: bool = True,
) -> DataflowResult:
    """Convenience wrapper: drain ``graph`` with a fresh interpreter."""
    interpreter = DataflowInterpreter(
        graph, policy=policy, seed=seed, max_firings=max_firings, compiled=compiled
    )
    return interpreter.run(root_values)
