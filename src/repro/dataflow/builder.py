"""Fluent construction API for dataflow graphs.

Building the paper's graphs directly with :class:`DataflowGraph.add_node` /
``add_edge`` is verbose; :class:`GraphBuilder` offers a small expression-like
layer where node outputs are first-class handles that can be wired into
further operations::

    b = GraphBuilder("example1")
    x, y = b.root(1, "x"), b.root(5, "y")
    k, j = b.root(3, "k"), b.root(2, "j")
    s = b.add(x, y)          # x + y
    p = b.mul(k, j)          # k * j
    b.output(b.sub(s, p), "m")
    graph = b.graph

Handles are :class:`OutputRef` values naming a node's output port.  The
builder assigns edge labels automatically (``A1``-style labels can be forced
via the ``label=`` keyword of each operation to match the paper's figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from .graph import DataflowGraph, Edge
from .nodes import (
    PORT_CONTROL,
    PORT_DATA,
    PORT_FALSE,
    PORT_IN,
    PORT_LEFT,
    PORT_OUT,
    PORT_RIGHT,
    PORT_TRUE,
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    Node,
    RootNode,
    SteerNode,
)

__all__ = ["OutputRef", "GraphBuilder"]


@dataclass(frozen=True)
class OutputRef:
    """A handle to one output port of a node, used as an operand."""

    node_id: str
    port: str = PORT_OUT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.node_id}.{self.port}"


Operand = Union[OutputRef, "int", "float", bool]


class GraphBuilder:
    """Incrementally builds a :class:`DataflowGraph`."""

    def __init__(self, name: str = "dataflow") -> None:
        self.graph = DataflowGraph(name=name)
        self._counter: Dict[str, int] = {}

    # -- identifiers -------------------------------------------------------------
    def _next_id(self, prefix: str) -> str:
        n = self._counter.get(prefix, 0) + 1
        self._counter[prefix] = n
        node_id = f"{prefix}{n}"
        while self.graph.has_node(node_id):
            n += 1
            self._counter[prefix] = n
            node_id = f"{prefix}{n}"
        return node_id

    def _label(self, label: Optional[str]) -> str:
        return label if label is not None else self.graph.fresh_label()

    # -- node constructors ----------------------------------------------------------
    def root(self, value: Any, name: str = "", node_id: Optional[str] = None) -> OutputRef:
        """Add a root (square) vertex injecting ``value``."""
        node_id = node_id or self._next_id("in")
        self.graph.add_node(RootNode(node_id=node_id, value=value, name=name))
        return OutputRef(node_id, PORT_OUT)

    def _wire(self, operand: Operand, dst: str, dst_port: str, label: Optional[str]) -> Edge:
        if not isinstance(operand, OutputRef):
            raise TypeError(
                f"operand for {dst!r}.{dst_port} must be an OutputRef "
                f"(use .root() for constants), got {type(operand).__name__}"
            )
        return self.graph.add_edge(
            operand.node_id, dst, self._label(label), src_port=operand.port, dst_port=dst_port
        )

    def arith(
        self,
        op: str,
        left: Operand,
        right: Operand,
        node_id: Optional[str] = None,
        labels: Tuple[Optional[str], Optional[str]] = (None, None),
    ) -> OutputRef:
        """Add a binary arithmetic vertex fed by ``left`` and ``right``."""
        node_id = node_id or self._next_id("op")
        self.graph.add_node(ArithmeticNode(node_id=node_id, op=op))
        self._wire(left, node_id, PORT_LEFT, labels[0])
        self._wire(right, node_id, PORT_RIGHT, labels[1])
        return OutputRef(node_id, PORT_OUT)

    def arith_imm(
        self,
        op: str,
        operand: Operand,
        immediate: Any,
        side: str = "right",
        node_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> OutputRef:
        """Add an arithmetic vertex with an immediate constant operand (e.g. ``x - 1``)."""
        node_id = node_id or self._next_id("op")
        self.graph.add_node(ArithmeticNode(node_id=node_id, op=op, immediate=(side, immediate)))
        self._wire(operand, node_id, PORT_IN, label)
        return OutputRef(node_id, PORT_OUT)

    def add(self, left: Operand, right: Operand, **kw) -> OutputRef:
        return self.arith("+", left, right, **kw)

    def sub(self, left: Operand, right: Operand, **kw) -> OutputRef:
        return self.arith("-", left, right, **kw)

    def mul(self, left: Operand, right: Operand, **kw) -> OutputRef:
        return self.arith("*", left, right, **kw)

    def div(self, left: Operand, right: Operand, **kw) -> OutputRef:
        return self.arith("/", left, right, **kw)

    def compare(
        self,
        op: str,
        left: Operand,
        right: Operand,
        node_id: Optional[str] = None,
        labels: Tuple[Optional[str], Optional[str]] = (None, None),
    ) -> OutputRef:
        """Add a comparison vertex producing a 0/1 control value."""
        node_id = node_id or self._next_id("cmp")
        self.graph.add_node(ComparisonNode(node_id=node_id, op=op))
        self._wire(left, node_id, PORT_LEFT, labels[0])
        self._wire(right, node_id, PORT_RIGHT, labels[1])
        return OutputRef(node_id, PORT_OUT)

    def compare_imm(
        self,
        op: str,
        operand: Operand,
        immediate: Any,
        side: str = "right",
        node_id: Optional[str] = None,
        label: Optional[str] = None,
    ) -> OutputRef:
        """Add a comparison vertex with an immediate operand (e.g. ``x > 0``)."""
        node_id = node_id or self._next_id("cmp")
        self.graph.add_node(ComparisonNode(node_id=node_id, op=op, immediate=(side, immediate)))
        self._wire(operand, node_id, PORT_IN, label)
        return OutputRef(node_id, PORT_OUT)

    def steer(
        self,
        data: Operand,
        control: Operand,
        node_id: Optional[str] = None,
        labels: Tuple[Optional[str], Optional[str]] = (None, None),
    ) -> Tuple[OutputRef, OutputRef]:
        """Add a steer vertex; returns the (true, false) output handles."""
        node_id = node_id or self._next_id("st")
        self.graph.add_node(SteerNode(node_id=node_id))
        self._wire(data, node_id, PORT_DATA, labels[0])
        self._wire(control, node_id, PORT_CONTROL, labels[1])
        return OutputRef(node_id, PORT_TRUE), OutputRef(node_id, PORT_FALSE)

    def inctag(
        self,
        operand: Operand,
        node_id: Optional[str] = None,
        label: Optional[str] = None,
        delta: int = 1,
    ) -> OutputRef:
        """Add an inctag vertex incrementing the iteration tag of its input."""
        node_id = node_id or self._next_id("it")
        self.graph.add_node(IncTagNode(node_id=node_id, delta=delta))
        self._wire(operand, node_id, PORT_IN, label)
        return OutputRef(node_id, PORT_OUT)

    def copy(self, operand: Operand, node_id: Optional[str] = None, label: Optional[str] = None) -> OutputRef:
        """Add an identity vertex (used for relabelling fan-out)."""
        node_id = node_id or self._next_id("cp")
        self.graph.add_node(CopyNode(node_id=node_id))
        self._wire(operand, node_id, PORT_IN, label)
        return OutputRef(node_id, PORT_OUT)

    # -- wiring helpers ----------------------------------------------------------------
    def connect(
        self,
        src: OutputRef,
        dst: OutputRef,
        dst_port: str,
        label: Optional[str] = None,
    ) -> Edge:
        """Explicitly connect an output handle to a node's input port.

        Needed for loop back-edges, which cannot be expressed by the purely
        expression-shaped constructors above (the consumer exists before the
        producer).
        """
        return self.graph.add_edge(
            src.node_id, dst.node_id, self._label(label), src_port=src.port, dst_port=dst_port
        )

    def connect_to_node(
        self,
        src: OutputRef,
        dst_node_id: str,
        dst_port: str,
        label: Optional[str] = None,
    ) -> Edge:
        """Connect an output handle to ``dst_node_id``'s ``dst_port``."""
        return self.graph.add_edge(
            src.node_id, dst_node_id, self._label(label), src_port=src.port, dst_port=dst_port
        )

    def output(self, src: Operand, label: str) -> Edge:
        """Mark ``src`` as a program output under ``label`` (a dangling edge)."""
        if not isinstance(src, OutputRef):
            raise TypeError("output source must be an OutputRef")
        return self.graph.add_edge(src.node_id, None, label, src_port=src.port)

    def build(self) -> DataflowGraph:
        """Return the constructed graph."""
        return self.graph
