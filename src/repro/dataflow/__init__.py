"""The dynamic dataflow model: graphs, tagged tokens, interpreter and tooling."""

from .builder import GraphBuilder, OutputRef
from .compiled_ops import CompiledGraphOps, compile_node
from .graph import DataflowGraph, Edge, GraphError
from .interpreter import (
    DataflowInterpreter,
    DataflowResult,
    FiringEvent,
    run_graph,
)
from .matching import TokenStore
from .nodes import (
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    Node,
    OperatorNode,
    RootNode,
    SteerNode,
)
from .token import INITIAL_TAG, Token
from .validate import ValidationIssue, ValidationReport, validate_graph

__all__ = [
    "Token", "INITIAL_TAG",
    "Node", "RootNode", "OperatorNode", "ArithmeticNode", "ComparisonNode",
    "SteerNode", "IncTagNode", "CopyNode",
    "DataflowGraph", "Edge", "GraphError",
    "GraphBuilder", "OutputRef",
    "TokenStore",
    "DataflowInterpreter", "DataflowResult", "FiringEvent", "run_graph",
    "CompiledGraphOps", "compile_node",
    "validate_graph", "ValidationReport", "ValidationIssue",
]
