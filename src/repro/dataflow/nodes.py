"""Node taxonomy of the dynamic dataflow graph.

The paper's graphs (Figs. 1 and 2) use four kinds of vertices:

* **root** vertices (drawn as squares) that inject the program's initial
  values — one token each, at tag 0;
* **operator** vertices: arithmetic (``+``, ``-``, ``*`` …) and comparison
  (``>``, ``==`` …) operations, drawn as circles;
* **steer** vertices (triangles): route a data token to their ``true`` or
  ``false`` output port according to a boolean control token;
* **inctag** vertices (lozenges): increment the iteration tag of their input
  token, marking the start of the next loop iteration.

Operators may carry an *immediate* constant operand (the ``-1`` and ``>0``
vertices of Fig. 2): such nodes have a single dynamic input and fold the
constant into the operation, matching the single-input reactions (R14, R18)
the paper derives from them.

Each node computes a pure function from its matched input tokens to a mapping
``output port -> value``; the interpreter and the multi-PE simulator share
this interface, and Algorithm 1 (dataflow → Gamma) reads the node kind and
operator to build the corresponding reaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

__all__ = [
    "Node",
    "RootNode",
    "OperatorNode",
    "ArithmeticNode",
    "ComparisonNode",
    "SteerNode",
    "IncTagNode",
    "CopyNode",
    "PORT_TRUE",
    "PORT_FALSE",
    "PORT_OUT",
    "PORT_DATA",
    "PORT_CONTROL",
    "PORT_LEFT",
    "PORT_RIGHT",
    "PORT_IN",
    "ARITHMETIC_FUNCTIONS",
    "COMPARISON_FUNCTIONS",
]

# Canonical port names.  Ports are plain strings so graphs serialize trivially.
PORT_OUT = "out"
PORT_TRUE = "true"
PORT_FALSE = "false"
PORT_DATA = "data"
PORT_CONTROL = "control"
PORT_LEFT = "a"
PORT_RIGHT = "b"
PORT_IN = "in"


def _int_div(a, b):
    if b == 0:
        raise ZeroDivisionError("division by zero in dataflow node")
    if isinstance(a, int) and isinstance(b, int):
        q = a // b
        # Truncate toward zero to match C-like semantics of the source programs.
        if q < 0 and q * b != a:
            q += 1
        return q
    return a / b


ARITHMETIC_FUNCTIONS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _int_div,
    "%": lambda a, b: a % b,
    "min": min,
    "max": max,
}

COMPARISON_FUNCTIONS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Node:
    """Base class: a vertex of the dataflow graph.

    Attributes
    ----------
    node_id:
        Unique identifier within the graph (``"R1"``, ``"R16"`` …).
    """

    node_id: str

    # -- interface -------------------------------------------------------------
    @property
    def kind(self) -> str:
        """Short string naming the node kind (used by conversion and DOT export)."""
        raise NotImplementedError

    def input_ports(self) -> Tuple[str, ...]:
        """The input port names, in positional order."""
        raise NotImplementedError

    def output_ports(self) -> Tuple[str, ...]:
        """The output port names."""
        raise NotImplementedError

    def compute(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        """Fire the node: map input-port values to output-port values.

        Ports absent from the returned mapping emit no token (e.g. the
        non-selected branch of a steer).
        """
        raise NotImplementedError

    def tag_delta(self) -> int:
        """How much the node shifts the iteration tag of its outputs (0 or 1)."""
        return 0

    @property
    def is_root(self) -> bool:
        return False

    def describe(self) -> str:
        """Human-readable description used in DOT labels and traces."""
        return f"{self.node_id}:{self.kind}"


@dataclass(frozen=True)
class RootNode(Node):
    """A square vertex injecting one initial value at tag 0.

    ``value`` is the payload; ``name`` is an optional source-variable name
    (``x``, ``y`` …) preserved for readable DOT output and conversion traces.
    """

    value: Any = None
    name: str = ""

    @property
    def kind(self) -> str:
        return "root"

    @property
    def is_root(self) -> bool:
        return True

    def input_ports(self) -> Tuple[str, ...]:
        return ()

    def output_ports(self) -> Tuple[str, ...]:
        return (PORT_OUT,)

    def compute(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        return {PORT_OUT: self.value}

    def describe(self) -> str:
        label = self.name or repr(self.value)
        return f"{self.node_id}:root({label}={self.value!r})"


@dataclass(frozen=True)
class OperatorNode(Node):
    """Common base for arithmetic and comparison operators.

    ``immediate`` optionally fixes one operand to a constant: ``("right", 1)``
    for ``x - 1`` or ``("right", 0)`` for ``x > 0``.  Immediate nodes expose a
    single input port.
    """

    op: str = "+"
    immediate: Optional[Tuple[str, Any]] = None

    def __post_init__(self) -> None:
        if self.op not in self._functions():
            raise ValueError(f"unknown operator {self.op!r} for {type(self).__name__}")
        if self.immediate is not None:
            side, _ = self.immediate
            if side not in ("left", "right"):
                raise ValueError(f"immediate side must be 'left' or 'right', got {side!r}")

    def _functions(self) -> Dict[str, Callable[[Any, Any], Any]]:
        raise NotImplementedError

    def input_ports(self) -> Tuple[str, ...]:
        if self.immediate is not None:
            return (PORT_IN,)
        return (PORT_LEFT, PORT_RIGHT)

    def output_ports(self) -> Tuple[str, ...]:
        return (PORT_OUT,)

    def operands(self, inputs: Mapping[str, Any]) -> Tuple[Any, Any]:
        """Resolve (left, right) operands, folding in the immediate if any."""
        if self.immediate is None:
            return inputs[PORT_LEFT], inputs[PORT_RIGHT]
        side, value = self.immediate
        if side == "right":
            return inputs[PORT_IN], value
        return value, inputs[PORT_IN]

    def compute(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        left, right = self.operands(inputs)
        return {PORT_OUT: self._functions()[self.op](left, right)}

    def describe(self) -> str:
        if self.immediate is not None:
            side, value = self.immediate
            if side == "right":
                return f"{self.node_id}:{self.kind}(_ {self.op} {value!r})"
            return f"{self.node_id}:{self.kind}({value!r} {self.op} _)"
        return f"{self.node_id}:{self.kind}({self.op})"


@dataclass(frozen=True)
class ArithmeticNode(OperatorNode):
    """Arithmetic operator vertex (``+``, ``-``, ``*``, ``/``, ``%``, ``min``, ``max``)."""

    @property
    def kind(self) -> str:
        return "arith"

    def _functions(self) -> Dict[str, Callable[[Any, Any], Any]]:
        return ARITHMETIC_FUNCTIONS


@dataclass(frozen=True)
class ComparisonNode(OperatorNode):
    """Comparison vertex producing a boolean control value (encoded 1 / 0)."""

    @property
    def kind(self) -> str:
        return "cmp"

    def _functions(self) -> Dict[str, Callable[[Any, Any], Any]]:
        return COMPARISON_FUNCTIONS

    def compute(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        left, right = self.operands(inputs)
        # Booleans are carried as 1/0 — exactly how the paper's Gamma
        # translation tests them (``if id2 == 1``).
        return {PORT_OUT: 1 if COMPARISON_FUNCTIONS[self.op](left, right) else 0}


@dataclass(frozen=True)
class SteerNode(Node):
    """Steer (triangle): routes the data token to ``true`` or ``false``.

    The control token must be 0/1 (or a bool); anything else is rejected so
    that wiring mistakes surface as errors rather than silently picking the
    false branch.
    """

    @property
    def kind(self) -> str:
        return "steer"

    def input_ports(self) -> Tuple[str, ...]:
        return (PORT_DATA, PORT_CONTROL)

    def output_ports(self) -> Tuple[str, ...]:
        return (PORT_TRUE, PORT_FALSE)

    def compute(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        control = inputs[PORT_CONTROL]
        if isinstance(control, bool):
            control = 1 if control else 0
        if control not in (0, 1):
            raise ValueError(
                f"steer {self.node_id!r} control token must be 0 or 1, got {control!r}"
            )
        port = PORT_TRUE if control == 1 else PORT_FALSE
        return {port: inputs[PORT_DATA]}


@dataclass(frozen=True)
class IncTagNode(Node):
    """Inctag (lozenge): forwards the value with the iteration tag incremented."""

    delta: int = 1

    @property
    def kind(self) -> str:
        return "inctag"

    def input_ports(self) -> Tuple[str, ...]:
        return (PORT_IN,)

    def output_ports(self) -> Tuple[str, ...]:
        return (PORT_OUT,)

    def compute(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        return {PORT_OUT: inputs[PORT_IN]}

    def tag_delta(self) -> int:
        return self.delta


@dataclass(frozen=True)
class CopyNode(Node):
    """Identity vertex used to fan a value out under distinct edge labels.

    Not present in the paper's figures (fan-out is drawn directly on the
    producing vertex) but useful when constructing graphs programmatically
    from reactions whose productions merely relabel an input.
    """

    @property
    def kind(self) -> str:
        return "copy"

    def input_ports(self) -> Tuple[str, ...]:
        return (PORT_IN,)

    def output_ports(self) -> Tuple[str, ...]:
        return (PORT_OUT,)

    def compute(self, inputs: Mapping[str, Any]) -> Dict[str, Any]:
        return {PORT_OUT: inputs[PORT_IN]}
