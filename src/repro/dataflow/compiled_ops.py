"""Compiled node kernels and emit plans for dataflow execution.

The interpreter's inner loop pays a per-firing dispatch tax: every
``node.compute`` call rebuilds the operand tuple through ``operands()``,
re-reads the operator function out of a dict, and re-branches on the
immediate configuration; every ``_emit`` re-queries ``graph.out_edges`` (a
list copy per call).  A dataflow graph is static for the lifetime of a run,
so — exactly like the Gamma side's :mod:`repro.gamma.compiled` — all of that
dispatch is resolved once, at graph load:

* :func:`compile_node` turns each vertex into a **kernel**: a closure from
  the matched input mapping to the produced output mapping, with the
  operator function, immediate operand, port names and 0/1 encoding burnt
  in.  Kernels return exactly what ``node.compute`` returns (same dicts,
  same error messages), so firing events are indistinguishable from the
  interpreted path's.
* :class:`CompiledGraphOps` packages the kernel table with a precomputed
  ``(node, port) -> outgoing edges`` adjacency (the emit plan) and the
  per-node tag deltas, so the run loop does two dict lookups where it used
  to do attribute dispatch plus list construction.

Node classes outside the taxonomy of :mod:`repro.dataflow.nodes` fall back
to their own ``compute`` method — the closure-composition analogue of the
Gamma compiler's fallback: unknown semantics are delegated, never guessed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from .graph import DataflowGraph, Edge
from .nodes import (
    ARITHMETIC_FUNCTIONS,
    COMPARISON_FUNCTIONS,
    PORT_CONTROL,
    PORT_DATA,
    PORT_FALSE,
    PORT_IN,
    PORT_LEFT,
    PORT_OUT,
    PORT_RIGHT,
    PORT_TRUE,
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    Node,
    OperatorNode,
    RootNode,
    SteerNode,
)

__all__ = ["CompiledGraphOps", "compile_node"]

#: A compiled node kernel: input-port mapping -> output-port mapping.
Kernel = Callable[[Mapping[str, Any]], Dict[str, Any]]


def _operator_kernel(node: OperatorNode, wrap_bool: bool) -> Kernel:
    """Kernel for arithmetic/comparison vertices with dispatch pre-resolved."""
    functions = ARITHMETIC_FUNCTIONS if not wrap_bool else COMPARISON_FUNCTIONS
    fn = functions[node.op]
    if node.immediate is None:
        if wrap_bool:
            def kernel(inputs: Mapping[str, Any]) -> Dict[str, Any]:
                return {PORT_OUT: 1 if fn(inputs[PORT_LEFT], inputs[PORT_RIGHT]) else 0}
        else:
            def kernel(inputs: Mapping[str, Any]) -> Dict[str, Any]:
                return {PORT_OUT: fn(inputs[PORT_LEFT], inputs[PORT_RIGHT])}
        return kernel
    side, value = node.immediate
    if side == "right":
        if wrap_bool:
            def kernel(inputs: Mapping[str, Any]) -> Dict[str, Any]:
                return {PORT_OUT: 1 if fn(inputs[PORT_IN], value) else 0}
        else:
            def kernel(inputs: Mapping[str, Any]) -> Dict[str, Any]:
                return {PORT_OUT: fn(inputs[PORT_IN], value)}
        return kernel
    if wrap_bool:
        def kernel(inputs: Mapping[str, Any]) -> Dict[str, Any]:
            return {PORT_OUT: 1 if fn(value, inputs[PORT_IN]) else 0}
    else:
        def kernel(inputs: Mapping[str, Any]) -> Dict[str, Any]:
            return {PORT_OUT: fn(value, inputs[PORT_IN])}
    return kernel


def _steer_kernel(node: SteerNode) -> Kernel:
    node_id = node.node_id

    def kernel(inputs: Mapping[str, Any]) -> Dict[str, Any]:
        control = inputs[PORT_CONTROL]
        if isinstance(control, bool):
            control = 1 if control else 0
        if control not in (0, 1):
            raise ValueError(
                f"steer {node_id!r} control token must be 0 or 1, got {control!r}"
            )
        port = PORT_TRUE if control == 1 else PORT_FALSE
        return {port: inputs[PORT_DATA]}

    return kernel


def compile_node(node: Node) -> Kernel:
    """Specialize ``node`` into a kernel equivalent to ``node.compute``.

    Unknown node classes (user extensions) fall back to the bound ``compute``
    method itself, so compilation never changes semantics.
    """
    if isinstance(node, RootNode):
        value = node.value
        return lambda inputs: {PORT_OUT: value}
    if isinstance(node, ComparisonNode):
        return _operator_kernel(node, wrap_bool=True)
    if isinstance(node, ArithmeticNode):
        return _operator_kernel(node, wrap_bool=False)
    if isinstance(node, SteerNode):
        return _steer_kernel(node)
    if isinstance(node, (IncTagNode, CopyNode)):
        return lambda inputs: {PORT_OUT: inputs[PORT_IN]}
    return node.compute


class CompiledGraphOps:
    """Per-graph compiled execution tables shared by the interpreter and the
    multi-PE simulator.

    ``kernels[node_id]`` fires a vertex, ``out_edges[(node_id, port)]`` is the
    precomputed emit adjacency (a tuple, possibly empty), and
    ``tag_delta[node_id]`` the iteration-tag shift.  Graphs are immutable
    during execution, so the tables are built once per run (or once per
    graph, when the caller keeps the ops object around).
    """

    __slots__ = ("graph", "kernels", "out_edges", "tag_delta", "kind")

    def __init__(self, graph: DataflowGraph) -> None:
        self.graph = graph
        self.kernels: Dict[str, Kernel] = {}
        self.out_edges: Dict[Tuple[str, str], Tuple[Edge, ...]] = {}
        self.tag_delta: Dict[str, int] = {}
        self.kind: Dict[str, str] = {}
        for node in graph.nodes:
            node_id = node.node_id
            self.kernels[node_id] = compile_node(node)
            self.tag_delta[node_id] = node.tag_delta()
            self.kind[node_id] = node.kind
            for port in node.output_ports():
                self.out_edges[(node_id, port)] = tuple(graph.out_edges(node_id, port))

    def emit_edges(self, node_id: str, port: str) -> Tuple[Edge, ...]:
        """The outgoing edges of ``node_id``'s ``port`` (empty tuple if none)."""
        return self.out_edges.get((node_id, port), ())
