"""Processing-element model used by the discrete-step simulators.

The paper (§II-A) describes dataflow runtimes where "each core is a virtual
Processing Element (PE) that runs the dataflow firing rule": ready work items
are dispatched to PEs, independent items execute simultaneously.  The same
abstraction serves the parallel Gamma schedulers (each PE performs one
reaction firing per step).  The model is deliberately simple — unit-latency
work items, a shared ready queue, round-robin assignment — because the
paper's claims concern *available* parallelism, not micro-architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, List, Optional, Sequence, TypeVar

__all__ = ["ProcessingElement", "PEPool"]

WorkItem = TypeVar("WorkItem")


@dataclass
class ProcessingElement(Generic[WorkItem]):
    """One virtual PE: a name, a busy counter and a log of executed items."""

    index: int
    executed: int = 0
    history: List[WorkItem] = field(default_factory=list)

    def execute(self, item: WorkItem) -> None:
        """Account for executing one unit-latency work item."""
        self.executed += 1
        self.history.append(item)


class PEPool(Generic[WorkItem]):
    """A fixed pool of PEs dispatching at most one work item per PE per step."""

    def __init__(self, num_pes: Optional[int]) -> None:
        if num_pes is not None and num_pes <= 0:
            raise ValueError("num_pes must be positive (or None for unbounded)")
        self.num_pes = num_pes
        count = num_pes if num_pes is not None else 0
        self.pes: List[ProcessingElement] = [ProcessingElement(i) for i in range(count)]
        self._steps = 0
        self._profile: List[int] = []
        self._cursor = 0

    # -- scheduling ---------------------------------------------------------------
    def capacity(self) -> Optional[int]:
        """Work items the pool can absorb in one step (None = unbounded)."""
        return self.num_pes

    def dispatch(self, items: Sequence[WorkItem]) -> List[WorkItem]:
        """Execute up to ``capacity`` items this step; return the accepted items.

        Bounded pools assign round-robin from a rotating cursor, so a
        narrower-than-capacity superstep batch does not pile all its work onto
        the low-indexed PEs step after step — :meth:`load_balance` then
        reflects the even spread a real worker pool would show.
        """
        if self.num_pes is None:
            accepted = list(items)
            # Grow the (virtual) PE list lazily so per-PE statistics still exist.
            while len(self.pes) < len(accepted):
                self.pes.append(ProcessingElement(len(self.pes)))
            for pe, item in zip(self.pes, accepted):
                pe.execute(item)
        else:
            accepted = list(items)[: self.num_pes]
            for offset, item in enumerate(accepted):
                self.pes[(self._cursor + offset) % self.num_pes].execute(item)
            self._cursor = (self._cursor + len(accepted)) % self.num_pes
        self._steps += 1
        self._profile.append(len(accepted))
        return accepted

    # -- statistics ---------------------------------------------------------------
    @property
    def steps(self) -> int:
        return self._steps

    @property
    def profile(self) -> List[int]:
        return list(self._profile)

    @property
    def total_executed(self) -> int:
        return sum(pe.executed for pe in self.pes)

    def load_balance(self) -> List[int]:
        """Work items executed per PE (empty for unbounded pools never used)."""
        return [pe.executed for pe in self.pes]

    def load_imbalance(self) -> float:
        """Max-over-mean load ratio across the pool's PEs.

        ``1.0`` is a perfectly even spread; higher values mean some PEs
        carried disproportionate work.  Pools that executed nothing report
        ``1.0`` (trivially balanced).  This is the same balance statistic
        :func:`repro.analysis.shard_balance` computes for shard loads, so PE
        pools and shard workers are comparable on one scale.
        """
        loads = self.load_balance()
        total = sum(loads)
        if not loads or not total:
            return 1.0
        return max(loads) * len(loads) / total
