"""Fault-tolerance layer: epoch checkpoints, ingest WAL, rollback recovery.

The sharded runtime's barrier protocol assumes workers never die; this module
removes that assumption.  It supplies the three durable primitives the
coordinator and streaming runtime compose into crash recovery:

* :class:`CheckpointStore` — epoch-aligned snapshots of every shard's
  partition.  A checkpoint is taken at a superstep barrier — a natural
  *consistent cut*: no firing is in progress, no migration is in flight —
  and serializes each shard's multiset through the existing column-batch
  wire format (:func:`~repro.multiset.columnar.to_column_batch`), so the
  snapshot bytes are exactly what already crosses process boundaries.
  In-memory (:class:`MemoryCheckpointStore`) and on-disk
  (:class:`DiskCheckpointStore`, atomic rename per epoch) variants share
  one interface.
* :class:`WriteAheadLog` — a durable, ordered log of streamed admissions.
  Every batch the :class:`~repro.runtime.streaming.IngestQueue` admits is
  appended *before* it becomes visible to any shard, so an element accepted
  from a producer can never be lost to a crash: it is either reflected in a
  later checkpoint or replayable from the log.  Memory and disk variants;
  the disk log survives coordinator restarts.
* :class:`RecoveryManager` — binds a store and a log with a recovery
  budget.  On worker death the session rolls *every* shard back to the
  latest checkpoint (restoring only the dead shard would tear the cut:
  elements migrated since the checkpoint would be duplicated or lost),
  replays the logged admissions since that epoch, and resumes the barrier
  protocol.  For confluent programs the rolled-back run converges to the
  same stable multiset — the property the crash-injected conformance fuzz
  suite pins.

:class:`WorkerDied` is the supervision signal: the multiprocessing backend
raises it from its liveness-checked receive path instead of tearing the
whole run down, and :class:`~repro.runtime.sharding.ShardSession` translates
it into a rollback.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..multiset.columnar import (
    ColumnBatch,
    column_batch_copies,
    from_column_batch,
    to_column_batch,
)
from ..multiset.element import Element

__all__ = [
    "WorkerDied",
    "Checkpoint",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "DiskCheckpointStore",
    "WALRecord",
    "WriteAheadLog",
    "MemoryWriteAheadLog",
    "DiskWriteAheadLog",
    "RecoveryManager",
]

#: Epoch used for the initial checkpoint taken right after the load barrier,
#: before any round has run and before streaming epoch 0 is admitted.
INITIAL_EPOCH = -1


class WorkerDied(RuntimeError):
    """A shard worker was lost (killed, crashed, or declared unresponsive).

    Raised by the supervised multiprocessing backend instead of tearing the
    run down; the owning session catches it and performs rollback recovery.
    Unsupervised backends keep the PR 5 behavior: teardown plus a plain
    ``RuntimeError``.
    """

    def __init__(self, shard: int, reason: str = "died") -> None:
        """Record which shard was lost and why (``reason`` is diagnostic text)."""
        super().__init__(f"shard {shard} worker {reason}")
        self.shard = shard
        self.reason = reason


@dataclass(frozen=True)
class Checkpoint:
    """One consistent cut: every shard's partition at a superstep barrier.

    ``epoch`` orders checkpoints (streaming pump index, or the barrier-round
    counter for batch runs; the initial load cut uses
    :data:`INITIAL_EPOCH`).  ``shard_batches`` holds one column batch per
    shard — the same wire format exchange transfers use.  ``counters`` is an
    informational snapshot of the session's accounting at the cut; rollback
    never rewinds live counters (they monotonically count *performed* work,
    including work redone after a crash).
    """

    epoch: int
    shard_batches: Tuple[ColumnBatch, ...]
    counters: Dict[str, int] = field(default_factory=dict)

    def copies(self) -> int:
        """Total element copies captured across all shards."""
        return sum(column_batch_copies(batch) for batch in self.shard_batches)

    def shard_pairs(self, shard: int) -> List[Tuple[Element, int]]:
        """Decode shard ``shard``'s batch back into ``(element, count)`` pairs."""
        return from_column_batch(self.shard_batches[shard])


class CheckpointStore:
    """Interface of a checkpoint repository (see the concrete variants).

    Implementations must keep :meth:`latest` consistent with :meth:`save`
    and tolerate re-saving an epoch (last write wins) — the session retries
    a checkpoint whose snapshot was interrupted by a worker death.
    """

    def save(self, checkpoint: Checkpoint) -> None:
        """Persist ``checkpoint`` (replacing any previous one at its epoch)."""
        raise NotImplementedError

    def load(self, epoch: int) -> Checkpoint:
        """Return the checkpoint stored for ``epoch`` (``KeyError`` if absent)."""
        raise NotImplementedError

    def latest(self) -> Optional[Checkpoint]:
        """The highest-epoch checkpoint, or ``None`` when the store is empty."""
        epochs = self.epochs()
        return self.load(max(epochs)) if epochs else None

    def epochs(self) -> List[int]:
        """Sorted epochs currently stored."""
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """Checkpoints held in the coordinator's memory.

    The default store: survives worker deaths (the coordinator process owns
    it) but not a coordinator restart.  ``keep`` bounds retention to the
    most recent N epochs (``None`` keeps everything).
    """

    def __init__(self, keep: Optional[int] = 2) -> None:
        """Create an empty store retaining the ``keep`` most recent epochs."""
        if keep is not None and keep <= 0:
            raise ValueError("keep must be positive (or None for unbounded)")
        self.keep = keep
        self._checkpoints: Dict[int, Checkpoint] = {}

    def save(self, checkpoint: Checkpoint) -> None:
        """Store ``checkpoint`` and evict the oldest epochs beyond ``keep``."""
        self._checkpoints[checkpoint.epoch] = checkpoint
        if self.keep is not None:
            for epoch in sorted(self._checkpoints)[: -self.keep]:
                del self._checkpoints[epoch]

    def load(self, epoch: int) -> Checkpoint:
        """Return the checkpoint at ``epoch`` (``KeyError`` if absent)."""
        return self._checkpoints[epoch]

    def epochs(self) -> List[int]:
        """Sorted epochs currently stored."""
        return sorted(self._checkpoints)


class DiskCheckpointStore(CheckpointStore):
    """Checkpoints persisted under a directory, one pickle file per epoch.

    Writes are atomic (temp file + ``os.replace`` after fsync), so a crash
    mid-save never corrupts an existing checkpoint.  A store re-opened on
    the same directory sees everything a previous process saved — the
    restart-durability variant.
    """

    _PREFIX = "checkpoint_"

    def __init__(self, directory, keep: Optional[int] = 2) -> None:
        """Open (creating if needed) a checkpoint directory."""
        if keep is not None and keep <= 0:
            raise ValueError("keep must be positive (or None for unbounded)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def _path(self, epoch: int) -> Path:
        return self.directory / f"{self._PREFIX}{epoch}.pkl"

    def save(self, checkpoint: Checkpoint) -> None:
        """Atomically persist ``checkpoint`` and prune epochs beyond ``keep``."""
        payload = {
            "epoch": checkpoint.epoch,
            "shard_batches": list(checkpoint.shard_batches),
            "counters": dict(checkpoint.counters),
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-checkpoint-"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, self._path(checkpoint.epoch))
        except BaseException:
            if os.path.exists(temp_name):  # pragma: no cover - cleanup race
                os.unlink(temp_name)
            raise
        if self.keep is not None:
            for epoch in self.epochs()[: -self.keep]:
                self._path(epoch).unlink(missing_ok=True)

    def load(self, epoch: int) -> Checkpoint:
        """Read the checkpoint at ``epoch`` back from disk."""
        path = self._path(epoch)
        if not path.exists():
            raise KeyError(epoch)
        payload = pickle.loads(path.read_bytes())
        return Checkpoint(
            epoch=payload["epoch"],
            shard_batches=tuple(tuple(batch) for batch in payload["shard_batches"]),
            counters=dict(payload["counters"]),
        )

    def epochs(self) -> List[int]:
        """Sorted epochs present in the directory."""
        epochs = []
        for path in self.directory.glob(f"{self._PREFIX}*.pkl"):
            try:
                epochs.append(int(path.stem[len(self._PREFIX):]))
            except ValueError:  # pragma: no cover - foreign file
                continue
        return sorted(epochs)


@dataclass(frozen=True)
class WALRecord:
    """One logged admission: an epoch-tagged batch of streamed elements.

    ``sequence`` is the log's total order (replay applies records in
    sequence order); ``epoch`` ties the record to the streaming epoch whose
    injection it made durable, which is what the replay cutoff compares
    against the recovered checkpoint's epoch.
    """

    sequence: int
    epoch: int
    batch: ColumnBatch

    def pairs(self) -> List[Tuple[Element, int]]:
        """Decode the batch back into ``(element, count)`` pairs."""
        return from_column_batch(self.batch)

    def copies(self) -> int:
        """Element copies carried by this record."""
        return column_batch_copies(self.batch)


class WriteAheadLog:
    """Interface of the admission log (see the concrete variants).

    The streaming contract: a batch is appended *before* it is injected
    into any shard, so every element visible to the run is either in a
    checkpointed cut or replayable from records after that cut's epoch.
    """

    def append(self, epoch: int, pairs: Sequence[Tuple[Element, int]]) -> WALRecord:
        """Durably log one admission batch; returns the sequenced record."""
        raise NotImplementedError

    def records(self) -> List[WALRecord]:
        """Every live record in sequence order."""
        raise NotImplementedError

    def records_after(self, epoch: int) -> List[WALRecord]:
        """Records whose epoch is strictly greater than ``epoch``, in order.

        The replay set for a rollback to a checkpoint at ``epoch``: batches
        admitted at or before the checkpoint are already inside the cut.
        """
        return [record for record in self.records() if record.epoch > epoch]

    def truncate_through(self, epoch: int) -> int:
        """Drop records with epoch <= ``epoch`` (covered by a checkpoint).

        Returns the number of records dropped.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of live records."""
        return len(self.records())


class MemoryWriteAheadLog(WriteAheadLog):
    """Admission log held in the coordinator's memory (the default)."""

    def __init__(self) -> None:
        """Create an empty log."""
        self._records: List[WALRecord] = []
        self._sequence = 0

    def append(self, epoch: int, pairs: Sequence[Tuple[Element, int]]) -> WALRecord:
        """Log one admission batch; returns the sequenced record."""
        record = WALRecord(
            sequence=self._sequence, epoch=epoch, batch=to_column_batch(list(pairs))
        )
        self._sequence += 1
        self._records.append(record)
        return record

    def records(self) -> List[WALRecord]:
        """Every live record in sequence order."""
        return list(self._records)

    def truncate_through(self, epoch: int) -> int:
        """Drop records now covered by a checkpoint at ``epoch``."""
        before = len(self._records)
        self._records = [r for r in self._records if r.epoch > epoch]
        return before - len(self._records)


class DiskWriteAheadLog(WriteAheadLog):
    """Admission log persisted as a pickle-stream file.

    Appends are flushed and fsynced before returning — the admission is
    durable before the element becomes visible to any shard.  Opening a log
    on an existing file resumes its sequence numbering, so the log survives
    coordinator restarts.  Truncation compacts by atomic rewrite.
    """

    def __init__(self, path) -> None:
        """Open (creating if needed) the log file at ``path``."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._records = self._read_existing()
        self._sequence = (
            self._records[-1].sequence + 1 if self._records else 0
        )

    def _read_existing(self) -> List[WALRecord]:
        if not self.path.exists():
            return []
        records: List[WALRecord] = []
        with self.path.open("rb") as handle:
            while True:
                try:
                    sequence, epoch, batch = pickle.load(handle)
                except EOFError:
                    break
                records.append(
                    WALRecord(sequence=sequence, epoch=epoch, batch=batch)
                )
        return records

    def append(self, epoch: int, pairs: Sequence[Tuple[Element, int]]) -> WALRecord:
        """Durably (flush + fsync) log one admission batch."""
        record = WALRecord(
            sequence=self._sequence, epoch=epoch, batch=to_column_batch(list(pairs))
        )
        self._sequence += 1
        with self.path.open("ab") as handle:
            pickle.dump(
                (record.sequence, record.epoch, record.batch),
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            handle.flush()
            os.fsync(handle.fileno())
        self._records.append(record)
        return record

    def records(self) -> List[WALRecord]:
        """Every live record in sequence order."""
        return list(self._records)

    def truncate_through(self, epoch: int) -> int:
        """Drop covered records and compact the file by atomic rewrite."""
        keep = [r for r in self._records if r.epoch > epoch]
        dropped = len(self._records) - len(keep)
        if not dropped:
            return 0
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=".tmp-wal-"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                for record in keep:
                    pickle.dump(
                        (record.sequence, record.epoch, record.batch),
                        handle,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, self.path)
        except BaseException:
            if os.path.exists(temp_name):  # pragma: no cover - cleanup race
                os.unlink(temp_name)
            raise
        self._records = keep
        return dropped


class RecoveryManager:
    """Checkpoint store + admission log + a recovery budget, in one handle.

    Attach one to :class:`~repro.runtime.sharding.ShardCoordinator`
    (``recovery=``) or :class:`~repro.runtime.streaming.StreamingGammaRuntime`
    (``recovery=``) to turn worker death from a fatal error into a bounded
    rollback.  Defaults to fully in-memory durability (survives worker
    deaths; pass :class:`DiskCheckpointStore`/:class:`DiskWriteAheadLog`
    variants to also survive coordinator restarts).

    ``max_recoveries`` bounds successive rollbacks per run: a worker that
    keeps dying (e.g. a poisoned element crashing it deterministically)
    must eventually surface as an error instead of looping forever.
    """

    def __init__(
        self,
        store: Optional[CheckpointStore] = None,
        wal: Optional[WriteAheadLog] = None,
        max_recoveries: int = 8,
    ) -> None:
        """Bind a store and log (defaulting to the in-memory variants)."""
        if max_recoveries <= 0:
            raise ValueError("max_recoveries must be positive")
        self.store = store if store is not None else MemoryCheckpointStore()
        self.wal = wal if wal is not None else MemoryWriteAheadLog()
        self.max_recoveries = max_recoveries
        self.failures = 0

    def note_failure(self, failure: BaseException) -> None:
        """Count one worker failure; raise once the recovery budget is spent."""
        self.failures += 1
        if self.failures > self.max_recoveries:
            raise RuntimeError(
                f"recovery budget exhausted: {self.failures} worker failures "
                f"exceed max_recoveries={self.max_recoveries}"
            ) from failure

    def log_injection(
        self, epoch: int, pairs: Sequence[Tuple[Element, int]]
    ) -> WALRecord:
        """Durably log one epoch's admission batch (call *before* injecting)."""
        return self.wal.append(epoch, pairs)

    def checkpoint(
        self,
        epoch: int,
        shard_batches: Sequence[ColumnBatch],
        counters: Optional[Dict[str, int]] = None,
    ) -> Checkpoint:
        """Persist a consistent cut and truncate the log it covers."""
        checkpoint = Checkpoint(
            epoch=epoch,
            shard_batches=tuple(shard_batches),
            counters=dict(counters or {}),
        )
        self.store.save(checkpoint)
        self.wal.truncate_through(epoch)
        return checkpoint

    def recovery_plan(self) -> Tuple[Checkpoint, List[WALRecord]]:
        """The rollback target and its replay set.

        Returns ``(latest checkpoint, records after its epoch)``.  Raises
        ``RuntimeError`` when no checkpoint exists — the session always
        takes an initial cut at load, so this indicates misuse.
        """
        checkpoint = self.store.latest()
        if checkpoint is None:
            raise RuntimeError(
                "no checkpoint available to recover from "
                "(was the session started with recovery enabled?)"
            )
        return checkpoint, self.wal.records_after(checkpoint.epoch)
