"""Execution metrics shared by the simulated runtimes.

The quantitative experiments of the reproduction (E9) compare the two models
through the same vocabulary:

* **parallelism profile** — work items executed per simulated step,
* **speedup** — sequential work / number of parallel steps, for a given number
  of processing elements,
* **utilization** — fraction of PE-steps actually busy,
* **critical path / average parallelism** — profile-independent bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ParallelRunMetrics", "speedup_curve"]


@dataclass
class ParallelRunMetrics:
    """Metrics of one simulated parallel execution."""

    #: number of work items (node firings or reaction firings) per step
    profile: List[int] = field(default_factory=list)
    #: number of processing elements the run was simulated with (None = unbounded)
    num_pes: Optional[int] = None
    #: total wall steps (== len(profile))
    steps: int = 0
    #: total work items executed
    work: int = 0

    @classmethod
    def from_profile(cls, profile: Sequence[int], num_pes: Optional[int] = None) -> "ParallelRunMetrics":
        """Build metrics from a per-step width profile, stall steps included.

        A zero-width entry is a *stall*: a wall step where no PE did useful
        work.  Stalls count toward ``steps`` (keeping the field contract
        ``steps == len(profile)``) but contribute no ``work``, so speedup and
        utilization honestly reflect idle capacity instead of being inflated
        by silently dropping the idle steps.
        """
        profile = [int(width) for width in profile]
        return cls(profile=profile, num_pes=num_pes, steps=len(profile), work=sum(profile))

    @property
    def max_parallelism(self) -> int:
        return max(self.profile) if self.profile else 0

    @property
    def average_parallelism(self) -> float:
        return self.work / self.steps if self.steps else 0.0

    @property
    def speedup(self) -> float:
        """Work divided by parallel steps: the speedup over one PE."""
        return self.work / self.steps if self.steps else 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of the PE-step capacity (only defined for bounded PEs)."""
        if not self.num_pes or not self.steps:
            return 0.0
        return self.work / (self.num_pes * self.steps)

    def as_dict(self) -> Dict[str, float]:
        return {
            "steps": float(self.steps),
            "work": float(self.work),
            "max_parallelism": float(self.max_parallelism),
            "average_parallelism": self.average_parallelism,
            "speedup": self.speedup,
            "utilization": self.utilization,
        }


def speedup_curve(run, pe_counts: Sequence[int]) -> Dict[int, float]:
    """Speedups for several PE counts.

    ``run`` is a callable ``num_pes -> ParallelRunMetrics`` (typically a
    partial application of one of the simulators); the returned mapping is
    what the speedup benchmarks print.  Duplicate PE counts are deduplicated
    explicitly (first occurrence wins, insertion order preserved) rather
    than re-simulated and silently collapsed into one dict key.
    """
    curve: Dict[int, float] = {}
    for count in pe_counts:
        count = int(count)
        if count not in curve:
            curve[count] = run(count).speedup
    return curve
