"""In-process shard backend: shards as plain objects.

Runs every :class:`~repro.runtime.sharding.shard.ShardWorker` in the calling
process.  There is no physical parallelism, but the backend executes the
*same* coordinator protocol (superstep rounds, routed exchanges, stealing,
two-phase quiescence) with deterministic, seed-reproducible traces — which is
what the differential property tests pin against the sequential compiled
engine, and what makes multiprocessing-backend behavior explainable: both
backends make identical scheduling decisions for the same seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...gamma.reaction import Reaction
from ...multiset.columnar import from_column_batch, to_column_batch
from ...multiset.element import Element
from ...multiset.multiset import Multiset
from .quiescence import QuiescenceDetector
from .routing import RoutingTable, Transfer
from .shard import LocalReport, ShardWorker

__all__ = ["InProcessBackend"]


class InProcessBackend:
    """Shard backend executing every worker in the coordinator's process.

    The backend also implements the recovery surface
    (:meth:`snapshot_shard_batches` / :meth:`recover`): there are no
    processes to die here, but the fault-injection harness simulates a crash
    by wiping a worker's state, so the full checkpoint/rollback/replay path
    is exercised — deterministically and cheaply — without forking.
    """

    name = "inprocess"

    def __init__(
        self,
        reactions: Sequence[Reaction],
        num_shards: int,
        routing: RoutingTable,
        seed: Optional[int] = None,
        compiled: bool = True,
        superstep: bool = True,
    ) -> None:
        """Create (but do not load) ``num_shards`` local shard workers."""
        self.routing = routing
        self.num_shards = num_shards
        self._worker_args = (tuple(reactions), seed, compiled, superstep)
        self.supervised = False
        self.workers: List[ShardWorker] = [
            self._fresh_worker(shard) for shard in range(num_shards)
        ]

    def _fresh_worker(self, shard: int) -> ShardWorker:
        """Build a brand-new (empty) worker for ``shard``."""
        reactions, seed, compiled, superstep = self._worker_args
        return ShardWorker(
            shard, reactions, seed=seed, compiled=compiled, superstep=superstep
        )

    # -- protocol ----------------------------------------------------------------
    def load(self, partitions: Sequence[Sequence[Tuple[Element, int]]]) -> None:
        """Load the initial hash partitions into the workers (batched)."""
        for worker, batch in zip(self.workers, partitions):
            worker.ingest(batch)

    def superstep_all(
        self,
        max_supersteps: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> List[LocalReport]:
        """Run one local round on every shard; reports in shard order."""
        return [
            worker.run_local(max_supersteps=max_supersteps, budget=budget)
            for worker in self.workers
        ]

    def label_counts(self) -> List[Dict[str, int]]:
        """Per-shard label histograms (migration-planner input)."""
        return [worker.label_counts() for worker in self.workers]

    def execute_transfers(
        self, transfers: Sequence[Transfer], detector: QuiescenceDetector
    ) -> Tuple[int, int]:
        """Apply an exchange plan; returns ``(copies_moved, batches_sent)``.

        Every transfer is one batched extraction plus one batched ingest, with
        the in-flight window reported to the quiescence detector.
        """
        moved = 0
        batches = 0
        for transfer in transfers:
            pairs = self.workers[transfer.source].extract_labels(transfer.labels)
            if not pairs:
                continue
            copies = sum(count for _, count in pairs)
            detector.migrations_started(copies)
            batches += 1
            self.workers[transfer.destination].ingest(pairs)
            detector.migrations_delivered(transfer.destination, copies)
            moved += copies
        return moved, batches

    def steal(
        self,
        donor: int,
        thief: int,
        limit: int,
        detector: QuiescenceDetector,
    ) -> int:
        """Move up to ``limit`` routable copies from ``donor`` to ``thief``."""
        pairs = self.workers[donor].extract_some(limit, self.routing)
        if not pairs:
            return 0
        copies = sum(count for _, count in pairs)
        detector.migrations_started(copies)
        self.workers[thief].ingest(pairs)
        detector.migrations_delivered(thief, copies)
        return copies

    def ingest_batches(
        self, partitions: Sequence[Sequence[Tuple[Element, int]]]
    ) -> List[int]:
        """Routed streaming injection: one batch per shard, empty batches skipped.

        Returns the copies ingested per shard (0 for shards whose batch was
        empty), so the caller can invalidate exactly the touched shards'
        phase-1 verdicts.
        """
        copies = [0] * len(self.workers)
        for shard, batch in enumerate(partitions):
            if batch:
                copies[shard] = self.workers[shard].ingest(batch)
        return copies

    def snapshot_all(self) -> Multiset:
        """Non-destructive union of every shard's partition (mid-stream read).

        Safe between rounds: the in-process workers only mutate inside
        protocol calls, so the snapshot observes a consistent global state.
        """
        snapshot = Multiset()
        for worker in self.workers:
            snapshot.add_counts(worker.counts())
        return snapshot

    def collect_final(self) -> Multiset:
        """Union of every shard's partition (the run's final multiset)."""
        final = Multiset()
        for worker in self.workers:
            final.add_counts(worker.counts())
        return final

    def sizes(self) -> List[int]:
        """Current partition sizes (element copies per shard)."""
        return [len(worker.multiset) for worker in self.workers]

    # -- elasticity --------------------------------------------------------------
    def resize(
        self,
        num_shards: int,
        partitions: Sequence[Sequence[Tuple[Element, int]]],
    ) -> None:
        """Rebuild the worker set at ``num_shards`` and load ``partitions``.

        The elastic scale path: every worker is torn down and recreated
        (fresh scheduler, per-shard derived seed for the *new* shard index)
        and each new shard ingests its repartitioned batch.  The caller — a
        :class:`~repro.runtime.sharding.coordinator.ShardSession` — owns
        snapshotting the old state and repartitioning it.
        """
        for worker in self.workers:
            worker.close()
        self.num_shards = num_shards
        self.workers = [self._fresh_worker(shard) for shard in range(num_shards)]
        for worker, batch in zip(self.workers, partitions):
            if batch:
                worker.ingest(batch)

    # -- recovery ----------------------------------------------------------------
    def snapshot_shard_batches(self) -> List[Any]:
        """Every shard's partition as column batches (checkpoint capture)."""
        return [to_column_batch(worker.counts()) for worker in self.workers]

    def recover(self, shard_batches: Sequence[Any]) -> List[int]:
        """Roll every shard back to a checkpoint cut.

        Each worker is rebuilt from scratch (fresh scheduler, same derived
        seed) and reloaded with its shard's checkpoint batch — the same
        semantics as the multiprocessing ``reset`` broadcast.  Returns the
        empty list: in-process workers have no processes to respawn.
        """
        for shard, batch in enumerate(shard_batches):
            self.workers[shard].close()
            self.workers[shard] = self._fresh_worker(shard)
            self.workers[shard].ingest(from_column_batch(batch))
        return []

    def stop(self) -> None:
        """Detach every worker's scheduler (idempotent)."""
        for worker in self.workers:
            worker.close()
