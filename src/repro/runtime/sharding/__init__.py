"""Sharded distributed execution of Gamma programs.

This package replaces the simulated distributed loop of
:mod:`repro.runtime.distributed` with a real sharded execution subsystem
built on the compiled scheduling stack (PRs 1–3):

* :class:`ShardWorker` — one shard: a local partition of the multiset driven
  by its own compiled :class:`~repro.gamma.scheduler.ReactionScheduler`,
  firing maximal local supersteps through the codegenned collectors and
  :meth:`~repro.multiset.multiset.Multiset.rewrite_batch_unchecked`;
* :class:`RoutingTable` — per-label migration routing derived from reaction
  footprints (labels co-consumed by one reaction share a home shard), which
  makes cross-shard matches resolvable by batched element exchange;
* :class:`QuiescenceDetector` — two-phase global-termination detection: the
  system is quiescent exactly when every shard is locally stable, no
  migration is in flight, and the routing plan is empty (all consumable
  labels co-located, so no cross-shard match can exist);
* :class:`ShardCoordinator` — the superstep-barrier protocol tying the above
  together: local superstep rounds, work-stealing rebalancing driven by
  per-shard load, exchange rounds, termination;
* two interchangeable backends — :class:`InProcessBackend` (shards as
  objects, deterministic traces for differential testing) and
  :class:`MultiprocessingBackend` (shard workers as OS processes exchanging
  pickled element batches over queues).

Fault tolerance: attach a :class:`~repro.runtime.recovery.RecoveryManager`
(``ShardCoordinator(..., recovery=...)``) and worker death becomes a
rollback to the last epoch checkpoint plus write-ahead-log replay instead of
a fatal error — see :mod:`repro.runtime.recovery` and the seeded
fault-injection harness in :mod:`repro.runtime.faults`.

Entry points: :class:`ShardCoordinator` directly, or
``DistributedGammaRuntime(..., backend="inprocess"|"multiprocessing")``.
"""

from .coordinator import ShardCoordinator, ShardedRunResult, ShardSession
from .inprocess import InProcessBackend
from .mp import MultiprocessingBackend
from .quiescence import QuiescenceDetector
from .routing import RoutingTable, Transfer
from .shard import LocalReport, ShardWorker

__all__ = [
    "ShardCoordinator",
    "ShardSession",
    "ShardedRunResult",
    "ShardWorker",
    "LocalReport",
    "RoutingTable",
    "Transfer",
    "QuiescenceDetector",
    "InProcessBackend",
    "MultiprocessingBackend",
]
