"""Multiprocessing shard backend: shard workers as OS processes.

Each shard runs a :class:`~repro.runtime.sharding.shard.ShardWorker` inside
its own process, driven by a small command protocol over ``multiprocessing``
queues.  Design constraints:

* **nothing codegenned crosses a process boundary** — every worker process
  compiles its own schedulers from the program's reactions;
* **element batches travel as parallel columns** (``(values, labels, tags,
  counts)`` lists, see :func:`~repro.multiset.columnar.to_column_batch`),
  keeping the wire format picklable on every supported interpreter
  regardless of how ``Element``'s frozen/slots dataclass pickles, with one
  shared list header per column instead of one tuple per element (the
  per-element quad format survives as :meth:`ShardWorker.to_quads` for
  direct worker use);
* **the fork start method is preferred** when the platform offers it, so the
  reaction objects reach workers by address-space inheritance; under spawn
  they are pickled as ordinary dataclasses.

The protocol is synchronous per command but *parallel per round*: the
coordinator broadcasts ``step`` to every worker before collecting any reply,
so local supersteps of different shards genuinely overlap — this is the
backend that turns the coordinator's superstep barrier into real multi-core
execution.

**Supervision.**  Every reply read polls the worker's liveness: a dead
process is detected within :data:`_LIVENESS_INTERVAL` seconds instead of
blocking until the reply timeout.  Unsupervised (the default), death or an
``("error", ...)`` reply tears the backend down and raises ``RuntimeError``
— the PR 5 fail-loudly contract.  With :attr:`MultiprocessingBackend.
supervised` set (done by sessions holding a
:class:`~repro.runtime.recovery.RecoveryManager`), the backend instead
raises :class:`~repro.runtime.recovery.WorkerDied` and leaves the surviving
workers up, so the session can :meth:`~MultiprocessingBackend.recover`:
respawn dead processes, broadcast a ``reset`` that rebuilds every worker
from a checkpoint batch, and discard the stale replies the aborted round
left behind (each reply queue is drained until the distinctive ``reset_ok``
acknowledgement — commands are served strictly in order, so everything
before it is garbage from the dead round).
"""

from __future__ import annotations

import multiprocessing
import queue
import time
import traceback
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ...gamma.reaction import Reaction
from ...multiset.columnar import (
    column_batch_copies,
    from_column_batch,
    to_column_batch,
)
from ...multiset.element import Element
from ...multiset.multiset import Multiset
from ..recovery import WorkerDied
from .quiescence import QuiescenceDetector
from .routing import RoutingTable, Transfer
from .shard import LocalReport, ShardWorker

__all__ = ["MultiprocessingBackend"]

#: Seconds a queue read may block before the backend declares the worker dead.
_REPLY_TIMEOUT = 300.0

#: Poll granularity of reply reads: a dead worker is detected within about
#: this many seconds regardless of :data:`_REPLY_TIMEOUT`.
_LIVENESS_INTERVAL = 0.05


def _shard_worker_main(
    shard: int,
    reactions: Sequence[Reaction],
    num_shards: int,
    seed: Optional[int],
    compiled: bool,
    superstep: bool,
    commands: "multiprocessing.Queue",
    replies: "multiprocessing.Queue",
) -> None:
    """Worker-process entry point: serve shard commands until ``stop``.

    Replies are ``(kind, payload)`` tuples; any exception is reported as an
    ``("error", traceback_text)`` reply before the process exits, so the
    coordinator fails loudly instead of deadlocking on a silent worker death.
    """
    try:
        worker = ShardWorker(
            shard, reactions, seed=seed, compiled=compiled, superstep=superstep
        )
        routing = RoutingTable(reactions, num_shards)
        while True:
            command, payload = commands.get()
            if command == "stop":
                worker.close()
                replies.put(("stopped", shard))
                return
            if command == "load" or command == "ingest":
                copies = worker.ingest(from_column_batch(payload))
                replies.put(("ok", copies))
            elif command == "step":
                max_supersteps, budget = payload
                report = worker.run_local(max_supersteps=max_supersteps, budget=budget)
                replies.put(
                    (
                        "report",
                        (
                            report.shard,
                            report.fired,
                            report.supersteps,
                            report.size,
                            report.stable,
                        ),
                    )
                )
            elif command == "labels":
                replies.put(("labels", worker.label_counts()))
            elif command == "extract_labels":
                pairs = worker.extract_labels(payload)
                replies.put(("batch", to_column_batch(pairs)))
            elif command == "extract_some":
                pairs = worker.extract_some(payload, routing)
                replies.put(("batch", to_column_batch(pairs)))
            elif command == "snapshot":
                replies.put(("batch", to_column_batch(worker.counts())))
            elif command == "reset":
                # Recovery restore: discard whatever state this worker holds
                # and rebuild it from a checkpoint batch.  The distinctive
                # reply kind lets the coordinator drain stale replies from an
                # aborted round off this queue until the acknowledgement.
                worker.close()
                worker = ShardWorker(
                    shard, reactions, seed=seed, compiled=compiled,
                    superstep=superstep,
                )
                worker.ingest(from_column_batch(payload))
                replies.put(("reset_ok", shard))
            elif command == "sleep":
                # Fault-injection hook: delay the *next* replies without
                # killing the worker (no reply of its own), so tests can pin
                # that liveness polling never declares a slow worker dead.
                time.sleep(payload)
            else:  # pragma: no cover - protocol bug
                raise ValueError(f"unknown shard command {command!r}")
    except BaseException:
        replies.put(("error", traceback.format_exc()))
        raise


class MultiprocessingBackend:
    """Shard backend running every worker in its own OS process."""

    name = "multiprocessing"

    def __init__(
        self,
        reactions: Sequence[Reaction],
        num_shards: int,
        routing: RoutingTable,
        seed: Optional[int] = None,
        compiled: bool = True,
        superstep: bool = True,
    ) -> None:
        """Spawn ``num_shards`` worker processes (not yet loaded).

        Workers are started eagerly so construction fails fast when the
        platform cannot create processes at all.
        """
        self.routing = routing
        self.num_shards = num_shards
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._worker_args = (tuple(reactions), num_shards, seed, compiled, superstep)
        self._commands: List[Any] = [None] * num_shards
        self._replies: List[Any] = [None] * num_shards
        self._processes: List[Any] = [None] * num_shards
        for shard in range(num_shards):
            self._spawn(shard)
        self._stopped = False
        #: When True, worker death raises :class:`WorkerDied` (leaving the
        #: backend up for :meth:`recover`) instead of tearing everything down.
        self.supervised = False

    # -- plumbing ----------------------------------------------------------------
    def _spawn(self, shard: int) -> None:
        """(Re)create shard ``shard``'s queues and worker process."""
        reactions, num_shards, seed, compiled, superstep = self._worker_args
        self._commands[shard] = self._context.Queue()
        self._replies[shard] = self._context.Queue()
        self._processes[shard] = self._context.Process(
            target=_shard_worker_main,
            args=(
                shard,
                reactions,
                num_shards,
                seed,
                compiled,
                superstep,
                self._commands[shard],
                self._replies[shard],
            ),
            daemon=True,
        )
        self._processes[shard].start()

    def _send(self, shard: int, command: str, payload: Any = None) -> None:
        self._commands[shard].put((command, payload))

    def _dead(self, shard: int, reason: str) -> "Exception":
        """Build the error for a lost worker, per supervision mode.

        Supervised: :class:`WorkerDied`, backend left running so the session
        can :meth:`recover`.  Unsupervised: full teardown plus
        ``RuntimeError`` — the fail-loudly contract.
        """
        if self.supervised:
            return WorkerDied(shard, reason)
        self.stop()
        return RuntimeError(f"shard {shard} worker {reason}")

    def _next_reply(self, shard: int, expected: str) -> Tuple[str, Any]:
        """Read shard ``shard``'s next reply, polling process liveness.

        Blocks at most :data:`_REPLY_TIMEOUT` seconds total, but checks
        ``is_alive()`` every :data:`_LIVENESS_INTERVAL`, so a killed worker
        surfaces within the poll interval instead of the full timeout.  After
        observing death, one last non-blocking read drains a reply that may
        have been enqueued before the process died.
        """
        replies = self._replies[shard]
        process = self._processes[shard]
        deadline = time.monotonic() + _REPLY_TIMEOUT
        while True:
            try:
                return replies.get(timeout=_LIVENESS_INTERVAL)
            except queue.Empty:
                pass
            if not process.is_alive():
                try:
                    return replies.get_nowait()
                except queue.Empty:
                    raise self._dead(
                        shard, f"died awaiting {expected!r} reply"
                    ) from None
            if time.monotonic() >= deadline:
                if self.supervised:
                    # An unresponsive-but-alive worker under supervision is
                    # indistinguishable from a livelock: reclaim it the same
                    # way a crash would be handled.
                    process.kill()
                    process.join(timeout=10)
                raise self._dead(
                    shard,
                    f"unresponsive for {_REPLY_TIMEOUT:.0f}s awaiting "
                    f"{expected!r} reply (process "
                    f"{'alive' if process.is_alive() else 'dead'})",
                ) from None

    def _recv(self, shard: int, expected: str) -> Any:
        kind, payload = self._next_reply(shard, expected)
        if kind == "error":
            raise self._dead(shard, f"failed:\n{payload}")
        if kind != expected:  # pragma: no cover - protocol bug
            raise RuntimeError(
                f"shard {shard}: expected {expected!r} reply, got {kind!r}"
            )
        return payload

    # -- protocol ----------------------------------------------------------------
    def load(self, partitions: Sequence[Sequence[Tuple[Element, int]]]) -> None:
        """Ship the initial hash partitions to the workers (one batch each)."""
        for shard, batch in enumerate(partitions):
            self._send(shard, "load", to_column_batch(batch))
        for shard in range(self.num_shards):
            self._recv(shard, "ok")

    def superstep_all(
        self,
        max_supersteps: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> List[LocalReport]:
        """Run one local round on every shard concurrently; reports in shard order.

        The ``step`` command is broadcast to every worker before any reply is
        read, so the shards' local supersteps execute in parallel across
        cores.
        """
        for shard in range(self.num_shards):
            self._send(shard, "step", (max_supersteps, budget))
        reports = []
        for shard in range(self.num_shards):
            fields = self._recv(shard, "report")
            reports.append(LocalReport(*fields))
        return reports

    def label_counts(self) -> List[Dict[str, int]]:
        """Per-shard label histograms (migration-planner input)."""
        for shard in range(self.num_shards):
            self._send(shard, "labels")
        return [self._recv(shard, "labels") for shard in range(self.num_shards)]

    def execute_transfers(
        self, transfers: Sequence[Transfer], detector: QuiescenceDetector
    ) -> Tuple[int, int]:
        """Apply an exchange plan; returns ``(copies_moved, batches_sent)``.

        Extractions are broadcast first (all sources drain concurrently),
        then each batch is forwarded to its destination — the coordinator is
        the switch fabric; batches never travel worker-to-worker directly.
        """
        for transfer in transfers:
            self._send(transfer.source, "extract_labels", list(transfer.labels))
        moved = 0
        batches = 0
        deliveries: List[Tuple[int, int]] = []
        for transfer in transfers:
            batch = self._recv(transfer.source, "batch")
            copies = column_batch_copies(batch)
            if not copies:
                continue
            detector.migrations_started(copies)
            self._send(transfer.destination, "ingest", batch)
            deliveries.append((transfer.destination, copies))
            batches += 1
            moved += copies
        for destination, copies in deliveries:
            self._recv(destination, "ok")
            detector.migrations_delivered(destination, copies)
        return moved, batches

    def steal(
        self,
        donor: int,
        thief: int,
        limit: int,
        detector: QuiescenceDetector,
    ) -> int:
        """Move up to ``limit`` routable copies from ``donor`` to ``thief``."""
        self._send(donor, "extract_some", limit)
        batch = self._recv(donor, "batch")
        copies = column_batch_copies(batch)
        if not copies:
            return 0
        detector.migrations_started(copies)
        self._send(thief, "ingest", batch)
        self._recv(thief, "ok")
        detector.migrations_delivered(thief, copies)
        return copies

    def ingest_batches(
        self, partitions: Sequence[Sequence[Tuple[Element, int]]]
    ) -> List[int]:
        """Routed streaming injection: one queued batch per non-empty shard.

        Batches are broadcast before any reply is read (shards ingest
        concurrently); returns the copies ingested per shard.
        """
        targets = [
            shard for shard, batch in enumerate(partitions) if batch
        ]
        for shard in targets:
            self._send(shard, "ingest", to_column_batch(partitions[shard]))
        copies = [0] * self.num_shards
        for shard in targets:
            copies[shard] = self._recv(shard, "ok")
        return copies

    def snapshot_all(self) -> Multiset:
        """Non-destructive union of every shard's partition (mid-stream read).

        Safe between rounds: workers serve commands strictly in order, so a
        snapshot taken at a barrier observes a consistent global state.
        """
        snapshot = Multiset()
        for batch in self.snapshot_shard_batches():
            snapshot.add_counts(from_column_batch(batch))
        return snapshot

    def collect_final(self) -> Multiset:
        """Union of every shard's partition (the run's final multiset)."""
        return self.snapshot_all()

    # -- elasticity --------------------------------------------------------------
    def resize(
        self,
        num_shards: int,
        partitions: Sequence[Sequence[Tuple[Element, int]]],
    ) -> None:
        """Autoscale to ``num_shards`` worker processes and load ``partitions``.

        Growing spawns fresh processes for the new shard indexes; shrinking
        stops and reclaims the excess ones.  Every remaining worker then
        receives a ``reset`` with its repartitioned batch — the same
        checkpoint-restore broadcast :meth:`recover` uses, so a scale event
        is a planned, loss-free rebuild.  Dead workers are respawned first,
        which makes a resize retried after a mid-resize death idempotent.

        Surviving workers keep their original worker-side routing tables
        (stale ``num_shards``); that is harmless because workers only use
        routing for routability checks, which are home-independent.
        """
        self.respawn(self.dead_shards())
        reactions, _, seed, compiled, superstep = self._worker_args
        self._worker_args = (reactions, num_shards, seed, compiled, superstep)
        if num_shards > self.num_shards:
            for shard in range(self.num_shards, num_shards):
                self._commands.append(None)
                self._replies.append(None)
                self._processes.append(None)
                self._spawn(shard)
        elif num_shards < self.num_shards:
            for shard in range(num_shards, self.num_shards):
                process = self._processes[shard]
                if process.is_alive():
                    try:
                        self._commands[shard].put(("stop", None))
                    except (OSError, ValueError):  # pragma: no cover - teardown race
                        pass
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.kill()
                    process.join(timeout=10)
                for channel in (self._commands[shard], self._replies[shard]):
                    try:
                        channel.close()
                        channel.cancel_join_thread()
                    except (OSError, ValueError):  # pragma: no cover - teardown race
                        pass
            del self._commands[num_shards:]
            del self._replies[num_shards:]
            del self._processes[num_shards:]
        self.num_shards = num_shards
        for shard in range(num_shards):
            self._send(shard, "reset", to_column_batch(partitions[shard]))
        for shard in range(num_shards):
            while True:
                kind, payload = self._next_reply(shard, "reset_ok")
                if kind == "reset_ok":
                    break
                if kind == "error":
                    raise self._dead(shard, f"failed during resize:\n{payload}")

    # -- recovery ----------------------------------------------------------------
    def snapshot_shard_batches(self) -> List[Any]:
        """Every shard's partition as column batches (checkpoint capture).

        Broadcast before any reply is read, so the shards serialize
        concurrently; taken at a barrier this is a consistent cut in the
        exact wire format :meth:`recover` restores from.
        """
        for shard in range(self.num_shards):
            self._send(shard, "snapshot")
        return [self._recv(shard, "batch") for shard in range(self.num_shards)]

    def dead_shards(self) -> List[int]:
        """Shards whose worker process is not alive."""
        return [
            shard
            for shard, process in enumerate(self._processes)
            if not process.is_alive()
        ]

    def respawn(self, shards: Iterable[int]) -> None:
        """Replace the given shards' processes (and queues) with fresh ones.

        The old process is killed and joined; its queues are discarded
        (their contents are garbage from the aborted round) and replaced, so
        the respawned worker starts from an empty, unambiguous channel.
        """
        for shard in shards:
            process = self._processes[shard]
            if process.is_alive():  # pragma: no cover - respawning a survivor
                process.kill()
            process.join(timeout=10)
            for channel in (self._commands[shard], self._replies[shard]):
                try:
                    channel.close()
                    channel.cancel_join_thread()
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
            self._spawn(shard)

    def recover(self, shard_batches: Sequence[Any]) -> List[int]:
        """Roll every shard back to a checkpoint cut; returns respawned shards.

        Dead workers are respawned first, then every worker — survivor or
        respawn — receives ``reset`` with its shard's checkpoint batch.
        Survivors may still owe replies from the round the death aborted;
        because commands are served strictly in order, draining each reply
        queue until the distinctive ``reset_ok`` acknowledgement discards
        exactly that stale traffic and nothing else.
        """
        respawned = self.dead_shards()
        self.respawn(respawned)
        for shard in range(self.num_shards):
            self._send(shard, "reset", shard_batches[shard])
        for shard in range(self.num_shards):
            while True:
                kind, payload = self._next_reply(shard, "reset_ok")
                if kind == "reset_ok":
                    break
                if kind == "error":
                    raise self._dead(shard, f"failed during reset:\n{payload}")
        return respawned

    def stop(self) -> None:
        """Terminate every worker process (idempotent, safe after failures).

        Every teardown step is individually guarded: a worker that already
        died, a queue broken by that death, or a process that ignores
        ``stop`` must not keep the coordinator from reclaiming the rest.
        """
        if self._stopped:
            return
        self._stopped = True
        for shard, process in enumerate(self._processes):
            if process.is_alive():
                try:
                    self._commands[shard].put(("stop", None))
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
        for process in self._processes:
            try:
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.kill()
                    process.join(timeout=10)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for channel in (*self._commands, *self._replies):
            try:
                channel.close()
                channel.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
