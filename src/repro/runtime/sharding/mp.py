"""Multiprocessing shard backend: shard workers as OS processes.

Each shard runs a :class:`~repro.runtime.sharding.shard.ShardWorker` inside
its own process, driven by a small command protocol over ``multiprocessing``
queues.  Design constraints:

* **nothing codegenned crosses a process boundary** — every worker process
  compiles its own schedulers from the program's reactions;
* **element batches travel as parallel columns** (``(values, labels, tags,
  counts)`` lists, see :func:`~repro.multiset.columnar.to_column_batch`),
  keeping the wire format picklable on every supported interpreter
  regardless of how ``Element``'s frozen/slots dataclass pickles, with one
  shared list header per column instead of one tuple per element (the
  per-element quad format survives as :meth:`ShardWorker.to_quads` for
  direct worker use);
* **the fork start method is preferred** when the platform offers it, so the
  reaction objects reach workers by address-space inheritance; under spawn
  they are pickled as ordinary dataclasses.

The protocol is synchronous per command but *parallel per round*: the
coordinator broadcasts ``step`` to every worker before collecting any reply,
so local supersteps of different shards genuinely overlap — this is the
backend that turns the coordinator's superstep barrier into real multi-core
execution.
"""

from __future__ import annotations

import multiprocessing
import queue
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...gamma.reaction import Reaction
from ...multiset.columnar import (
    column_batch_copies,
    from_column_batch,
    to_column_batch,
)
from ...multiset.element import Element
from ...multiset.multiset import Multiset
from .quiescence import QuiescenceDetector
from .routing import RoutingTable, Transfer
from .shard import LocalReport, ShardWorker

__all__ = ["MultiprocessingBackend"]

#: Seconds a queue read may block before the backend declares the worker dead.
_REPLY_TIMEOUT = 300.0


def _shard_worker_main(
    shard: int,
    reactions: Sequence[Reaction],
    num_shards: int,
    seed: Optional[int],
    compiled: bool,
    superstep: bool,
    commands: "multiprocessing.Queue",
    replies: "multiprocessing.Queue",
) -> None:
    """Worker-process entry point: serve shard commands until ``stop``.

    Replies are ``(kind, payload)`` tuples; any exception is reported as an
    ``("error", traceback_text)`` reply before the process exits, so the
    coordinator fails loudly instead of deadlocking on a silent worker death.
    """
    try:
        worker = ShardWorker(
            shard, reactions, seed=seed, compiled=compiled, superstep=superstep
        )
        routing = RoutingTable(reactions, num_shards)
        while True:
            command, payload = commands.get()
            if command == "stop":
                worker.close()
                replies.put(("stopped", shard))
                return
            if command == "load" or command == "ingest":
                copies = worker.ingest(from_column_batch(payload))
                replies.put(("ok", copies))
            elif command == "step":
                max_supersteps, budget = payload
                report = worker.run_local(max_supersteps=max_supersteps, budget=budget)
                replies.put(
                    (
                        "report",
                        (
                            report.shard,
                            report.fired,
                            report.supersteps,
                            report.size,
                            report.stable,
                        ),
                    )
                )
            elif command == "labels":
                replies.put(("labels", worker.label_counts()))
            elif command == "extract_labels":
                pairs = worker.extract_labels(payload)
                replies.put(("batch", to_column_batch(pairs)))
            elif command == "extract_some":
                pairs = worker.extract_some(payload, routing)
                replies.put(("batch", to_column_batch(pairs)))
            elif command == "snapshot":
                replies.put(("batch", to_column_batch(worker.counts())))
            else:  # pragma: no cover - protocol bug
                raise ValueError(f"unknown shard command {command!r}")
    except BaseException:
        replies.put(("error", traceback.format_exc()))
        raise


class MultiprocessingBackend:
    """Shard backend running every worker in its own OS process."""

    name = "multiprocessing"

    def __init__(
        self,
        reactions: Sequence[Reaction],
        num_shards: int,
        routing: RoutingTable,
        seed: Optional[int] = None,
        compiled: bool = True,
        superstep: bool = True,
    ) -> None:
        """Spawn ``num_shards`` worker processes (not yet loaded).

        Workers are started eagerly so construction fails fast when the
        platform cannot create processes at all.
        """
        self.routing = routing
        self.num_shards = num_shards
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._commands = [context.Queue() for _ in range(num_shards)]
        self._replies = [context.Queue() for _ in range(num_shards)]
        self._processes = [
            context.Process(
                target=_shard_worker_main,
                args=(
                    shard,
                    tuple(reactions),
                    num_shards,
                    seed,
                    compiled,
                    superstep,
                    self._commands[shard],
                    self._replies[shard],
                ),
                daemon=True,
            )
            for shard in range(num_shards)
        ]
        for process in self._processes:
            process.start()
        self._stopped = False

    # -- plumbing ----------------------------------------------------------------
    def _send(self, shard: int, command: str, payload: Any = None) -> None:
        self._commands[shard].put((command, payload))

    def _recv(self, shard: int, expected: str) -> Any:
        try:
            kind, payload = self._replies[shard].get(timeout=_REPLY_TIMEOUT)
        except queue.Empty:
            alive = self._processes[shard].is_alive()
            self.stop()
            raise RuntimeError(
                f"shard {shard} worker unresponsive for {_REPLY_TIMEOUT:.0f}s "
                f"awaiting {expected!r} reply "
                f"(process {'alive' if alive else 'dead'})"
            ) from None
        if kind == "error":
            self.stop()
            raise RuntimeError(f"shard {shard} worker failed:\n{payload}")
        if kind != expected:  # pragma: no cover - protocol bug
            raise RuntimeError(
                f"shard {shard}: expected {expected!r} reply, got {kind!r}"
            )
        return payload

    # -- protocol ----------------------------------------------------------------
    def load(self, partitions: Sequence[Sequence[Tuple[Element, int]]]) -> None:
        """Ship the initial hash partitions to the workers (one batch each)."""
        for shard, batch in enumerate(partitions):
            self._send(shard, "load", to_column_batch(batch))
        for shard in range(self.num_shards):
            self._recv(shard, "ok")

    def superstep_all(
        self,
        max_supersteps: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> List[LocalReport]:
        """Run one local round on every shard concurrently; reports in shard order.

        The ``step`` command is broadcast to every worker before any reply is
        read, so the shards' local supersteps execute in parallel across
        cores.
        """
        for shard in range(self.num_shards):
            self._send(shard, "step", (max_supersteps, budget))
        reports = []
        for shard in range(self.num_shards):
            fields = self._recv(shard, "report")
            reports.append(LocalReport(*fields))
        return reports

    def label_counts(self) -> List[Dict[str, int]]:
        """Per-shard label histograms (migration-planner input)."""
        for shard in range(self.num_shards):
            self._send(shard, "labels")
        return [self._recv(shard, "labels") for shard in range(self.num_shards)]

    def execute_transfers(
        self, transfers: Sequence[Transfer], detector: QuiescenceDetector
    ) -> Tuple[int, int]:
        """Apply an exchange plan; returns ``(copies_moved, batches_sent)``.

        Extractions are broadcast first (all sources drain concurrently),
        then each batch is forwarded to its destination — the coordinator is
        the switch fabric; batches never travel worker-to-worker directly.
        """
        for transfer in transfers:
            self._send(transfer.source, "extract_labels", list(transfer.labels))
        moved = 0
        batches = 0
        deliveries: List[Tuple[int, int]] = []
        for transfer in transfers:
            batch = self._recv(transfer.source, "batch")
            copies = column_batch_copies(batch)
            if not copies:
                continue
            detector.migrations_started(copies)
            self._send(transfer.destination, "ingest", batch)
            deliveries.append((transfer.destination, copies))
            batches += 1
            moved += copies
        for destination, copies in deliveries:
            self._recv(destination, "ok")
            detector.migrations_delivered(destination, copies)
        return moved, batches

    def steal(
        self,
        donor: int,
        thief: int,
        limit: int,
        detector: QuiescenceDetector,
    ) -> int:
        """Move up to ``limit`` routable copies from ``donor`` to ``thief``."""
        self._send(donor, "extract_some", limit)
        batch = self._recv(donor, "batch")
        copies = column_batch_copies(batch)
        if not copies:
            return 0
        detector.migrations_started(copies)
        self._send(thief, "ingest", batch)
        self._recv(thief, "ok")
        detector.migrations_delivered(thief, copies)
        return copies

    def ingest_batches(
        self, partitions: Sequence[Sequence[Tuple[Element, int]]]
    ) -> List[int]:
        """Routed streaming injection: one queued batch per non-empty shard.

        Batches are broadcast before any reply is read (shards ingest
        concurrently); returns the copies ingested per shard.
        """
        targets = [
            shard for shard, batch in enumerate(partitions) if batch
        ]
        for shard in targets:
            self._send(shard, "ingest", to_column_batch(partitions[shard]))
        copies = [0] * self.num_shards
        for shard in targets:
            copies[shard] = self._recv(shard, "ok")
        return copies

    def snapshot_all(self) -> Multiset:
        """Non-destructive union of every shard's partition (mid-stream read).

        Safe between rounds: workers serve commands strictly in order, so a
        snapshot taken at a barrier observes a consistent global state.
        """
        for shard in range(self.num_shards):
            self._send(shard, "snapshot")
        snapshot = Multiset()
        for shard in range(self.num_shards):
            snapshot.add_counts(from_column_batch(self._recv(shard, "batch")))
        return snapshot

    def collect_final(self) -> Multiset:
        """Union of every shard's partition (the run's final multiset)."""
        return self.snapshot_all()

    def stop(self) -> None:
        """Terminate every worker process (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for shard, process in enumerate(self._processes):
            if process.is_alive():
                try:
                    self._commands[shard].put(("stop", None))
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=10)
        for queue in (*self._commands, *self._replies):
            queue.close()
            queue.cancel_join_thread()
