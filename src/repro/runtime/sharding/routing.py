"""Footprint-derived migration routing tables.

A shard can only fire matches whose consumed elements are all local.  For the
runtime to terminate correctly, elements that *could* participate in one
reaction's match must eventually be co-located.  The static information that
makes this cheap is the reaction footprint
(:func:`repro.gamma.scheduler.reaction_footprints`): the labels a reaction
can consume.  Labels that appear together in one footprint are grouped (a
union–find over footprints), every group gets a deterministic *home shard*
(stable hash of the group's canonical label), and the exchange phase routes
each element of a grouped label to its group's home.

Two consequences make the protocol simple:

* after a completed exchange, every potential match is intra-shard — a
  reaction's consumable labels all live on one shard — so "no cross-shard
  match exists" reduces to "the migration plan is empty";
* labels consumed by *no* reaction are inert: they can never be matched, so
  they are never migrated (they stay wherever firing produced them).

Reactions with variable labels (wildcards) can consume anything, collapsing
all labels into a single group; the table then routes every label to one
gather shard, which degrades gracefully to centralized execution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ...gamma.reaction import Reaction
from ...gamma.scheduler import reaction_footprints

__all__ = ["RoutingTable", "Transfer"]


def _stable_label_hash(label: str) -> int:
    """Process-independent 64-bit hash of a label string.

    Mirrors :meth:`Element.stable_hash`'s construction (blake2b digest) so
    home-shard choices are reproducible across nodes and restarts.
    """
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class Transfer:
    """One planned batched migration: move ``labels`` from ``source`` to ``destination``."""

    source: int
    destination: int
    labels: Tuple[str, ...]


class RoutingTable:
    """Per-label shard routing derived from a program's reaction footprints.

    Parameters
    ----------
    reactions:
        The program's reactions; their consumed-label footprints define the
        label groups.
    num_shards:
        Number of shards homes are distributed over (must be positive).

    A label's destination is stable under everything but the reaction set and
    the shard count, so independently constructed tables (one per worker
    process) always agree.
    """

    def __init__(self, reactions: Sequence[Reaction], num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        footprints = reaction_footprints(reactions)
        self.wildcard: bool = any(wild for _, wild in footprints)

        # Union-find over labels: labels co-consumed by one reaction merge.
        parent: Dict[str, str] = {}

        def find(label: str) -> str:
            """Union-find root of ``label`` with path compression."""
            root = label
            while parent[root] != root:
                root = parent[root]
            while parent[label] != root:
                parent[label], label = root, parent[label]
            return root

        for labels, _ in footprints:
            group = sorted(labels)
            for label in group:
                parent.setdefault(label, label)
            for a, b in zip(group, group[1:]):
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)

        groups: Dict[str, List[str]] = {}
        for label in parent:
            groups.setdefault(find(label), []).append(label)
        #: Canonical (lexicographically smallest) label of each group, mapped
        #: to the group's member labels — exposed for tests and diagnostics.
        self.groups: Dict[str, FrozenSet[str]] = {
            root: frozenset(members) for root, members in groups.items()
        }
        #: Union-find root of each grouped label (the group's canonical label).
        self._root: Dict[str, str] = {
            label: root for root, members in self.groups.items() for label in members
        }
        #: Elastic home overrides, keyed by group root (see :meth:`assign`).
        self._overrides: Dict[str, int] = {}
        # The gather shard used when a wildcard reaction makes every label
        # consumable: hash the empty string so the choice is stable and does
        # not privilege shard 0 for every program.
        self._gather: int = _stable_label_hash("") % num_shards
        self._home: Dict[str, int] = {
            label: _stable_label_hash(root) % num_shards
            for root, members in self.groups.items()
            for label in members
        }

    def destination(self, label: str) -> Optional[int]:
        """Home shard for ``label``, or ``None`` when the label is inert.

        Inert labels (consumed by no reaction) are never migrated.  With a
        wildcard reaction in the program every label routes to the single
        gather shard.  An elastic override (:meth:`assign`) takes precedence
        over the hashed home for the whole group.
        """
        if self.wildcard:
            return self._gather
        root = self._root.get(label)
        if root is None:
            return None
        override = self._overrides.get(root)
        if override is not None:
            return override
        return self._home[label]

    def assign(self, root: str, shard: int) -> None:
        """Override a label group's home shard (elastic group migration).

        ``root`` is a group's canonical label (a key of :attr:`groups`);
        every member label of the group now routes to ``shard``, so future
        exchange plans keep the group there.  Only the coordinator-side
        table needs overrides: the worker-side tables of the multiprocessing
        backend are used solely for routability checks, which are
        home-independent.
        """
        if root not in self.groups:
            raise ValueError(f"unknown label group root {root!r}")
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard {shard} out of range for {self.num_shards} shards"
            )
        self._overrides[root] = shard

    def rehome(self, num_shards: int) -> None:
        """Recompute every home for a resized shard set.

        Called when the session splits or merges shards: hashed homes are
        recomputed modulo the new count and every elastic override is
        dropped (the post-resize load distribution is new evidence — the
        policy re-derives any overrides it still wants).
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self._overrides.clear()
        self._gather = _stable_label_hash("") % num_shards
        self._home = {
            label: _stable_label_hash(root) % num_shards
            for root, members in self.groups.items()
            for label in members
        }

    def is_routable(self, label: str) -> bool:
        """True when ``label`` participates in some reaction's footprint."""
        return self.wildcard or label in self._home

    def migration_plan(
        self, shard_label_counts: Sequence[Mapping[str, int]]
    ) -> List[Transfer]:
        """Batched transfers that co-locate every routable label.

        ``shard_label_counts[s]`` is shard ``s``'s label histogram
        (:meth:`Multiset.label_counts`).  Returns one :class:`Transfer` per
        (source, destination) pair carrying every misplaced label between
        them; an empty plan certifies that no cross-shard match exists (every
        consumable label is fully co-located at its home shard).
        """
        moves: Dict[Tuple[int, int], List[str]] = {}
        for source, counts in enumerate(shard_label_counts):
            for label, count in counts.items():
                if count <= 0:
                    continue
                destination = self.destination(label)
                if destination is None or destination == source:
                    continue
                moves.setdefault((source, destination), []).append(label)
        return [
            Transfer(source=source, destination=destination, labels=tuple(labels))
            for (source, destination), labels in sorted(moves.items())
        ]
