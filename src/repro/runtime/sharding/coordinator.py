"""Shard coordinator: the superstep-barrier protocol over N shard workers.

The coordinator owns the global control loop; shards own all element state.
One *round* of the protocol:

1. **local supersteps** — every shard fires maximal disjoint local match
   batches through its compiled scheduler until locally stable (or a cap);
   the multiprocessing backend overlaps the shards on real cores;
2. **rebalancing** — if the round made progress but some shards starved
   while others are heavily loaded, the starving shards *steal* a batch of
   routable elements from the most-loaded donor (load metrics come from the
   shard reports; transfers are batched, never one message per element);
3. **exchange** — once no shard can fire locally, the routing table derived
   from reaction footprints plans batched migrations that co-locate every
   consumable label at its home shard, enabling cross-shard matches;
4. **termination** — the two-phase quiescence check: all shards locally
   stable, no migration in flight, and an empty exchange plan (which
   certifies that no cross-shard match exists).

A batch run is one :class:`ShardSession` driven to the drained verdict; the
streaming runtime (:mod:`repro.runtime.streaming`) holds a session open
instead, alternating routed injections (:meth:`ShardSession.inject` routes
each epoch batch to its elements' stable-hash home shards) with
:meth:`ShardSession.drive` rounds that stop at *idle* — stable but stream
open — rather than terminating.

Determinism: given a seed (or none), the protocol makes identical decisions
under both backends — worker scheduling uses per-shard derived seeds and the
coordinator's policy (donor choice, batch sizes, plan order) is pure — so
in-process and multiprocessing runs of the same program agree firing-for-
firing, which the differential tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from ...gamma.engine import NonTerminationError
from ...gamma.program import GammaProgram
from ...multiset.columnar import from_column_batch, to_column_batch
from ...multiset.element import Element
from ...multiset.multiset import Multiset
from ...multiset.partition import partition_counts, partition_pairs
from ..distributed import DistributedRunResult
from ..elasticity import ElasticityPolicy
from ..recovery import INITIAL_EPOCH, RecoveryManager, WorkerDied
from .inprocess import InProcessBackend
from .mp import MultiprocessingBackend
from .quiescence import RUNNING, QuiescenceDetector
from .routing import RoutingTable, Transfer

__all__ = ["ShardCoordinator", "ShardSession", "ShardedRunResult", "SHARD_BACKENDS"]

#: Backend names accepted by :class:`ShardCoordinator` (and, with
#: ``"legacy"``, by :class:`~repro.runtime.distributed.DistributedGammaRuntime`).
SHARD_BACKENDS = ("inprocess", "multiprocessing", "network")

_BACKENDS = {
    "inprocess": InProcessBackend,
    "multiprocessing": MultiprocessingBackend,
}


def _backend_class(name: str):
    """Resolve a backend name to its class.

    The network backend is registered lazily: :mod:`repro.runtime.net`
    imports this package's leaf modules, so a module-level import here would
    cycle through the package ``__init__``.
    """
    if name not in _BACKENDS and name == "network":
        from ..net.backend import NetworkBackend

        _BACKENDS[name] = NetworkBackend
    return _BACKENDS[name]


@dataclass
class ShardedRunResult(DistributedRunResult):
    """Outcome of a sharded execution.

    Extends :class:`~repro.runtime.distributed.DistributedRunResult` (so the
    two runtimes report through one interface; ``steps`` counts barrier
    *rounds* here) with the sharded protocol's own accounting: local
    supersteps, exchange and steal rounds, and the final per-shard sizes.
    """

    backend: str = "inprocess"
    rounds: int = 0
    supersteps: int = 0
    exchanges: int = 0
    steals: int = 0
    final_shard_sizes: List[int] = field(default_factory=list)
    recoveries: int = 0
    replayed: int = 0
    scale_events: int = 0
    group_migrations: int = 0
    injected: int = 0
    wire_bytes: int = 0


class ShardCoordinator:
    """Partition a Gamma run across N shard workers and drive it to quiescence.

    Parameters
    ----------
    program:
        The Gamma program to execute.
    num_shards:
        Shard count; the initial multiset is hash-partitioned over the
        shards by :meth:`Element.stable_hash`.
    backend:
        ``"inprocess"`` (default), ``"multiprocessing"``, or ``"network"``
        (shard servers behind framed loopback sockets) — see
        :data:`SHARD_BACKENDS`.
    seed:
        Optional run seed; forwarded to the shards' schedulers through
        per-shard derived seeds.  ``None`` selects fully deterministic
        declaration-order scheduling.
    max_rounds:
        Barrier-round budget; exceeded budgets raise
        :class:`~repro.gamma.engine.NonTerminationError`.
    max_supersteps:
        Global budget on shard supersteps (summed over shards), the
        divergence guard for programs that always have local matches.
    superstep_budget:
        Cap on firings per local superstep (``None`` = maximal batches).
    round_supersteps:
        Local supersteps each shard may fire per barrier round (default 1 —
        lockstep supersteps, which is what lets the load-metric rebalancing
        observe starvation early; ``None`` runs every shard to its local
        fixpoint per round, minimizing barriers at the cost of rebalancing
        opportunities).
    compiled:
        Compiled schedulers (default) or the interpreted baseline.
    superstep:
        ``True`` fires local supersteps through the compiled collectors;
        ``False`` fires one match at a time per shard round.
    work_stealing:
        Enable load-driven rebalancing of starving shards (default on).
    steal_threshold:
        A starving shard steals only from a donor holding more than
        ``steal_threshold`` times its own load (plus one).
    recovery:
        Optional :class:`~repro.runtime.recovery.RecoveryManager`.  When
        set, the backend runs *supervised*: a dead worker triggers a
        rollback to the last checkpoint plus WAL replay instead of a
        ``RuntimeError``, and the session takes an initial checkpoint at
        load so there is always a cut to roll back to.
    checkpoint_rounds:
        With ``recovery``, additionally checkpoint every N barrier rounds
        during :meth:`ShardSession.drive` (batch-mode checkpointing; the
        streaming runtime checkpoints at epoch boundaries instead).
    elasticity:
        Optional :class:`~repro.runtime.elasticity.ElasticityPolicy`.  When
        set, the session watches per-round load pressure and — at superstep
        barriers — migrates hot label groups between shards and splits or
        merges the shard set when the policy's hysteresis thresholds are
        crossed (see :mod:`repro.runtime.elasticity`).  ``num_shards``
        becomes the *starting* shard count.
    """

    def __init__(
        self,
        program: GammaProgram,
        num_shards: int,
        backend: str = "inprocess",
        seed: Optional[int] = None,
        max_rounds: int = 1_000_000,
        max_supersteps: int = 1_000_000,
        superstep_budget: Optional[int] = None,
        round_supersteps: Optional[int] = 1,
        compiled: bool = True,
        superstep: bool = True,
        work_stealing: bool = True,
        steal_threshold: float = 2.0,
        recovery: Optional[RecoveryManager] = None,
        checkpoint_rounds: Optional[int] = None,
        elasticity: Optional[ElasticityPolicy] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard backend {backend!r}; expected one of {SHARD_BACKENDS}"
            )
        if max_rounds <= 0 or max_supersteps <= 0:
            raise ValueError("round/superstep budgets must be positive")
        if round_supersteps is not None and round_supersteps <= 0:
            raise ValueError("round_supersteps must be positive (or None)")
        if steal_threshold < 1.0:
            raise ValueError("steal_threshold must be >= 1.0")
        if checkpoint_rounds is not None:
            if recovery is None:
                raise ValueError("checkpoint_rounds requires a RecoveryManager")
            if checkpoint_rounds <= 0:
                raise ValueError("checkpoint_rounds must be positive (or None)")
        self.program = program
        self.num_shards = num_shards
        self.backend_name = backend
        self.seed = seed
        self.max_rounds = max_rounds
        self.max_supersteps = max_supersteps
        self.superstep_budget = superstep_budget
        self.round_supersteps = round_supersteps
        self.compiled = compiled
        self.superstep = superstep
        self.work_stealing = work_stealing
        self.steal_threshold = steal_threshold
        self.recovery = recovery
        self.checkpoint_rounds = checkpoint_rounds
        self.elasticity = elasticity
        self._initial_shards = num_shards
        self.routing = RoutingTable(program.reactions, num_shards)

    # -- execution ----------------------------------------------------------------
    def run(self, initial: Optional[Multiset] = None) -> ShardedRunResult:
        """Execute the program to global quiescence; returns the run result.

        ``initial`` defaults to the program's bundled initial multiset.
        Raises :class:`NonTerminationError` when a budget is exhausted and
        ``ValueError`` when no initial multiset is available.  Equivalent to
        driving a :meth:`start` session straight to the drained verdict.
        """
        session = self.start(initial)
        try:
            session.drive()
            return session.result()
        finally:
            session.close()

    def start(self, initial: Optional[Multiset] = None) -> "ShardSession":
        """Spin up the backend, load the hash partitions, return the live session.

        The entry point of the streaming runtime: the returned
        :class:`ShardSession` accepts routed injections between
        :meth:`ShardSession.drive` calls.  The caller owns the session and
        must :meth:`ShardSession.close` it (``run`` does this internally).
        """
        source = initial if initial is not None else self.program.initial
        if source is None:
            raise ValueError("an initial multiset is required")
        if self.elasticity is not None:
            # Rearm the policy and restore the starting topology, so one
            # coordinator drives consecutive elastic runs identically.
            self.elasticity.reset()
            self.num_shards = self._initial_shards
            self.routing.rehome(self._initial_shards)
        backend = _backend_class(self.backend_name)(
            self.program.reactions,
            self.num_shards,
            self.routing,
            seed=self.seed,
            compiled=self.compiled,
            superstep=self.superstep,
        )
        if self.recovery is not None:
            backend.supervised = True
        session = ShardSession(self, backend)
        session._load(source)
        return session

    # -- rebalancing -------------------------------------------------------------
    def _rebalance(self, backend, reports, detector) -> tuple:
        """Steal routable elements for shards that starved this round.

        Policy (pure, deterministic): each shard that fired nothing pulls
        from the currently most-loaded shard, provided the donor holds more
        than ``steal_threshold * (thief_size + 1)`` copies; the batch is a
        quarter of the load gap (at least one copy).  Returns
        ``(copies_moved, batches)``.
        """
        sizes = {report.shard: report.size for report in reports}
        starving = [report.shard for report in reports if report.fired == 0]
        moved_total = 0
        batches = 0
        for thief in starving:
            donor = max(
                (shard for shard in sizes if shard != thief),
                key=lambda shard: (sizes[shard], -shard),
                default=None,
            )
            if donor is None:
                break
            if sizes[donor] <= self.steal_threshold * (sizes[thief] + 1):
                continue
            batch = max(1, (sizes[donor] - sizes[thief]) // 4)
            moved = backend.steal(donor, thief, batch, detector)
            if not moved:
                continue
            sizes[donor] -= moved
            sizes[thief] += moved
            moved_total += moved
            batches += 1
        return moved_total, batches


class ShardSession:
    """One live sharded run: loaded shards, detector state, protocol counters.

    Created by :meth:`ShardCoordinator.start`.  A batch run drives the
    session once (:meth:`drive` to the drained verdict) and reads
    :meth:`result`; a streaming run interleaves :meth:`inject` (routed
    element admission) with :meth:`drive` rounds that return at the *idle*
    verdict while the stream is open, and takes consistent mid-stream
    :meth:`snapshot` reads at the barriers.  Budgets (rounds, supersteps)
    span the whole session, batch or streamed.
    """

    def __init__(self, coordinator: ShardCoordinator, backend) -> None:
        self.coordinator = coordinator
        self.backend = backend
        self.recovery = coordinator.recovery
        self.detector = QuiescenceDetector(coordinator.num_shards)
        self.rounds = 0
        self.firings = 0
        self.migrations = 0
        self.messages = 0
        self.supersteps = 0
        self.exchanges = 0
        self.steals = 0
        self.injected = 0
        self.recoveries = 0
        self.replayed = 0
        self.scale_events = 0
        self.group_migrations = 0
        self.recovery_seconds: List[float] = []
        self.per_shard_firings = [0] * coordinator.num_shards
        self._rounds_since_checkpoint = 0
        self._last_checkpoint_epoch = INITIAL_EPOCH
        self._last_injected_epoch = INITIAL_EPOCH
        self._final_sizes: List[int] = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------
    def _load(self, source: Multiset) -> None:
        """Ship the initial hash partitions to the shards (one batch each).

        With recovery enabled, an initial checkpoint is taken right after the
        load — the run is never without a cut to roll back to.
        """
        self.backend.load(partition_counts(source, self.coordinator.num_shards))
        self.messages += self.coordinator.num_shards
        if self.recovery is not None:
            self.checkpoint(epoch=INITIAL_EPOCH)

    def close(self) -> None:
        """Stop the backend workers (idempotent)."""
        if not self._closed:
            self._closed = True
            self.backend.stop()

    # -- streaming ----------------------------------------------------------------
    def open_stream(self) -> None:
        """Mark the element stream open: :meth:`drive` stops at *idle*."""
        self.detector.open_stream()

    def close_stream(self) -> None:
        """Mark the stream exhausted: :meth:`drive` runs to *drained*."""
        self.detector.close_stream()

    def inject(
        self, pairs: Sequence[Tuple[Element, int]], epoch: Optional[int] = None
    ) -> int:
        """Admit streamed elements, routed to their stable-hash home shards.

        Each ``(element, count)`` pair is shipped to ``home_of(element)`` —
        the same placement the initial load used, so routing stays uniform
        across the element's whole lifetime.  Touched shards have their
        phase-1 stability invalidated (the next :meth:`drive` re-probes
        them); untouched shards stay parked.  Returns copies admitted.

        With recovery enabled the batch is appended to the write-ahead log
        *before* any shard sees it — durable before visible — tagged with
        ``epoch`` (the streaming runtime passes its pump index; the default
        is the first epoch after the last checkpoint).  If a worker dies
        during the admission, the rollback's WAL replay delivers this very
        batch, so the call still returns the admitted copies.
        """
        pairs = list(pairs)
        record = None
        if self.recovery is not None:
            if epoch is None:
                epoch = self._last_checkpoint_epoch + 1
            self._last_injected_epoch = max(self._last_injected_epoch, epoch)
            record = self.recovery.log_injection(epoch, pairs)
        batches = partition_pairs(pairs, self.coordinator.num_shards)
        try:
            copies = self.backend.ingest_batches(batches)
        except WorkerDied as failure:
            checkpoint_epoch = self._recover_from(failure)
            if record is not None and record.epoch > checkpoint_epoch:
                # The replay already admitted this batch (and invalidated the
                # touched shards' phase-1 verdicts); don't deliver it twice.
                admitted = record.copies()
                self.injected += admitted
                return admitted
            copies = self._guarded(self.backend.ingest_batches, batches)
        for shard, count in enumerate(copies):
            self.detector.injected(shard, count)
        self.messages += sum(1 for batch in batches if batch)
        admitted = sum(copies)
        self.injected += admitted
        return admitted

    def snapshot(self) -> Multiset:
        """Consistent global multiset at the current barrier (non-destructive)."""
        self.messages += self.coordinator.num_shards
        return self._guarded(self.backend.snapshot_all)

    # -- recovery -----------------------------------------------------------------
    def checkpoint(self, epoch: Optional[int] = None) -> int:
        """Capture a consistent cut of every shard into the checkpoint store.

        Call only at a barrier (between :meth:`drive` rounds / after a
        returned verdict) — that is what makes the cut consistent.  ``epoch``
        tags the cut for WAL truncation and replay selection; the streaming
        runtime passes its pump index, batch mode defaults to the current
        round count.  Returns the epoch checkpointed.
        """
        if self.recovery is None:
            raise RuntimeError("checkpoint() requires a RecoveryManager")
        if epoch is None:
            epoch = max(self.rounds, self._last_checkpoint_epoch)
        batches = self._guarded(self.backend.snapshot_shard_batches)
        self.messages += self.coordinator.num_shards
        self.recovery.checkpoint(
            epoch,
            batches,
            counters={
                "rounds": self.rounds,
                "firings": self.firings,
                "supersteps": self.supersteps,
                "injected": self.injected,
                "migrations": self.migrations,
            },
        )
        self._last_checkpoint_epoch = epoch
        self._rounds_since_checkpoint = 0
        return epoch

    def _recover_from(self, failure: WorkerDied) -> int:
        """Roll back to the latest checkpoint and replay logged admissions.

        Restores *every* shard (not just the dead one — elements migrated
        since the checkpoint make a single-shard restore inconsistent),
        resets the quiescence detector, then re-injects each WAL record
        newer than the checkpoint in sequence order.  A worker dying during
        the recovery itself restarts it, bounded by the manager's
        ``max_recoveries`` budget.  Returns the checkpoint epoch restored.

        Session counters are *not* rewound: they count work performed,
        including work redone after a crash (rewinding them would corrupt
        the streaming runtime's per-epoch deltas and the round budgets).
        """
        if self.recovery is None:
            raise failure
        began = perf_counter()
        while True:
            self.recovery.note_failure(failure)
            checkpoint, records = self.recovery.recovery_plan()
            shard_batches = list(checkpoint.shard_batches)
            if len(shard_batches) != self.coordinator.num_shards:
                # The latest checkpoint predates an elastic resize: decode it
                # and repartition over the current topology before restoring.
                pairs: List[Tuple[Element, int]] = []
                for batch in shard_batches:
                    pairs.extend(from_column_batch(batch))
                shard_batches = [
                    to_column_batch(part)
                    for part in partition_pairs(pairs, self.coordinator.num_shards)
                ]
            try:
                self.backend.recover(shard_batches)
                self.messages += self.coordinator.num_shards
                self.detector.rollback()
                for record in records:
                    batches = partition_pairs(
                        record.pairs(), self.coordinator.num_shards
                    )
                    copies = self.backend.ingest_batches(batches)
                    for shard, count in enumerate(copies):
                        self.detector.injected(shard, count)
                    self.messages += sum(1 for batch in batches if batch)
                    self.replayed += record.copies()
                break
            except WorkerDied as again:
                failure = again
        self.recoveries += 1
        self.recovery_seconds.append(perf_counter() - began)
        return checkpoint.epoch

    def _guarded(self, operation, *args):
        """Run a backend call, recovering and retrying on worker death.

        Without a recovery manager the backend never raises
        :class:`WorkerDied` (it tears down and raises ``RuntimeError``), so
        the except branch only engages under supervision.
        """
        while True:
            try:
                return operation(*args)
            except WorkerDied as failure:
                self._recover_from(failure)

    # -- the barrier loop ---------------------------------------------------------
    def drive(self, max_new_rounds: Optional[int] = None) -> str:
        """Run barrier rounds until the detector's verdict leaves ``RUNNING``.

        Returns :data:`~repro.runtime.sharding.quiescence.DRAINED` when the
        run may terminate, or
        :data:`~repro.runtime.sharding.quiescence.IDLE` when every shard is
        stable and nothing is in flight but the stream is still open (the
        streaming runtime then waits for input and injects the next epoch).
        ``max_new_rounds`` caps the barrier rounds of *this* call (the
        streaming runtime's per-epoch budget): when the cap is hit with work
        remaining, the call returns
        :data:`~repro.runtime.sharding.quiescence.RUNNING` and a later drive
        continues from the same state.  Raises :class:`NonTerminationError`
        on exhausted session-wide budgets.

        Under supervision, a worker death anywhere in a round triggers
        rollback recovery (see :meth:`_recover_from`) and the loop resumes;
        with ``checkpoint_rounds`` set on the coordinator, a fresh cut is
        captured every N rounds so the rollback never rewinds far.
        """
        coordinator = self.coordinator
        round_limit = None if max_new_rounds is None else self.rounds + max_new_rounds
        while True:
            if round_limit is not None and self.rounds >= round_limit:
                return RUNNING
            if (
                self.recovery is not None
                and coordinator.checkpoint_rounds is not None
                and self._rounds_since_checkpoint >= coordinator.checkpoint_rounds
            ):
                self.checkpoint()
            try:
                verdict = self._drive_round()
            except WorkerDied as failure:
                self._recover_from(failure)
                continue
            if verdict is not None:
                return verdict

    def _drive_round(self) -> Optional[str]:
        """One barrier round; returns a non-``RUNNING`` verdict or ``None``."""
        coordinator = self.coordinator
        detector = self.detector
        backend = self.backend
        if self.rounds >= coordinator.max_rounds:
            raise NonTerminationError(
                f"sharded run exceeded {coordinator.max_rounds} rounds "
                f"on {coordinator.program.name!r}"
            )
        remaining = coordinator.max_supersteps - self.supersteps
        if remaining <= 0:
            raise NonTerminationError(
                f"sharded run exceeded {coordinator.max_supersteps} supersteps "
                f"on {coordinator.program.name!r}"
            )
        round_cap = (
            remaining
            if coordinator.round_supersteps is None
            else min(coordinator.round_supersteps, remaining)
        )
        reports = backend.superstep_all(
            max_supersteps=round_cap, budget=coordinator.superstep_budget
        )
        self.messages += coordinator.num_shards
        self.rounds += 1
        self._rounds_since_checkpoint += 1
        fired = 0
        for report in reports:
            fired += report.fired
            self.per_shard_firings[report.shard] += report.fired
            self.supersteps += report.supersteps
            detector.record_local(report.shard, report.stable)
        self.firings += fired

        if fired:
            if coordinator.work_stealing:
                moved, batches = coordinator._rebalance(backend, reports, detector)
                self.migrations += moved
                self.messages += batches
                self.steals += batches
            if coordinator.elasticity is not None:
                self._elastic_step(reports)
            return None

        # Every shard is locally stable: plan the exchange.
        histograms = backend.label_counts()
        self.messages += coordinator.num_shards
        plan = coordinator.routing.migration_plan(histograms)
        verdict = detector.verdict(plan_empty=not plan)
        if verdict != RUNNING:
            # The quiescence-round histograms are the current global
            # distribution — nothing mutates until the next injection.
            self._final_sizes = [sum(c.values()) for c in histograms]
            return verdict
        moved, batches = backend.execute_transfers(plan, detector)
        if not moved:
            raise RuntimeError(
                "exchange plan moved nothing while matches may remain "
                "(sharding protocol invariant violated)"
            )
        self.migrations += moved
        self.messages += batches
        self.exchanges += 1
        return None

    # -- elasticity ---------------------------------------------------------------
    def _elastic_step(self, reports) -> None:
        """Consult the elasticity policy at this barrier and apply its plan.

        Cheap path first: the per-shard sizes already travel with the local
        reports, so :meth:`ElasticityPolicy.pressure` costs no messages.
        Only under sustained pressure does the session fetch label
        histograms and ask for a plan — a resize (:meth:`_resize`) or a set
        of group re-homings executed through the ordinary exchange
        machinery (the quiescence detector accounts the moves like any
        other migration, so stability bookkeeping stays sound).
        """
        coordinator = self.coordinator
        policy = coordinator.elasticity
        sizes = [0] * coordinator.num_shards
        for report in reports:
            sizes[report.shard] = report.size
        if not policy.pressure(sizes):
            return
        histograms = self._guarded(self.backend.label_counts)
        self.messages += coordinator.num_shards
        plan = policy.plan(self.rounds, sizes, histograms, coordinator.routing)
        if plan is None:
            return
        if plan.new_shards is not None:
            self._resize(plan.new_shards)
            return
        transfers: List[Transfer] = []
        for root, destination in plan.moves:
            coordinator.routing.assign(root, destination)
            members = coordinator.routing.groups[root]
            for source, counts in enumerate(histograms):
                if source == destination:
                    continue
                labels = tuple(
                    sorted(label for label in members if counts.get(label, 0) > 0)
                )
                if labels:
                    transfers.append(
                        Transfer(source=source, destination=destination, labels=labels)
                    )
        if transfers:
            moved, batches = self._guarded(
                self.backend.execute_transfers, transfers, self.detector
            )
            self.migrations += moved
            self.messages += batches
        self.group_migrations += len(plan.moves)

    def _resize(self, new_shards: int) -> None:
        """Scale the shard set to ``new_shards`` as a planned, loss-free rebuild.

        Reuses the recovery wire format end to end: snapshot every shard as
        column batches at this barrier (a consistent cut — no firing or
        migration is in flight), repartition the union over the new count,
        and hand the backend the new partitions (the multiprocessing backend
        spawns or retires worker processes; in-process rebuilds its worker
        list).  The routing table is re-homed, the quiescence detector is
        rebuilt at the new width (stream state preserved), and — with
        recovery attached — a fresh checkpoint is taken immediately so a
        later rollback never restores a stale topology.
        """
        coordinator = self.coordinator
        batches = self._guarded(self.backend.snapshot_shard_batches)
        self.messages += coordinator.num_shards
        pairs: List[Tuple[Element, int]] = []
        for batch in batches:
            pairs.extend(from_column_batch(batch))
        partitions = partition_pairs(pairs, new_shards)
        while True:
            try:
                self.backend.resize(new_shards, partitions)
                break
            except WorkerDied as failure:
                if self.recovery is None:  # pragma: no cover - unsupervised resize
                    raise
                # Bounded by the recovery budget; resize() respawns dead
                # workers first, so the retry is idempotent.
                self.recovery.note_failure(failure)
        self.messages += new_shards
        coordinator.num_shards = new_shards
        coordinator.routing.rehome(new_shards)
        stream_open = self.detector.stream_open
        self.detector = QuiescenceDetector(new_shards)
        if stream_open:
            self.detector.open_stream()
        folded = [0] * new_shards
        for shard, fired in enumerate(self.per_shard_firings):
            folded[shard % new_shards] += fired
        self.per_shard_firings = folded
        self.scale_events += 1
        if self.recovery is not None:
            if stream_open:
                # Streaming epochs are pump indexes: reusing the round-based
                # default here would jump the WAL truncation point past
                # records that may still need replay.
                epoch = max(self._last_checkpoint_epoch, self._last_injected_epoch)
                self.checkpoint(epoch=epoch)
            else:
                self.checkpoint()

    # -- results ------------------------------------------------------------------
    def result(self) -> ShardedRunResult:
        """Collect the final multiset and wrap the session's accounting."""
        final = self._guarded(self.backend.collect_final)
        self.messages += self.coordinator.num_shards
        return ShardedRunResult(
            final=final,
            steps=self.rounds,
            firings=self.firings,
            migrations=self.migrations,
            messages=self.messages,
            per_partition_firings=list(self.per_shard_firings),
            backend=self.coordinator.backend_name,
            rounds=self.rounds,
            supersteps=self.supersteps,
            exchanges=self.exchanges,
            steals=self.steals,
            final_shard_sizes=list(self._final_sizes),
            recoveries=self.recoveries,
            replayed=self.replayed,
            scale_events=self.scale_events,
            group_migrations=self.group_migrations,
            injected=self.injected,
            wire_bytes=getattr(self.backend, "wire_bytes", 0),
        )
