"""Shard coordinator: the superstep-barrier protocol over N shard workers.

The coordinator owns the global control loop; shards own all element state.
One *round* of the protocol:

1. **local supersteps** — every shard fires maximal disjoint local match
   batches through its compiled scheduler until locally stable (or a cap);
   the multiprocessing backend overlaps the shards on real cores;
2. **rebalancing** — if the round made progress but some shards starved
   while others are heavily loaded, the starving shards *steal* a batch of
   routable elements from the most-loaded donor (load metrics come from the
   shard reports; transfers are batched, never one message per element);
3. **exchange** — once no shard can fire locally, the routing table derived
   from reaction footprints plans batched migrations that co-locate every
   consumable label at its home shard, enabling cross-shard matches;
4. **termination** — the two-phase quiescence check: all shards locally
   stable, no migration in flight, and an empty exchange plan (which
   certifies that no cross-shard match exists).

Determinism: given a seed (or none), the protocol makes identical decisions
under both backends — worker scheduling uses per-shard derived seeds and the
coordinator's policy (donor choice, batch sizes, plan order) is pure — so
in-process and multiprocessing runs of the same program agree firing-for-
firing, which the differential tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ...gamma.engine import NonTerminationError
from ...gamma.program import GammaProgram
from ...multiset.multiset import Multiset
from ...multiset.partition import partition_counts
from ..distributed import DistributedRunResult
from .inprocess import InProcessBackend
from .mp import MultiprocessingBackend
from .quiescence import QuiescenceDetector
from .routing import RoutingTable

__all__ = ["ShardCoordinator", "ShardedRunResult", "SHARD_BACKENDS"]

#: Backend names accepted by :class:`ShardCoordinator` (and, with
#: ``"legacy"``, by :class:`~repro.runtime.distributed.DistributedGammaRuntime`).
SHARD_BACKENDS = ("inprocess", "multiprocessing")

_BACKENDS = {
    "inprocess": InProcessBackend,
    "multiprocessing": MultiprocessingBackend,
}


@dataclass
class ShardedRunResult(DistributedRunResult):
    """Outcome of a sharded execution.

    Extends :class:`~repro.runtime.distributed.DistributedRunResult` (so the
    two runtimes report through one interface; ``steps`` counts barrier
    *rounds* here) with the sharded protocol's own accounting: local
    supersteps, exchange and steal rounds, and the final per-shard sizes.
    """

    backend: str = "inprocess"
    rounds: int = 0
    supersteps: int = 0
    exchanges: int = 0
    steals: int = 0
    final_shard_sizes: List[int] = field(default_factory=list)


class ShardCoordinator:
    """Partition a Gamma run across N shard workers and drive it to quiescence.

    Parameters
    ----------
    program:
        The Gamma program to execute.
    num_shards:
        Shard count; the initial multiset is hash-partitioned over the
        shards by :meth:`Element.stable_hash`.
    backend:
        ``"inprocess"`` (default) or ``"multiprocessing"`` — see
        :data:`SHARD_BACKENDS`.
    seed:
        Optional run seed; forwarded to the shards' schedulers through
        per-shard derived seeds.  ``None`` selects fully deterministic
        declaration-order scheduling.
    max_rounds:
        Barrier-round budget; exceeded budgets raise
        :class:`~repro.gamma.engine.NonTerminationError`.
    max_supersteps:
        Global budget on shard supersteps (summed over shards), the
        divergence guard for programs that always have local matches.
    superstep_budget:
        Cap on firings per local superstep (``None`` = maximal batches).
    round_supersteps:
        Local supersteps each shard may fire per barrier round (default 1 —
        lockstep supersteps, which is what lets the load-metric rebalancing
        observe starvation early; ``None`` runs every shard to its local
        fixpoint per round, minimizing barriers at the cost of rebalancing
        opportunities).
    compiled:
        Compiled schedulers (default) or the interpreted baseline.
    superstep:
        ``True`` fires local supersteps through the compiled collectors;
        ``False`` fires one match at a time per shard round.
    work_stealing:
        Enable load-driven rebalancing of starving shards (default on).
    steal_threshold:
        A starving shard steals only from a donor holding more than
        ``steal_threshold`` times its own load (plus one).
    """

    def __init__(
        self,
        program: GammaProgram,
        num_shards: int,
        backend: str = "inprocess",
        seed: Optional[int] = None,
        max_rounds: int = 1_000_000,
        max_supersteps: int = 1_000_000,
        superstep_budget: Optional[int] = None,
        round_supersteps: Optional[int] = 1,
        compiled: bool = True,
        superstep: bool = True,
        work_stealing: bool = True,
        steal_threshold: float = 2.0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown shard backend {backend!r}; expected one of {SHARD_BACKENDS}"
            )
        if max_rounds <= 0 or max_supersteps <= 0:
            raise ValueError("round/superstep budgets must be positive")
        if round_supersteps is not None and round_supersteps <= 0:
            raise ValueError("round_supersteps must be positive (or None)")
        if steal_threshold < 1.0:
            raise ValueError("steal_threshold must be >= 1.0")
        self.program = program
        self.num_shards = num_shards
        self.backend_name = backend
        self.seed = seed
        self.max_rounds = max_rounds
        self.max_supersteps = max_supersteps
        self.superstep_budget = superstep_budget
        self.round_supersteps = round_supersteps
        self.compiled = compiled
        self.superstep = superstep
        self.work_stealing = work_stealing
        self.steal_threshold = steal_threshold
        self.routing = RoutingTable(program.reactions, num_shards)

    # -- execution ----------------------------------------------------------------
    def run(self, initial: Optional[Multiset] = None) -> ShardedRunResult:
        """Execute the program to global quiescence; returns the run result.

        ``initial`` defaults to the program's bundled initial multiset.
        Raises :class:`NonTerminationError` when a budget is exhausted and
        ``ValueError`` when no initial multiset is available.
        """
        source = initial if initial is not None else self.program.initial
        if source is None:
            raise ValueError("an initial multiset is required")

        backend = _BACKENDS[self.backend_name](
            self.program.reactions,
            self.num_shards,
            self.routing,
            seed=self.seed,
            compiled=self.compiled,
            superstep=self.superstep,
        )
        detector = QuiescenceDetector(self.num_shards)
        rounds = 0
        firings = 0
        migrations = 0
        messages = 0
        supersteps = 0
        exchanges = 0
        steals = 0
        per_shard_firings = [0] * self.num_shards
        try:
            backend.load(partition_counts(source, self.num_shards))
            messages += self.num_shards

            while True:
                if rounds >= self.max_rounds:
                    raise NonTerminationError(
                        f"sharded run exceeded {self.max_rounds} rounds "
                        f"on {self.program.name!r}"
                    )
                remaining = self.max_supersteps - supersteps
                if remaining <= 0:
                    raise NonTerminationError(
                        f"sharded run exceeded {self.max_supersteps} supersteps "
                        f"on {self.program.name!r}"
                    )
                round_cap = (
                    remaining
                    if self.round_supersteps is None
                    else min(self.round_supersteps, remaining)
                )
                reports = backend.superstep_all(
                    max_supersteps=round_cap, budget=self.superstep_budget
                )
                messages += self.num_shards
                rounds += 1
                fired = 0
                for report in reports:
                    fired += report.fired
                    per_shard_firings[report.shard] += report.fired
                    supersteps += report.supersteps
                    detector.record_local(report.shard, report.stable)
                firings += fired

                if fired:
                    if self.work_stealing:
                        moved, batches = self._rebalance(backend, reports, detector)
                        migrations += moved
                        messages += batches
                        steals += batches
                    continue

                # Every shard is locally stable: plan the exchange.
                histograms = backend.label_counts()
                messages += self.num_shards
                plan = self.routing.migration_plan(histograms)
                if detector.check(plan_empty=not plan):
                    # The quiescence-round histograms are the final
                    # distribution — no further mutation happens.
                    final_sizes = [sum(c.values()) for c in histograms]
                    break
                moved, batches = backend.execute_transfers(plan, detector)
                if not moved:
                    raise RuntimeError(
                        "exchange plan moved nothing while matches may remain "
                        "(sharding protocol invariant violated)"
                    )
                migrations += moved
                messages += batches
                exchanges += 1

            final = backend.collect_final()
            messages += self.num_shards
            return ShardedRunResult(
                final=final,
                steps=rounds,
                firings=firings,
                migrations=migrations,
                messages=messages,
                per_partition_firings=per_shard_firings,
                backend=self.backend_name,
                rounds=rounds,
                supersteps=supersteps,
                exchanges=exchanges,
                steals=steals,
                final_shard_sizes=final_sizes,
            )
        finally:
            backend.stop()

    # -- rebalancing -------------------------------------------------------------
    def _rebalance(self, backend, reports, detector) -> tuple:
        """Steal routable elements for shards that starved this round.

        Policy (pure, deterministic): each shard that fired nothing pulls
        from the currently most-loaded shard, provided the donor holds more
        than ``steal_threshold * (thief_size + 1)`` copies; the batch is a
        quarter of the load gap (at least one copy).  Returns
        ``(copies_moved, batches)``.
        """
        sizes = {report.shard: report.size for report in reports}
        starving = [report.shard for report in reports if report.fired == 0]
        moved_total = 0
        batches = 0
        for thief in starving:
            donor = max(
                (shard for shard in sizes if shard != thief),
                key=lambda shard: (sizes[shard], -shard),
                default=None,
            )
            if donor is None:
                break
            if sizes[donor] <= self.steal_threshold * (sizes[thief] + 1):
                continue
            batch = max(1, (sizes[donor] - sizes[thief]) // 4)
            moved = backend.steal(donor, thief, batch, detector)
            if not moved:
                continue
            sizes[donor] -= moved
            sizes[thief] += moved
            moved_total += moved
            batches += 1
        return moved_total, batches
