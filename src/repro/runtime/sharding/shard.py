"""One shard: a local partition driven by its own compiled scheduler.

A :class:`ShardWorker` owns a local :class:`~repro.multiset.multiset.Multiset`
partition and a persistent compiled
:class:`~repro.gamma.scheduler.ReactionScheduler` over it — the same stack
the single-process engines run on.  Local execution fires *supersteps*: the
scheduler's codegenned collectors extract a maximal pairwise-disjoint match
set which is applied through one validation-free batched rewrite
(:meth:`~repro.multiset.multiset.Multiset.rewrite_batch_unchecked`), exactly
like :class:`~repro.gamma.engine.ParallelEngine` does globally.  Migrations
flow through the multiset's change notifications, so the scheduler's
persistent index and parked-reaction worklist stay fresh across transfers
without rebuilds.

The same class backs both backends: the in-process backend holds the workers
directly; the multiprocessing backend runs one per OS process behind a small
pickled-tuple command protocol (:mod:`repro.runtime.sharding.mp`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...gamma.reaction import Reaction
from ...gamma.scheduler import ReactionScheduler
from ...multiset.element import Element
from ...multiset.multiset import Multiset
from .routing import RoutingTable

__all__ = ["LocalReport", "ShardWorker"]

#: Wire form of one element with multiplicity: ``(value, label, tag, count)``.
#: Plain tuples (not Element instances) cross process boundaries, keeping the
#: queue protocol picklable on every supported interpreter.
ElementQuad = Tuple[Any, str, int, int]


@dataclass(frozen=True)
class LocalReport:
    """Outcome of one shard's local execution round.

    ``stable`` is ``True`` when the shard ran out of local matches (its
    scheduler proved no reaction enabled against the partition); ``False``
    means the round stopped on the superstep cap with work remaining.
    """

    shard: int
    fired: int
    supersteps: int
    size: int
    stable: bool


def derive_shard_seed(seed: Optional[int], shard: int) -> Optional[int]:
    """Per-shard RNG seed derived from the run seed (``None`` stays ``None``).

    Both backends derive worker seeds through this function, so a seeded
    in-process run and a seeded multiprocessing run of the same program make
    identical scheduling decisions shard by shard.
    """
    if seed is None:
        return None
    return (seed * 1_000_003 + shard) & 0xFFFFFFFF


class ShardWorker:
    """One shard's state: local partition, compiled scheduler, counters.

    Parameters
    ----------
    shard:
        This shard's index (stable across the run).
    reactions:
        The program's reactions; each worker compiles its own schedulers, so
        nothing codegenned ever crosses a process boundary.
    seed:
        Run seed; ``None`` selects deterministic declaration-order probing,
        otherwise the worker probes in the RNG order derived by
        :func:`derive_shard_seed`.
    compiled:
        Forwarded to the scheduler: compiled slot-matchers (default) or the
        interpreted baseline.
    superstep:
        ``True`` (default) fires maximal local supersteps through the
        compiled collectors and the batched rewrite; ``False`` fires one
        match at a time (the legacy-style local loop, kept for comparison).
    """

    def __init__(
        self,
        shard: int,
        reactions: Sequence[Reaction],
        seed: Optional[int] = None,
        compiled: bool = True,
        superstep: bool = True,
    ) -> None:
        self.shard = shard
        self.compiled = compiled
        self.superstep = superstep
        self.multiset = Multiset()
        local_seed = derive_shard_seed(seed, shard)
        rng = random.Random(local_seed) if local_seed is not None else None
        self.scheduler = ReactionScheduler(
            reactions, self.multiset, rng=rng, compiled=compiled
        )
        self.firings = 0
        self.supersteps = 0

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Detach the scheduler's listeners (idempotent)."""
        self.scheduler.detach()

    # -- local execution ----------------------------------------------------------
    def run_local(
        self,
        max_supersteps: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> LocalReport:
        """Fire local supersteps until stable (or a cap is hit).

        ``max_supersteps`` caps the supersteps of this round (``None`` runs
        to the local fixpoint); ``budget`` caps the firings per superstep
        (``None`` extracts maximal batches).  Returns the round's
        :class:`LocalReport`.  In single-firing mode (``superstep=False``)
        each "superstep" is one firing.
        """
        fired = 0
        steps = 0
        stable = False
        multiset = self.multiset
        scheduler = self.scheduler
        if self.superstep:
            apply_batch = (
                multiset.rewrite_batch_unchecked if self.compiled else multiset.replace
            )
            while max_supersteps is None or steps < max_supersteps:
                scheduler.refresh()
                matches = scheduler.collect_superstep_matches(budget=budget)
                if not matches:
                    stable = True
                    break
                removed: List[Element] = []
                added: List[Element] = []
                for match in matches:
                    removed.extend(match.consumed)
                    added.extend(match.produced())
                apply_batch(removed, added)
                fired += len(matches)
                steps += 1
        else:
            apply_rewrite = (
                multiset.rewrite_unchecked if self.compiled else multiset.replace
            )
            while max_supersteps is None or steps < max_supersteps:
                scheduler.refresh()
                match = scheduler.find_first(shuffled=scheduler.rng is not None)
                if match is None:
                    stable = True
                    break
                apply_rewrite(match.consumed, match.produced())
                fired += 1
                steps += 1
        self.firings += fired
        self.supersteps += steps
        return LocalReport(
            shard=self.shard,
            fired=fired,
            supersteps=steps,
            size=len(multiset),
            stable=stable,
        )

    # -- transfers ----------------------------------------------------------------
    def label_counts(self) -> Dict[str, int]:
        """The shard's label histogram (input to the migration planner)."""
        return self.multiset.label_counts()

    def extract_labels(self, labels: Sequence[str]) -> List[Tuple[Element, int]]:
        """Remove and return every local element carrying one of ``labels``.

        The batched extraction half of an exchange transfer; the removal
        notifications keep the scheduler's index and worklist fresh.
        """
        return self.multiset.drain_labels(labels)

    def extract_some(
        self, limit: int, routing: RoutingTable
    ) -> List[Tuple[Element, int]]:
        """Remove up to ``limit`` copies of routable elements (steal donation).

        Elements are taken in partition insertion order, restricted to labels
        the routing table knows (stealing inert elements cannot enable the
        thief).  Returns the extracted ``(element, count)`` pairs; may be
        empty when nothing routable is present.
        """
        if limit <= 0:
            return []
        taken: List[Tuple[Element, int]] = []
        remaining = limit
        for element, count in self.multiset.counts().items():
            if not routing.is_routable(element.label):
                continue
            grab = min(count, remaining)
            taken.append((element, grab))
            remaining -= grab
            if remaining <= 0:
                break
        for element, count in taken:
            self.multiset.remove(element, count)
        return taken

    def ingest(self, pairs: Sequence[Tuple[Element, int]]) -> int:
        """Add a migration batch to the local partition; returns copies added."""
        self.multiset.add_counts(pairs)
        return sum(count for _, count in pairs)

    # -- snapshots ----------------------------------------------------------------
    def counts(self) -> List[Tuple[Element, int]]:
        """Snapshot of the partition as ``(element, count)`` pairs."""
        return list(self.multiset.counts().items())

    # -- wire helpers (shared by the multiprocessing protocol) ---------------------
    @staticmethod
    def to_quads(pairs: Sequence[Tuple[Element, int]]) -> List[ElementQuad]:
        """Encode ``(element, count)`` pairs as picklable wire quads."""
        return [(e.value, e.label, e.tag, count) for e, count in pairs]

    @staticmethod
    def from_quads(quads: Sequence[ElementQuad]) -> List[Tuple[Element, int]]:
        """Decode wire quads back into ``(element, count)`` pairs."""
        return [
            (Element(value=value, label=label, tag=tag), count)
            for value, label, tag, count in quads
        ]
