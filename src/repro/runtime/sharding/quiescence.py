"""Two-phase global-quiescence detection for the sharded runtime.

Detecting termination of a distributed rewriting system needs more than "no
shard fired this round": a shard may be locally stable while a migration that
would enable it is still in flight, or while a cross-shard match exists that
no single shard can see.  The detector below implements the classic
two-phase discipline:

* **phase 1 (local):** every shard reports locally stable (its scheduler
  found no enabled match against its partition) *and* no migration batch is
  in flight (everything sent has been ingested);
* **phase 2 (global):** no cross-shard match exists.  With footprint-based
  routing this has a cheap certificate: the migration plan over the current
  label histograms is empty, meaning every consumable label is fully
  co-located at its home shard — any global match would then be local to
  some shard, contradicting phase 1.

Any local mutation (a firing, an ingested batch) invalidates phase 1 for the
affected shard, so callers re-report local stability every round; the
coordinator only declares termination when both phases hold in the same
barrier round.

Streaming extension: with an *open element stream* attached
(:meth:`QuiescenceDetector.open_stream`), the two-phase certificate no
longer means the run may end — a streamed element could still arrive and
re-enable a reaction.  :meth:`QuiescenceDetector.verdict` therefore
distinguishes three states: ``"running"`` (some phase fails), ``"idle"``
(both phases hold but the stream is open — the epoch is stable, wait for
input), and ``"drained"`` (both phases hold and the stream is closed — the
run may terminate).  For batch runs, which never open a stream,
:meth:`check` keeps its original meaning exactly.
"""

from __future__ import annotations

from typing import List

__all__ = ["QuiescenceDetector", "RUNNING", "IDLE", "DRAINED"]

#: :meth:`QuiescenceDetector.verdict` values.
RUNNING = "running"
IDLE = "idle"
DRAINED = "drained"


class QuiescenceDetector:
    """Tracks per-shard local stability and in-flight migrations.

    The coordinator drives it synchronously: :meth:`record_local` after every
    shard report, :meth:`migrations_started` / :meth:`migrations_delivered`
    around every transfer, and :meth:`check` at the barrier with the current
    migration plan's emptiness.
    """

    def __init__(self, num_shards: int) -> None:
        """Create a detector for ``num_shards`` shards (all initially unstable)."""
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self._stable: List[bool] = [False] * num_shards
        self._in_flight = 0
        self._stream_open = False

    # -- phase 1 inputs -----------------------------------------------------------
    def record_local(self, shard: int, stable: bool) -> None:
        """Record shard ``shard``'s local verdict for this round.

        ``stable=True`` means the shard's scheduler proved no local match
        enabled; any ingest or firing after the report must be followed by a
        fresh ``record_local(shard, False)`` (the coordinator does this when
        delivering migration batches).
        """
        self._stable[shard] = stable

    def migrations_started(self, copies: int) -> None:
        """Note that ``copies`` element copies left a shard (now in flight)."""
        if copies < 0:
            raise ValueError("copies must be non-negative")
        self._in_flight += copies

    def migrations_delivered(self, shard: int, copies: int) -> None:
        """Note that ``copies`` copies were ingested by ``shard``.

        Delivery mutates the receiving shard, so its phase-1 verdict is
        invalidated in the same breath.
        """
        if copies < 0:
            raise ValueError("copies must be non-negative")
        if copies > self._in_flight:
            raise ValueError(
                f"delivering {copies} copies but only {self._in_flight} in flight"
            )
        self._in_flight -= copies
        if copies:
            self._stable[shard] = False

    # -- streaming inputs ---------------------------------------------------------
    @property
    def stream_open(self) -> bool:
        """True while an element stream may still inject work."""
        return self._stream_open

    def open_stream(self) -> None:
        """Attach an open element stream: quiescence can at most mean *idle*."""
        self._stream_open = True

    def close_stream(self) -> None:
        """The stream is exhausted: idle now escalates back to *drained*."""
        self._stream_open = False

    def injected(self, shard: int, copies: int) -> None:
        """Note that ``copies`` streamed copies were ingested by ``shard``.

        Injection mutates the receiving shard like a migration delivery does,
        so its phase-1 verdict is invalidated — but unlike a migration, the
        copies were never in flight between shards.
        """
        if copies < 0:
            raise ValueError("copies must be non-negative")
        if copies:
            self._stable[shard] = False

    # -- recovery -----------------------------------------------------------------
    def rollback(self) -> None:
        """Reset protocol state after a checkpoint restore.

        Recovery rewinds every shard to the last consistent cut: whatever
        stability the shards had reported since is void (their partitions
        just changed), and any migration that was in flight when the worker
        died either never happened from the restored cut's point of view or
        is about to be re-planned.  Phase-1 verdicts and the in-flight count
        therefore reset to the detector's initial state; stream attachment
        (:attr:`stream_open`) is control-plane state owned by the streaming
        runtime and survives the rollback.
        """
        self._stable = [False] * self.num_shards
        self._in_flight = 0

    # -- verdicts -----------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Element copies currently sent but not yet ingested."""
        return self._in_flight

    def all_locally_stable(self) -> bool:
        """Phase 1: every shard's last report was locally stable."""
        return all(self._stable)

    def verdict(self, plan_empty: bool) -> str:
        """Three-way quiescence verdict for this barrier round.

        ``plan_empty`` is phase 2's certificate — the routing-table migration
        plan over the current label histograms contains no transfer.  Returns
        :data:`RUNNING` when either phase fails, :data:`IDLE` when both
        phases hold but the stream is still open (stable *for now*; more
        elements may arrive), and :data:`DRAINED` when both phases hold and
        no stream can inject further work — only then may the run terminate.
        """
        if not (self.all_locally_stable() and self._in_flight == 0 and plan_empty):
            return RUNNING
        return IDLE if self._stream_open else DRAINED

    def check(self, plan_empty: bool) -> bool:
        """Global quiescence verdict for this barrier round.

        ``plan_empty`` is phase 2's certificate — the routing-table migration
        plan over the current label histograms contains no transfer.  Returns
        ``True`` exactly when the run may terminate: all shards locally
        stable, nothing in flight, no cross-shard match possible, and no
        open stream that could inject more work.
        """
        return self.verdict(plan_empty) == DRAINED
