"""Discrete-step multi-PE simulator for Gamma programs.

The :class:`~repro.gamma.engine.MaxParallelEngine` measures the parallelism
*available* in a Gamma execution (unbounded simultaneous firings).  The
simulator here adds the resource constraint of a fixed PE pool — each PE
performs at most one reaction firing per step — which is what the parallel
Gamma implementations cited by the paper (Connection Machine, MasPar, MPI,
GPU) actually provide.  Together with
:class:`~repro.runtime.df_simulator.DataflowSimulator` it gives both sides of
the experiment E9 comparison the same cost model.

Like the engines, the simulator runs on a persistent
:class:`~repro.gamma.scheduler.ReactionScheduler` — one incrementally
maintained label/tag index per run plus dirty-label rematching — instead of
rebuilding a matcher every step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..api import RuntimeConfig

from ..gamma.engine import NonTerminationError
from ..gamma.program import GammaProgram
from ..gamma.scheduler import ReactionScheduler
from ..multiset.multiset import Multiset
from .metrics import ParallelRunMetrics
from .pe import PEPool

__all__ = ["GammaSimulationResult", "GammaSimulator", "simulate_program"]

DEFAULT_MAX_STEPS = 1_000_000


@dataclass
class GammaSimulationResult:
    """Outcome of one PE-bounded parallel Gamma execution."""

    final: Multiset
    metrics: ParallelRunMetrics
    steps: int
    total_firings: int

    def values_with_label(self, label: str) -> List:
        return self.final.values_with_label(label)


class GammaSimulator:
    """Step-synchronous, PE-bounded parallel execution of a Gamma program."""

    def __init__(
        self,
        program: GammaProgram,
        num_pes: Optional[int] = None,
        seed: Optional[int] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        compiled: bool = True,
        columnar: bool = False,
    ) -> None:
        self.program = program
        self.num_pes = num_pes
        self.max_steps = max_steps
        self.compiled = compiled
        # The simulator always draws from an RNG (even unseeded), and the
        # columnar sweeps only engage on deterministic schedulers — so this
        # flag attaches the mirror for API uniformity but collection stays
        # on the object path.
        self.columnar = columnar
        self._rng = random.Random(seed)

    def run(self, initial: Optional[Multiset] = None) -> GammaSimulationResult:
        """Run to the stable state under the PE constraint."""
        multiset = initial if initial is not None else self.program.initial
        if multiset is None:
            raise ValueError("an initial multiset is required")
        multiset = multiset.copy()
        pool: PEPool = PEPool(self.num_pes)
        steps = 0
        total_firings = 0
        scheduler = ReactionScheduler(
            self.program.reactions,
            multiset,
            rng=self._rng,
            compiled=self.compiled,
            columnar=self.columnar,
        )
        # Matches are availability-verified by the scheduler, so the compiled
        # path may skip replace()'s atomic pre-validation; the whole step's
        # disjoint firings go through one batched (superstep) rewrite.  Final
        # counts match firing one by one; bucket insertion order can differ
        # only when a step consumes an element it also produces (see
        # rewrite_batch_unchecked), which for seeded runs may pick a
        # different — equally valid — schedule thereafter.
        apply_batch = multiset.rewrite_batch_unchecked if self.compiled else multiset.replace

        try:
            while True:
                if steps >= self.max_steps:
                    raise NonTerminationError(
                        f"gamma simulation exceeded {self.max_steps} steps on {self.program.name!r}"
                    )
                scheduler.refresh()
                matches = scheduler.collect_step_matches(budget=pool.capacity())
                if not matches:
                    break
                scheduled = pool.dispatch(matches)
                removed: List = []
                added: List = []
                for match in scheduled:
                    removed.extend(match.consumed)
                    added.extend(match.produced())
                apply_batch(removed, added)
                total_firings += len(scheduled)
                steps += 1
        finally:
            scheduler.detach()

        metrics = ParallelRunMetrics.from_profile(pool.profile, num_pes=self.num_pes)
        return GammaSimulationResult(
            final=multiset, metrics=metrics, steps=steps, total_firings=total_firings
        )


def simulate_program(
    program: GammaProgram,
    initial: Optional[Multiset] = None,
    num_pes: Optional[int] = None,
    seed: Optional[int] = None,
    compiled: Optional[bool] = None,
    columnar: Optional[bool] = None,
    config: Optional["RuntimeConfig"] = None,
) -> GammaSimulationResult:
    """Convenience wrapper around :class:`GammaSimulator`.

    The preferred configuration surface is ``config``, a
    :class:`repro.api.RuntimeConfig` validated against the ``"simulator"``
    surface (``seed`` / ``max_steps`` / ``compiled`` / ``columnar``).  The
    equivalent legacy keywords still work but emit a ``DeprecationWarning``
    and cannot be combined with ``config``; ``num_pes`` is the simulator's
    resource model, not runtime configuration, so it stays a keyword on
    either path.
    """
    from ..api import RuntimeConfig, _legacy_names, _reject_config_mix, _warn_legacy

    if columnar is False:
        columnar = None
    legacy = _legacy_names(
        (("seed", seed), ("compiled", compiled), ("columnar", columnar))
    )
    if config is not None:
        _reject_config_mix(legacy)
        cfg = config
    else:
        cfg = RuntimeConfig(seed=seed, compiled=compiled, columnar=columnar)
    cfg.validate("simulator")
    if config is None and legacy:
        _warn_legacy("simulate_program()", legacy)
    return GammaSimulator(
        program,
        num_pes=num_pes,
        seed=cfg.seed,
        max_steps=DEFAULT_MAX_STEPS if cfg.max_steps is None else cfg.max_steps,
        compiled=True if cfg.compiled is None else cfg.compiled,
        columnar=bool(cfg.columnar),
    ).run(initial)
