"""Streaming ingestion runtime: continuous element injection into a live run.

Every backend built so far executes in **batch** mode — the whole multiset
exists up front and the run ends at global stability.  The north-star
deployment is **online**: elements arrive while the system runs (sensor
readings entering an IoT solution, requests entering a serving tier), and
the run alternates between absorbing new input and re-stabilizing.  This
module adds that mode on top of every existing backend without forking any
of their scheduling machinery:

* :class:`IngestQueue` — the admission buffer between producers and the run.
  Bounded (``capacity`` copies) with real backpressure: :meth:`IngestQueue.offer`
  refuses over-capacity batches, :meth:`IngestQueue.put` blocks until the
  runtime drains an epoch.  Admission order is deterministic: FIFO, or a
  seeded epoch-batch permutation when the queue carries a seed — so a
  seeded streaming run is a pure function of (program, initial, offer
  sequence, seed).
* **Epoch semantics** — injected elements become visible only at superstep
  boundaries: each :meth:`StreamingGammaRuntime.pump` admits one epoch
  batch and then drains to stability (or a per-epoch superstep cap).  The
  scheduler sees injection as ordinary multiset change notifications
  (:meth:`~repro.gamma.scheduler.ReactionScheduler.inject`), so dirty-label
  wakeups re-arm exactly the parked reactions whose footprints the new
  elements touch.
* **Backends** — the single-process engines (``"sequential"``,
  ``"chaotic"``, ``"parallel"``) run one persistent scheduler drained
  epoch-by-epoch through :meth:`~repro.gamma.engine.GammaEngine.drain`; the
  sharded backends (``"inprocess"``, ``"multiprocessing"``, ``"network"``) hold a
  :class:`~repro.runtime.sharding.ShardSession` whose routed injection
  ships each epoch batch to the elements' stable-hash home shards, and
  whose extended :class:`~repro.runtime.sharding.QuiescenceDetector`
  distinguishes *idle* (stable but stream open) from *drained*.
* :meth:`StreamingGammaRuntime.snapshot` — a consistent read of the live
  multiset between epochs, and :class:`StreamRunResult` — per-epoch
  accounting (injected copies, firings, supersteps, latency to stability).

The differential contract (pinned by the conformance fuzz suite): after the
stream closes and drains, the final multiset equals a batch run over
``initial ∪ injected`` — on every backend, for confluent programs.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..api import RuntimeConfig

from ..gamma.engine import (
    ChaoticEngine,
    GammaEngine,
    NonTerminationError,
    ParallelEngine,
    SequentialEngine,
)
from ..gamma.program import GammaProgram
from ..gamma.scheduler import ReactionScheduler
from ..gamma.tracer import Trace
from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .recovery import RecoveryManager
from .sharding import ShardCoordinator, ShardSession
from .sharding.quiescence import DRAINED, IDLE

__all__ = [
    "IngestQueue",
    "EpochReport",
    "StreamRunResult",
    "StreamingGammaRuntime",
    "STREAM_BACKENDS",
]

#: Backend names accepted by :class:`StreamingGammaRuntime`.
STREAM_BACKENDS = (
    "sequential", "chaotic", "parallel", "inprocess", "multiprocessing", "network",
)

_ENGINE_BACKENDS = ("sequential", "chaotic", "parallel")
_SHARDED_BACKENDS = ("inprocess", "multiprocessing", "network")


def _coerce(element: Any) -> Element:
    if isinstance(element, Element):
        return element
    if isinstance(element, tuple):
        return Element.from_tuple(element)
    return Element(value=element)


class IngestQueue:
    """Bounded admission queue between element producers and a live run.

    Parameters
    ----------
    capacity:
        Maximum element *copies* the queue may hold (``None`` = unbounded).
        :meth:`offer` returns ``False`` instead of exceeding it; :meth:`put`
        blocks — the backpressure signal producers see when injection
        outpaces stabilization.
    seed:
        Optional admission seed.  ``None`` admits strictly FIFO; with a
        seed, each epoch batch is deterministically permuted by a private
        RNG, modeling out-of-order arrival while keeping the whole run
        reproducible (same offers + same epoch boundaries + same seed ⇒
        same admission order).

    Thread safety: all operations take one internal lock, so producers may
    offer from other threads while the runtime drains epochs.
    """

    def __init__(self, capacity: Optional[int] = None, seed: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.seed = seed
        self._rng = random.Random(seed) if seed is not None else None
        self._entries: deque = deque()
        self._pending = 0
        self._closed = False
        self._condition = threading.Condition()
        self._take_listeners: List[Any] = []

    # -- producer side ------------------------------------------------------------
    def offer(self, element: Any, count: int = 1) -> bool:
        """Non-blocking admission of ``count`` copies; ``False`` when full.

        ``element`` may be an :class:`Element`, a ``(value, label, tag)``
        tuple, or a bare value.  Raises ``ValueError`` on a closed queue —
        offering after :meth:`close` is a producer bug, not backpressure.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        element = _coerce(element)
        with self._condition:
            if self._closed:
                raise ValueError("cannot offer to a closed IngestQueue")
            if self.capacity is not None and self._pending + count > self.capacity:
                return False
            self._entries.append((element, count))
            self._pending += count
            self._condition.notify_all()
            return True

    def offer_all(self, elements: Iterable[Any]) -> int:
        """Offer every element (count 1 each); returns copies admitted.

        Stops at the first refusal, so a bounded queue admits a prefix.
        """
        admitted = 0
        for element in elements:
            if not self.offer(element):
                break
            admitted += 1
        return admitted

    def offer_batch(self, pairs: Sequence[Tuple[Any, int]]) -> bool:
        """Atomic all-or-nothing admission of ``(element, count)`` pairs.

        Either every pair is admitted (``True``) or none is (``False`` when
        the batch would exceed capacity) — the gateway's no-partial-batch
        guarantee rides on this.  Elements are coerced like :meth:`offer`;
        raises ``ValueError`` on a closed queue or a non-positive count.
        """
        coerced = [(_coerce(element), count) for element, count in pairs]
        if any(count <= 0 for _, count in coerced):
            raise ValueError("every count must be positive")
        copies = sum(count for _, count in coerced)
        with self._condition:
            if self._closed:
                raise ValueError("cannot offer to a closed IngestQueue")
            if self.capacity is not None and self._pending + copies > self.capacity:
                return False
            self._entries.extend(coerced)
            self._pending += copies
            self._condition.notify_all()
            return True

    def put(self, element: Any, count: int = 1, timeout: Optional[float] = None) -> None:
        """Blocking admission: wait for capacity, then enqueue.

        The backpressure path for threaded producers.  Raises ``TimeoutError``
        when ``timeout`` (seconds) elapses without room, and ``ValueError``
        if the queue is closed (before or while waiting).  A :meth:`close`
        from another thread wakes blocked puts *promptly* — the wait
        predicate includes the closed flag and ``close`` notifies under the
        condition, so a shutdown never has to ride out the timeout (pinned
        by ``tests/runtime/test_streaming.py``).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        element = _coerce(element)
        with self._condition:
            def admissible() -> bool:
                return self._closed or (
                    self.capacity is None or self._pending + count <= self.capacity
                )

            if not self._condition.wait_for(admissible, timeout=timeout):
                raise TimeoutError(
                    f"no capacity for {count} copies within {timeout}s"
                )
            if self._closed:
                raise ValueError("cannot put to a closed IngestQueue")
            self._entries.append((element, count))
            self._pending += count
            self._condition.notify_all()

    def close(self) -> None:
        """End the stream: no further offers; pending elements still drain."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def add_take_listener(self, listener: Any) -> None:
        """Register ``listener(copies)`` to run after each non-empty take.

        Called outside the queue lock with the copies the take removed —
        the hook the ingestion gateway uses to retire per-tenant accounting
        as the runtime drains epochs.  Listeners must not raise.
        """
        self._take_listeners.append(listener)

    # -- runtime side -------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called (pending entries may remain)."""
        return self._closed

    @property
    def pending(self) -> int:
        """Element copies currently queued (admitted, not yet taken)."""
        with self._condition:
            return self._pending

    @property
    def exhausted(self) -> bool:
        """True when the stream is closed *and* everything was taken."""
        with self._condition:
            return self._closed and not self._entries

    def take_epoch(self, limit: Optional[int] = None) -> List[Tuple[Element, int]]:
        """Remove and return the next epoch batch (up to ``limit`` copies).

        The admission point: entries leave in FIFO order (an entry is never
        split below ``limit``; at least one entry is taken if any is
        pending), then — when the queue carries a seed — the batch is
        permuted by the private RNG.  Taking releases capacity, waking
        blocked :meth:`put` producers.
        """
        if limit is not None and limit <= 0:
            raise ValueError("limit must be positive (or None)")
        with self._condition:
            batch: List[Tuple[Element, int]] = []
            taken = 0
            while self._entries:
                element, count = self._entries[0]
                if limit is not None and batch and taken + count > limit:
                    break
                self._entries.popleft()
                batch.append((element, count))
                taken += count
                if limit is not None and taken >= limit:
                    break
            self._pending -= taken
            if taken:
                self._condition.notify_all()
        if taken:
            for listener in self._take_listeners:
                listener(taken)
        if self._rng is not None and len(batch) > 1:
            self._rng.shuffle(batch)
        return batch

    def wait_for_input(self, timeout: Optional[float] = None) -> bool:
        """Block until an entry is pending or the queue closes.

        Returns ``True`` when there is something to take (or the stream
        ended), ``False`` on timeout — the runtime's idle wait between
        epochs in live (non-scripted) mode.
        """
        with self._condition:
            return self._condition.wait_for(
                lambda: self._entries or self._closed, timeout=timeout
            )


@dataclass(frozen=True)
class EpochReport:
    """Accounting for one streaming epoch (one admission + one drain).

    ``latency`` is the wall-clock seconds from admitting the epoch batch to
    reaching stability again — the streaming analogue of a batch run's wall
    time.  ``stable`` is ``False`` when the drain stopped on the per-epoch
    superstep cap with work remaining (the next epoch continues it).
    """

    epoch: int
    injected: int
    firings: int
    steps: int
    latency: float
    stable: bool


@dataclass
class StreamRunResult:
    """Outcome of a streaming execution.

    ``steps`` counts engine steps/supersteps (engine backends) or barrier
    rounds (sharded backends) summed over all epochs; ``injected`` counts
    element copies admitted from the stream (the initial multiset is not
    counted).  ``per_epoch`` holds one :class:`EpochReport` per pump.
    """

    final: Multiset
    backend: str
    epochs: int
    injected: int
    firings: int
    steps: int
    per_epoch: List[EpochReport] = field(default_factory=list)
    stable: bool = True
    recoveries: int = 0
    replayed: int = 0
    scale_events: int = 0
    group_migrations: int = 0
    wire_bytes: int = 0

    def values_with_label(self, label: str) -> List:
        """Values of the final multiset's elements carrying ``label``."""
        return self.final.values_with_label(label)

    def epoch_firings(self) -> List[int]:
        """Firings per epoch (the stream's throughput profile)."""
        return [report.firings for report in self.per_epoch]

    def latency_to_stability(self) -> List[float]:
        """Seconds from each epoch's admission to renewed stability."""
        return [report.latency for report in self.per_epoch]


class StreamingGammaRuntime:
    """Run a Gamma program as a long-lived process fed by an element stream.

    Parameters
    ----------
    program:
        The Gamma program to execute.
    backend:
        One of :data:`STREAM_BACKENDS`: ``"sequential"`` / ``"chaotic"`` /
        ``"parallel"`` drive a single-process engine over one persistent
        scheduler; ``"inprocess"`` / ``"multiprocessing"`` / ``"network"``
        drive a sharded :class:`~repro.runtime.sharding.ShardSession` with
        routed injection.
    seed:
        Scheduling seed (forwarded to the engine or the shard workers) and,
        unless a pre-built ``queue`` is supplied, the admission seed.
    num_shards:
        Shard count for the sharded backends (default 4; ignored otherwise).
    queue:
        A pre-built :class:`IngestQueue` (e.g. shared with producer
        threads); by default the runtime creates one from
        ``queue_capacity``/``seed``.
    queue_capacity:
        Capacity of the auto-created queue (copies; ``None`` = unbounded).
    epoch_limit:
        Cap on copies admitted per epoch (``None`` = take everything
        pending), bounding how much work one epoch may absorb.
    steps_per_epoch:
        Superstep cap per epoch drain (``None`` = run to stability every
        epoch).  With a cap, an unstable epoch simply continues next pump —
        this is how injection interleaves with long stabilizations.
    max_steps:
        Total step/round budget across the whole stream (divergence guard).
    workers / max_batch:
        Forwarded to :class:`~repro.gamma.engine.ParallelEngine`
        (``backend="parallel"`` only).
    compiled:
        Compiled scheduling stack (default) or the interpreted baseline.
    columnar:
        Mirror the live multiset into a columnar store and use the
        vectorized sweeps where eligible (engine backends only; requires
        ``compiled``).  Unseeded sequential streams drain each epoch through
        the columnar kernel; unseeded parallel streams collect supersteps
        through the columnar mask sweeps.  Seeded runs keep the mirror but
        stay on the object path (selection must consume the RNG).
    recovery:
        Optional :class:`~repro.runtime.recovery.RecoveryManager` (sharded
        backends only).  Every admitted epoch batch is written to the
        manager's WAL *before* any shard sees it, epoch checkpoints are
        captured every ``checkpoint_interval`` pumps, and a worker death
        rolls back to the last checkpoint and replays the logged epochs
        instead of failing the stream.
    checkpoint_interval:
        Pumps between checkpoints when ``recovery`` is set (default 1 —
        checkpoint every epoch; raise it to trade recovery rewind distance
        for lower checkpoint overhead).
    config.elasticity:
        Optional :class:`~repro.runtime.elasticity.ElasticityPolicy`
        (sharded backends only, config surface only): the coordinator
        consults it at superstep barriers and may migrate label groups
        between shards or split/merge the shard set while the stream is
        live — ``result().scale_events`` / ``.group_migrations`` report
        what it did.

    Drive it either *scripted* — ``run(initial, schedule=[batch, ...])``
    plays one batch per epoch — or *live*: start producer threads against
    ``runtime.queue``, call :meth:`run`, and :meth:`close_stream` (or
    ``queue.close()``) when the stream ends.  Between :meth:`pump` calls
    the run is at a superstep boundary, so :meth:`snapshot` is consistent.
    """

    def __init__(
        self,
        program: GammaProgram,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
        num_shards: Optional[int] = None,
        queue: Optional[IngestQueue] = None,
        queue_capacity: Optional[int] = None,
        epoch_limit: Optional[int] = None,
        steps_per_epoch: Optional[int] = None,
        max_steps: Optional[int] = None,
        workers: Optional[int] = None,
        max_batch: Optional[int] = None,
        compiled: Optional[bool] = None,
        columnar: Optional[bool] = None,
        recovery: Optional[RecoveryManager] = None,
        checkpoint_interval: Optional[int] = None,
        config: Optional["RuntimeConfig"] = None,
    ) -> None:
        """Configure the stream; ``config`` is the preferred surface.

        A :class:`repro.api.RuntimeConfig` (validated against the
        ``"streaming"`` surface) carries ``backend`` / ``shards`` / ``seed``
        / ``max_steps`` / ``compiled`` / ``columnar`` / ``recovery`` /
        ``checkpoint_interval`` / ``elasticity``.  The equivalent legacy
        keywords still work but emit a ``DeprecationWarning`` and cannot be
        combined with ``config``.  Stream-plumbing arguments (``queue``,
        ``queue_capacity``, ``epoch_limit``, ``steps_per_epoch``,
        ``workers``, ``max_batch``) are not configuration — they stay
        keywords on either path.
        """
        from ..api import RuntimeConfig, _legacy_names, _reject_config_mix, _warn_legacy

        if columnar is False:
            columnar = None
        legacy = _legacy_names(
            (
                ("backend", backend),
                ("seed", seed),
                ("num_shards", num_shards),
                ("max_steps", max_steps),
                ("compiled", compiled),
                ("columnar", columnar),
                ("recovery", recovery),
                ("checkpoint_interval", checkpoint_interval),
            )
        )
        if config is not None:
            _reject_config_mix(legacy)
            cfg = config
        else:
            cfg = RuntimeConfig(
                backend=backend,
                shards=num_shards,
                seed=seed,
                max_steps=max_steps,
                compiled=compiled,
                columnar=columnar,
                recovery=recovery,
                checkpoint_interval=checkpoint_interval,
            )
        cfg.validate("streaming")
        if steps_per_epoch is not None and steps_per_epoch <= 0:
            raise ValueError("steps_per_epoch must be positive (or None)")
        if config is None and legacy:
            _warn_legacy("StreamingGammaRuntime", legacy)
        self.program = program
        self.backend = cfg.backend if cfg.backend is not None else "sequential"
        self.seed = cfg.seed
        self.num_shards = cfg.shards if cfg.shards is not None else 4
        if queue_capacity is None:
            queue_capacity = cfg.gateway_capacity
        self.queue = queue if queue is not None else IngestQueue(
            capacity=queue_capacity, seed=cfg.seed
        )
        self.gateway_tenant_quota = cfg.gateway_tenant_quota
        self._gateway: Optional[Any] = None
        self.epoch_limit = epoch_limit
        self.steps_per_epoch = steps_per_epoch
        self.max_steps = 1_000_000 if cfg.max_steps is None else cfg.max_steps
        self.workers = workers
        self.max_batch = max_batch
        self.compiled = True if cfg.compiled is None else cfg.compiled
        self.columnar = bool(cfg.columnar)
        self.recovery = cfg.recovery
        self.checkpoint_interval = (
            1 if cfg.checkpoint_interval is None else cfg.checkpoint_interval
        )
        self.elasticity = cfg.elasticity
        self._epochs_since_checkpoint = 0
        # Live-run state (created by start()).
        self._engine: Optional[GammaEngine] = None
        self._scheduler: Optional[ReactionScheduler] = None
        self._multiset: Optional[Multiset] = None
        self._trace: Optional[Trace] = None
        self._session: Optional[ShardSession] = None
        self._reports: List[EpochReport] = []
        self._final: Optional[Multiset] = None
        self._steps = 0
        self._firings = 0
        self._injected = 0
        self._stable = False
        self._started = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------
    def start(self, initial: Optional[Multiset] = None) -> "StreamingGammaRuntime":
        """Load the initial multiset and arm the backend; returns ``self``.

        ``initial`` defaults to the program's bundled initial multiset (an
        empty multiset if the program bundles none — a pure stream).
        """
        if self._started:
            raise RuntimeError("streaming runtime already started")
        source = initial if initial is not None else self.program.initial
        if source is None:
            source = Multiset()
        if self.backend in _ENGINE_BACKENDS:
            self._multiset = source.copy()
            self._engine = self._make_engine()
            self._trace = Trace()
            self._scheduler = ReactionScheduler(
                self.program.reactions,
                self._multiset,
                rng=self._engine._rng,
                compiled=self.compiled,
                columnar=self.columnar,
            )
        else:
            coordinator = ShardCoordinator(
                self.program,
                self.num_shards,
                backend=self.backend,
                seed=self.seed,
                max_rounds=self.max_steps,
                compiled=self.compiled,
                recovery=self.recovery,
                elasticity=self.elasticity,
            )
            self._session = coordinator.start(source)
            self._session.open_stream()
        self._started = True
        return self

    def _make_engine(self) -> GammaEngine:
        if self.backend == "sequential":
            return SequentialEngine(compiled=self.compiled, columnar=self.columnar)
        if self.backend == "chaotic":
            return ChaoticEngine(
                seed=self.seed, compiled=self.compiled, columnar=self.columnar
            )
        return ParallelEngine(
            seed=self.seed,
            workers=self.workers,
            max_batch=self.max_batch,
            compiled=self.compiled,
            columnar=self.columnar,
        )

    def close(self) -> None:
        """Tear down schedulers/workers (idempotent; :meth:`result` stays readable)."""
        if self._closed:
            return
        self._closed = True
        if self._gateway is not None:
            self._gateway.close()
        if self._scheduler is not None:
            self._scheduler.detach()
        if isinstance(self._engine, ParallelEngine):
            self._engine.close()
        if self._session is not None:
            try:
                # Capture the final state before the workers go away, so
                # result() keeps working after close() on every backend.
                # session.snapshot() is recovery-guarded: with a manager
                # attached, even a worker dying right here is rolled back
                # and the snapshot retried.
                self._final = self._session.snapshot()
            except (OSError, RuntimeError, ValueError):
                # Teardown after a worker failure: the backend already shut
                # its queues; keep result() raising instead of deadlocking.
                self._final = None
            self._session.close()

    # -- producer conveniences ----------------------------------------------------
    def serve_gateway(self, host: str = "127.0.0.1") -> Any:
        """Start (or return) the socket ingestion gateway over this queue.

        Binds an :class:`~repro.runtime.net.gateway.IngestGateway` on an
        ephemeral ``host`` port (loopback by default) in front of
        ``self.queue``, with the config's ``gateway_tenant_quota`` as the
        per-tenant admission cap (the queue's own capacity — settable via
        ``gateway_capacity`` — is the global bound).  Idempotent: one
        gateway per runtime; :meth:`close` stops it.  Producers connect with
        :class:`~repro.runtime.net.gateway.GatewayClient` (or any codec-
        speaking client) and are backpressured, never dropped.
        """
        if self._closed:
            raise RuntimeError("streaming runtime is closed")
        if self._gateway is None:
            from .net.gateway import IngestGateway

            self._gateway = IngestGateway(
                self.queue, tenant_quota=self.gateway_tenant_quota, host=host
            )
        return self._gateway

    def inject(self, element: Any, count: int = 1) -> bool:
        """Offer ``count`` copies to the stream (non-blocking); see :meth:`IngestQueue.offer`."""
        return self.queue.offer(element, count)

    def close_stream(self) -> None:
        """Close the ingest queue: pending elements drain, then the run ends."""
        self.queue.close()

    # -- epoch execution ----------------------------------------------------------
    def pump(self) -> EpochReport:
        """Admit one epoch batch and drain to stability (or the epoch cap).

        The unit of streaming execution: everything the queue admitted
        becomes visible at this superstep boundary, then the backend fires
        until stable again.  Returns the epoch's :class:`EpochReport`.
        Raises :class:`NonTerminationError` when the total step budget is
        exhausted.
        """
        if not self._started:
            self.start()
        if self._closed:
            raise RuntimeError("streaming runtime is closed")
        batch = self.queue.take_epoch(limit=self.epoch_limit)
        injected = sum(count for _, count in batch)
        began = time.perf_counter()
        budget = self.max_steps - self._steps
        if budget <= 0:
            raise NonTerminationError(
                f"streaming run exceeded {self.max_steps} steps "
                f"on {self.program.name!r}"
            )
        if self.steps_per_epoch is not None:
            budget = min(budget, self.steps_per_epoch)
        if self._session is not None:
            if batch:
                self._session.inject(batch, epoch=len(self._reports))
            if self.queue.exhausted:
                self._session.close_stream()
            verdict = self._session.drive(
                max_new_rounds=None if self.steps_per_epoch is None else budget
            )
            steps = self._session.rounds - self._steps
            firings = self._session.firings - self._firings
            stable = verdict in (IDLE, DRAINED)
            self._steps = self._session.rounds
            self._firings = self._session.firings
            if self.recovery is not None:
                # The barrier between drive calls is a consistent cut even
                # when the verdict is RUNNING (per-epoch cap hit): no firing
                # or migration is in progress between rounds.
                self._epochs_since_checkpoint += 1
                if self._epochs_since_checkpoint >= self.checkpoint_interval:
                    self._session.checkpoint(epoch=len(self._reports))
                    self._epochs_since_checkpoint = 0
        else:
            assert self._engine is not None and self._scheduler is not None
            assert self._multiset is not None and self._trace is not None
            if batch:
                self._scheduler.inject(batch)
            steps, firings, stable = self._engine.drain(
                self._scheduler,
                self._multiset,
                self._trace,
                max_steps=budget,
                raise_on_budget=False,
                label=self.program.name,
            )
            self._steps += steps
            self._firings += firings
            if not stable and self.steps_per_epoch is None:
                # The cap that stopped the drain was the *global* budget.
                raise NonTerminationError(
                    f"streaming run exceeded {self.max_steps} steps "
                    f"on {self.program.name!r}"
                )
        self._injected += injected
        self._stable = stable
        report = EpochReport(
            epoch=len(self._reports),
            injected=injected,
            firings=firings,
            steps=steps,
            latency=time.perf_counter() - began,
            stable=stable,
        )
        self._reports.append(report)
        return report

    def snapshot(self) -> Multiset:
        """Consistent copy of the live multiset (valid between pumps).

        A *live* read: raises ``RuntimeError`` once the runtime is closed —
        use :meth:`result` for the final state after teardown.
        """
        if not self._started:
            raise RuntimeError("streaming runtime not started")
        if self._closed:
            raise RuntimeError("streaming runtime is closed; read result() instead")
        if self._session is not None:
            return self._session.snapshot()
        assert self._multiset is not None
        return self._multiset.copy()

    @property
    def drained(self) -> bool:
        """True when the stream is exhausted and the run is stable."""
        return self.queue.exhausted and self._stable and self.queue.pending == 0

    # -- whole-stream convenience --------------------------------------------------
    def run(
        self,
        initial: Optional[Multiset] = None,
        schedule: Optional[Iterable[Sequence[Any]]] = None,
        wait_timeout: Optional[float] = None,
    ) -> StreamRunResult:
        """Drive the stream to the drained state and return the result.

        Scripted mode (``schedule`` given): each entry is one epoch's
        injection batch — elements (or ``(element, count)`` pairs) offered
        then pumped — after which the stream closes and a final drain runs.
        Live mode (``schedule=None``): pump whenever the queue has input,
        block on :meth:`IngestQueue.wait_for_input` otherwise, and finish
        when some producer closes the stream.  ``wait_timeout`` bounds each
        idle wait (``None`` = wait indefinitely; raises ``TimeoutError`` on
        expiry so a misbehaving producer cannot hang the run forever).
        """
        if not self._started:
            self.start(initial)
        try:
            if schedule is not None:
                self.pump()  # epoch 0: stabilize the initial multiset alone
                for batch in schedule:
                    for entry in batch:
                        if isinstance(entry, tuple) and len(entry) == 2 and isinstance(
                            entry[1], int
                        ) and isinstance(entry[0], Element):
                            self.queue.offer(entry[0], entry[1])
                        else:
                            self.queue.offer(entry)
                    self.pump()
                if not self.queue.closed:
                    self.queue.close()
                while not self.drained:
                    self.pump()
            else:
                while True:
                    if not self.queue.wait_for_input(timeout=wait_timeout):
                        raise TimeoutError(
                            f"no stream input within {wait_timeout}s and the "
                            f"queue is still open"
                        )
                    self.pump()
                    if self.drained:
                        break
            return self.result()
        finally:
            self.close()

    def result(self) -> StreamRunResult:
        """The stream's accumulated result (valid any time after start).

        Keeps working after :meth:`close` — the final multiset is captured
        at teardown — except when close followed a worker failure, in which
        case no consistent final state exists and ``RuntimeError`` is
        raised.
        """
        if self._session is not None:
            if self._closed:
                if self._final is None:
                    raise RuntimeError(
                        "no final state available: the backend failed before close"
                    )
                final = self._final.copy()
            else:
                final = self._session.snapshot()
        elif self._multiset is not None:
            final = self._multiset.copy()
        else:
            raise RuntimeError("streaming runtime not started")
        return StreamRunResult(
            final=final,
            backend=self.backend,
            epochs=len(self._reports),
            injected=self._injected,
            firings=self._firings,
            steps=self._steps,
            per_epoch=list(self._reports),
            stable=self._stable and self.queue.exhausted,
            recoveries=self._session.recoveries if self._session is not None else 0,
            replayed=self._session.replayed if self._session is not None else 0,
            scale_events=self._session.scale_events if self._session is not None else 0,
            group_migrations=(
                self._session.group_migrations if self._session is not None else 0
            ),
            wire_bytes=(
                (
                    getattr(self._session.backend, "wire_bytes", 0)
                    if self._session is not None
                    else 0
                )
                + (self._gateway.wire_bytes if self._gateway is not None else 0)
            ),
        )
