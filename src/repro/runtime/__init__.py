"""Parallel and distributed runtimes for both computational models.

* :class:`DataflowSimulator` — step-synchronous multi-PE execution of dataflow graphs,
* :class:`GammaSimulator` — step-synchronous PE-bounded parallel Gamma execution,
* :class:`DistributedGammaRuntime` — partitioned distributed multiset execution
  (legacy simulated loop, or the sharded subsystem via
  ``backend="inprocess"``/``"multiprocessing"``/``"network"``),
* :class:`ShardCoordinator` — direct access to the sharded protocol
  (:mod:`repro.runtime.sharding`),
* :class:`StreamingGammaRuntime` — online execution: continuous element
  injection into a live run on any backend
  (:mod:`repro.runtime.streaming`),
* :class:`ElasticityPolicy` — online elasticity for the sharded runtimes:
  label-group migration between shards and shard split/merge/autoscale at
  superstep barriers (:mod:`repro.runtime.elasticity`),
* :class:`RecoveryManager` — fault tolerance for the sharded runtimes:
  epoch checkpoints, an ingest write-ahead log, and rollback recovery from
  worker death (:mod:`repro.runtime.recovery`), exercised by the seeded
  fault-injection harness in :mod:`repro.runtime.faults`,
* :class:`PEPool` / :class:`ParallelRunMetrics` — the shared cost model.
"""

from .df_simulator import DataflowSimulationResult, DataflowSimulator, simulate_graph
from .distributed import DistributedGammaRuntime, DistributedMultiset, DistributedRunResult
from .elasticity import ElasticityDecision, ElasticityPlan, ElasticityPolicy
from .faults import FaultEvent, FaultInjector, FaultSchedule, install_faults
from .gamma_simulator import GammaSimulationResult, GammaSimulator, simulate_program
from .metrics import ParallelRunMetrics, speedup_curve
from .pe import PEPool, ProcessingElement
from .recovery import (
    Checkpoint,
    CheckpointStore,
    DiskCheckpointStore,
    DiskWriteAheadLog,
    MemoryCheckpointStore,
    MemoryWriteAheadLog,
    RecoveryManager,
    WALRecord,
    WorkerDied,
    WriteAheadLog,
)
from .net import (
    FrameError,
    GatewayClient,
    IngestGateway,
    NetworkBackend,
)
from .sharding import ShardCoordinator, ShardedRunResult
from .streaming import (
    EpochReport,
    IngestQueue,
    StreamingGammaRuntime,
    StreamRunResult,
)

__all__ = [
    "DataflowSimulator", "DataflowSimulationResult", "simulate_graph",
    "GammaSimulator", "GammaSimulationResult", "simulate_program",
    "DistributedGammaRuntime", "DistributedMultiset", "DistributedRunResult",
    "ShardCoordinator", "ShardedRunResult",
    "StreamingGammaRuntime", "StreamRunResult", "EpochReport", "IngestQueue",
    "ElasticityPolicy", "ElasticityPlan", "ElasticityDecision",
    "RecoveryManager", "WorkerDied", "Checkpoint", "CheckpointStore",
    "MemoryCheckpointStore", "DiskCheckpointStore",
    "WriteAheadLog", "MemoryWriteAheadLog", "DiskWriteAheadLog", "WALRecord",
    "FaultSchedule", "FaultEvent", "FaultInjector", "install_faults",
    "NetworkBackend", "IngestGateway", "GatewayClient", "FrameError",
    "ParallelRunMetrics", "speedup_curve",
    "PEPool", "ProcessingElement",
]
