"""Simulated parallel runtimes for both computational models.

* :class:`DataflowSimulator` — step-synchronous multi-PE execution of dataflow graphs,
* :class:`GammaSimulator` — step-synchronous PE-bounded parallel Gamma execution,
* :class:`DistributedGammaRuntime` — partitioned (IoT-style) distributed multiset,
* :class:`PEPool` / :class:`ParallelRunMetrics` — the shared cost model.
"""

from .df_simulator import DataflowSimulationResult, DataflowSimulator, simulate_graph
from .distributed import DistributedGammaRuntime, DistributedMultiset, DistributedRunResult
from .gamma_simulator import GammaSimulationResult, GammaSimulator, simulate_program
from .metrics import ParallelRunMetrics, speedup_curve
from .pe import PEPool, ProcessingElement

__all__ = [
    "DataflowSimulator", "DataflowSimulationResult", "simulate_graph",
    "GammaSimulator", "GammaSimulationResult", "simulate_program",
    "DistributedGammaRuntime", "DistributedMultiset", "DistributedRunResult",
    "ParallelRunMetrics", "speedup_curve",
    "PEPool", "ProcessingElement",
]
