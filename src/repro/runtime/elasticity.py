"""Online elasticity for the sharded runtime: repartitioning and autoscaling.

The sharded runtime (PR 4-7) fixes shard count and label placement when a
session starts: the routing table hashes every union-find label group to a
static home shard.  Under a skewed workload — a traffic spike on one label
family — that serializes the cluster: every element of the hot family routes
to one shard while the others idle.  This module closes the loop the ROADMAP
calls *adaptive elasticity*, using the per-round metrics the runtime already
computes (shard sizes from the local reports, label histograms from the
exchange planner, :func:`repro.analysis.sharding.shard_balance`):

* **group migration** — the union-find label groups in
  :class:`~repro.runtime.sharding.routing.RoutingTable` are the migration
  unit.  A hot group is re-homed (:meth:`RoutingTable.assign`) onto the
  least-loaded shard and its elements move through the existing column-batch
  exchange machinery, so future exchanges keep the group there.
* **split / merge** — when the mean partition size crosses the split (or
  merge) threshold, the policy asks the session to resize the shard set.  A
  resize is a *planned, loss-free recovery*: snapshot every shard through
  the column-batch wire format, repartition, rebuild the workers (respawning
  or retiring processes on the multiprocessing backend), and re-home the
  routing table — the same checkpoint-rebuild machinery PR 7's crash
  recovery uses, minus the crash.

Decisions are *seeded and deterministic*: for a fixed seed (including
``None``) the policy makes identical decisions for identical observations,
so conformance fuzzing and the cross-backend determinism guarantee (the
in-process and multiprocessing backends see the same sizes and histograms)
survive elasticity.  All decisions are recorded on
:attr:`ElasticityPolicy.decisions` for tests and diagnostics.

Hysteresis keeps the policy from thrashing: pressure must persist for
``patience`` consecutive rounds before the policy acts, and after acting it
stays quiet for ``cooldown`` rounds so the runtime can absorb the move.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["ElasticityDecision", "ElasticityPlan", "ElasticityPolicy"]


@dataclass(frozen=True)
class ElasticityDecision:
    """One recorded policy decision.

    ``action`` is ``"migrate"``, ``"split"`` or ``"merge"``; ``detail`` is a
    human-readable summary (group, source/destination shard, copies, or the
    old/new shard counts).  The decision log is the artifact the determinism
    tests compare across repeats and across backends.
    """

    round: int
    action: str
    detail: str


@dataclass(frozen=True)
class ElasticityPlan:
    """What the policy wants done at the current barrier.

    Either ``new_shards`` is set (resize the shard set; migrations are
    pointless in the same round because the resize re-homes every group) or
    ``moves`` lists ``(group_root, destination_shard)`` re-homings to apply
    through the exchange machinery.
    """

    moves: Tuple[Tuple[str, int], ...] = ()
    new_shards: Optional[int] = None


class ElasticityPolicy:
    """Seeded, deterministic rebalancing policy for :class:`ShardSession`.

    Parameters
    ----------
    seed:
        Decision seed.  ``None`` breaks ties by lowest shard index (fully
        deterministic, matching the runtime's unseeded convention); an int
        seeds a private RNG used *only* to break exact load ties, so every
        decision is a pure function of (seed, observation sequence).
    migrate_imbalance:
        Shard-balance threshold (``max_load * shards / total``, the metric
        of :func:`repro.analysis.sharding.shard_balance`) above which hot
        label groups are migrated off the most-loaded shard.
    split_threshold:
        Mean copies per shard above which the shard set doubles (capped at
        ``max_shards``).
    merge_threshold:
        Mean copies per shard below which the shard set halves (floored at
        ``min_shards``).  Must be below ``split_threshold`` — the gap is
        the resize hysteresis band.
    patience:
        Consecutive pressured rounds required before the policy acts.
    cooldown:
        Quiet rounds after every action before pressure accumulates again.
    min_shards / max_shards:
        Bounds of the autoscaled shard count.
    max_moves_per_round:
        Cap on group migrations planned at one barrier.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        migrate_imbalance: float = 1.5,
        split_threshold: int = 4096,
        merge_threshold: int = 8,
        patience: int = 2,
        cooldown: int = 4,
        min_shards: int = 1,
        max_shards: int = 16,
        max_moves_per_round: int = 2,
    ) -> None:
        if migrate_imbalance < 1.0:
            raise ValueError("migrate_imbalance must be >= 1.0")
        if merge_threshold < 0 or split_threshold <= merge_threshold:
            raise ValueError(
                "split_threshold must exceed merge_threshold (the hysteresis band)"
            )
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if not (1 <= min_shards <= max_shards):
            raise ValueError("need 1 <= min_shards <= max_shards")
        if max_moves_per_round < 1:
            raise ValueError("max_moves_per_round must be >= 1")
        self.seed = seed
        self.migrate_imbalance = migrate_imbalance
        self.split_threshold = split_threshold
        self.merge_threshold = merge_threshold
        self.patience = patience
        self.cooldown = cooldown
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.max_moves_per_round = max_moves_per_round
        self.decisions: List[ElasticityDecision] = []
        self._rng = random.Random(seed)
        self._hot_rounds = 0
        self._cooldown_left = 0

    def reset(self) -> None:
        """Rearm the policy for a fresh session (decision log cleared).

        Called by :meth:`ShardCoordinator.start` so one policy object can
        drive consecutive runs with identical behavior per seed.
        """
        self.decisions = []
        self._rng = random.Random(self.seed)
        self._hot_rounds = 0
        self._cooldown_left = 0

    # -- observation --------------------------------------------------------------
    def pressure(self, sizes: Sequence[int]) -> bool:
        """Cheap per-round check: is rebalancing pressure sustained?

        Fed the per-shard sizes every barrier round (they come free with the
        local reports — no extra messages).  Returns ``True`` only when the
        imbalance or a resize watermark persisted for ``patience``
        consecutive rounds outside the cooldown window; only then does the
        session pay for label histograms and call :meth:`plan`.
        """
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return False
        total = sum(sizes)
        shards = len(sizes)
        if total <= 0 or shards == 0:
            self._hot_rounds = 0
            return False
        mean = total / shards
        imbalance = max(sizes) * shards / total
        pressured = (
            imbalance > self.migrate_imbalance
            or (mean > self.split_threshold and shards < self.max_shards)
            or (mean < self.merge_threshold and shards > self.min_shards)
        )
        if not pressured:
            self._hot_rounds = 0
            return False
        self._hot_rounds += 1
        return self._hot_rounds >= self.patience

    # -- planning -----------------------------------------------------------------
    def plan(
        self,
        round: int,
        sizes: Sequence[int],
        histograms: Sequence[Mapping[str, int]],
        routing,
    ) -> Optional[ElasticityPlan]:
        """Decide what to do at this barrier; ``None`` means stand pat.

        ``sizes`` and ``histograms`` are the per-shard loads and label
        histograms at the barrier; ``routing`` is the session's
        :class:`~repro.runtime.sharding.routing.RoutingTable`.  Resizes take
        priority over migrations (a resize re-homes every group anyway).
        Wildcard programs are inert: they already run on a single gather
        shard and no placement can change that.
        """
        self._hot_rounds = 0
        self._cooldown_left = self.cooldown
        if routing.wildcard:
            return None
        shards = len(sizes)
        total = sum(sizes)
        if total <= 0 or shards == 0:
            return None
        mean = total / shards
        if mean > self.split_threshold and shards < self.max_shards:
            new_shards = min(shards * 2, self.max_shards)
            self.decisions.append(
                ElasticityDecision(round, "split", f"{shards}->{new_shards}")
            )
            return ElasticityPlan(new_shards=new_shards)
        if mean < self.merge_threshold and shards > self.min_shards:
            new_shards = max((shards + 1) // 2, self.min_shards)
            self.decisions.append(
                ElasticityDecision(round, "merge", f"{shards}->{new_shards}")
            )
            return ElasticityPlan(new_shards=new_shards)
        if max(sizes) * shards / total <= self.migrate_imbalance:
            return None
        moves = self._plan_moves(round, sizes, histograms, routing)
        if not moves:
            return None
        return ElasticityPlan(moves=tuple(moves))

    def _plan_moves(
        self,
        round: int,
        sizes: Sequence[int],
        histograms: Sequence[Mapping[str, int]],
        routing,
    ) -> List[Tuple[str, int]]:
        """Greedy hot-group offloading with simulated load updates."""
        loads = list(sizes)
        planned: Dict[str, int] = {}
        moves: List[Tuple[str, int]] = []
        for _ in range(self.max_moves_per_round):
            total = sum(loads)
            if total <= 0:
                break
            hottest = max(range(len(loads)), key=lambda s: (loads[s], -s))
            if loads[hottest] * len(loads) / total <= self.migrate_imbalance:
                break
            coldest = self._coldest(loads, exclude=hottest)
            if coldest is None:
                break
            gap = loads[hottest] - loads[coldest]
            if gap <= 1:
                break
            candidate = self._pick_group(
                hottest, gap, histograms, routing, planned
            )
            if candidate is None:
                break
            copies, root = candidate
            planned[root] = coldest
            moves.append((root, coldest))
            loads[hottest] -= copies
            loads[coldest] += copies
            self.decisions.append(
                ElasticityDecision(
                    round,
                    "migrate",
                    f"{root}:{hottest}->{coldest} ({copies} copies)",
                )
            )
        return moves

    def _coldest(self, loads: Sequence[int], exclude: int) -> Optional[int]:
        """Least-loaded shard other than ``exclude`` (seeded tie-break)."""
        candidates = [s for s in range(len(loads)) if s != exclude]
        if not candidates:
            return None
        low = min(loads[s] for s in candidates)
        ties = [s for s in candidates if loads[s] == low]
        if len(ties) == 1 or self.seed is None:
            return ties[0]
        return self._rng.choice(ties)

    def _pick_group(
        self,
        hottest: int,
        gap: int,
        histograms: Sequence[Mapping[str, int]],
        routing,
        planned: Mapping[str, int],
    ) -> Optional[Tuple[int, str]]:
        """Largest group homed on ``hottest`` that fits in the load gap."""
        candidates: List[Tuple[int, str]] = []
        for root in sorted(routing.groups):
            if root in planned or routing.destination(root) != hottest:
                continue
            copies = sum(
                histograms[hottest].get(label, 0)
                for label in routing.groups[root]
            )
            if copies > 0:
                candidates.append((copies, root))
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        for copies, root in candidates:
            if copies <= gap:
                return copies, root
        return None
