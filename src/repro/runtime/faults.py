"""Seeded fault injection for the sharded runtime's recovery path.

Testing recovery needs crashes at *chosen* protocol points, reproducibly.
This module provides:

* :class:`FaultEvent` — one scheduled fault: kill a shard's worker at a
  barrier round (``"kill"``), delay its replies without killing it
  (``"delay"`` — pins that liveness polling never declares a slow worker
  dead), kill it at the Nth exchange (``"kill_on_exchange"`` — a crash
  while migrations are in flight, the hardest cut to recover), or sever
  its transport without killing the process (``"drop_connection"`` — a
  network partition; only the network backend can distinguish this from a
  crash, and it must treat both as worker death);
* :class:`FaultSchedule` — a consumable set of events, either hand-built or
  derived deterministically from a seed (:meth:`FaultSchedule.generate`),
  which is what lets Hypothesis shrink crash scenarios in the conformance
  fuzz suite;
* :class:`FaultInjector` — a transparent proxy wrapped around a session's
  backend (:func:`install_faults`): it counts rounds and exchanges, applies
  due events at the matching protocol points, and delegates everything else
  untouched.

Faults are injected at the backend's own abstraction level: against the
multiprocessing backend a kill is a real ``SIGKILL`` to the worker process
(exercising liveness detection, respawn, and reply-queue draining); against
the in-process backend it wipes the worker's partition and raises
:class:`~repro.runtime.recovery.WorkerDied` directly (exercising the full
checkpoint/rollback/replay logic deterministically, without forking).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from .recovery import WorkerDied

__all__ = ["FaultEvent", "FaultSchedule", "FaultInjector", "install_faults"]

#: Fault kinds accepted by :class:`FaultEvent`.
KILL = "kill"
DELAY = "delay"
KILL_ON_EXCHANGE = "kill_on_exchange"
DROP_CONNECTION = "drop_connection"
_KINDS = (KILL, DELAY, KILL_ON_EXCHANGE, DROP_CONNECTION)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is 1-based: the fault applies at the start of the ``at``-th
    barrier round (``kill``/``delay``/``drop_connection``) or the ``at``-th
    exchange (``kill_on_exchange``) — "at or after", so an event scheduled past the
    end of a short run simply never fires.  ``delay`` (seconds) is only
    meaningful for ``delay`` events.
    """

    kind: str
    shard: int
    at: int
    delay: float = 0.0

    def __post_init__(self) -> None:
        """Validate the event's kind and coordinates."""
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {_KINDS}")
        if self.shard < 0:
            raise ValueError("shard must be non-negative")
        if self.at < 1:
            raise ValueError("at is 1-based and must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")


class FaultSchedule:
    """A consumable collection of :class:`FaultEvent`\\ s.

    Each event fires at most once: the first protocol point whose counter
    reaches the event's ``at`` consumes it.  Build one explicitly from
    events, or derive one from a seed with :meth:`generate` so a single
    integer reproduces the whole crash scenario.
    """

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        """Wrap ``events`` (validated by their own constructor) for consumption."""
        self._pending: List[FaultEvent] = sorted(
            events, key=lambda event: (event.at, event.shard, event.kind)
        )
        self.applied: List[FaultEvent] = []

    @classmethod
    def generate(
        cls,
        seed: int,
        num_shards: int,
        kills: int = 1,
        delays: int = 0,
        exchange_kills: int = 0,
        drops: int = 0,
        max_round: int = 4,
        max_delay: float = 0.2,
    ) -> "FaultSchedule":
        """Derive a schedule deterministically from ``seed``.

        Victim shards and fault rounds are drawn from ``random.Random(seed)``
        so the same seed always produces the same scenario — the property the
        crash-injection fuzz suite relies on to shrink failures.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        rng = random.Random(seed)
        events = []
        for _ in range(kills):
            events.append(
                FaultEvent(KILL, rng.randrange(num_shards), rng.randint(1, max_round))
            )
        for _ in range(delays):
            events.append(
                FaultEvent(
                    DELAY,
                    rng.randrange(num_shards),
                    rng.randint(1, max_round),
                    delay=rng.uniform(0.01, max_delay),
                )
            )
        for _ in range(exchange_kills):
            events.append(
                FaultEvent(
                    KILL_ON_EXCHANGE, rng.randrange(num_shards), rng.randint(1, 2)
                )
            )
        for _ in range(drops):
            events.append(
                FaultEvent(
                    DROP_CONNECTION,
                    rng.randrange(num_shards),
                    rng.randint(1, max_round),
                )
            )
        return cls(events)

    def due(self, kinds: Sequence[str], counter: int) -> List[FaultEvent]:
        """Consume and return pending events of ``kinds`` with ``at <= counter``."""
        due = [
            event
            for event in self._pending
            if event.kind in kinds and event.at <= counter
        ]
        for event in due:
            self._pending.remove(event)
        return due

    @property
    def pending(self) -> List[FaultEvent]:
        """Events not yet applied."""
        return list(self._pending)

    def exhausted(self) -> bool:
        """True when every event has been consumed."""
        return not self._pending


class FaultInjector:
    """Backend proxy that applies a :class:`FaultSchedule` at protocol points.

    Wraps a shard backend: ``superstep_all`` advances the round counter and
    applies due ``kill``/``delay`` events first; ``execute_transfers``
    advances the exchange counter and applies due ``kill_on_exchange``
    events.  Every other attribute (including the recovery surface the
    session uses to restore state) delegates to the wrapped backend, so the
    proxy is installable on a live session (:func:`install_faults`).
    """

    def __init__(self, backend: Any, schedule: FaultSchedule) -> None:
        """Wrap ``backend``, applying faults from ``schedule``."""
        self._backend = backend
        self.schedule = schedule
        self.rounds_seen = 0
        self.exchanges_seen = 0

    def __getattr__(self, name: str) -> Any:
        """Delegate everything the proxy does not intercept."""
        return getattr(self._backend, name)

    # -- intercepted protocol points ----------------------------------------------
    def superstep_all(self, *args: Any, **kwargs: Any):
        """Apply due round faults, then run the round on the real backend."""
        self.rounds_seen += 1
        for event in self.schedule.due(
            (KILL, DELAY, DROP_CONNECTION), self.rounds_seen
        ):
            self._apply(event)
        return self._backend.superstep_all(*args, **kwargs)

    def execute_transfers(self, *args: Any, **kwargs: Any):
        """Apply due exchange faults, then execute the plan on the real backend."""
        self.exchanges_seen += 1
        for event in self.schedule.due((KILL_ON_EXCHANGE,), self.exchanges_seen):
            self._apply(event)
        return self._backend.execute_transfers(*args, **kwargs)

    # -- fault application --------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        backend = self._backend
        shard = event.shard % backend.num_shards
        self.schedule.applied.append(event)
        if event.kind == DROP_CONNECTION:
            # Checked before the ``_processes`` branches: the network backend
            # has worker processes too, but a partition severs only the
            # transport — the server process survives (briefly), yet the
            # coordinator must treat the dead connection exactly like a
            # crash.  Backends without a transport degrade to a kill.
            if hasattr(backend, "drop_connection"):
                backend.drop_connection(shard)
                return
            event = FaultEvent(KILL, event.shard, event.at)
        if event.kind == DELAY:
            if hasattr(backend, "_processes"):
                # The worker sleeps before serving its next command; replies
                # arrive late but the process stays alive — liveness polling
                # must not misread this as death.
                backend._send(shard, "sleep", event.delay)
            else:
                time.sleep(event.delay)
            return
        if hasattr(backend, "_processes"):
            # A real crash: SIGKILL the worker process mid-protocol.  The
            # death surfaces through the liveness-checked reply reads.
            backend._processes[shard].kill()
            return
        # In-process backends have no process to kill; simulate the crash by
        # discarding the worker's partition (real state loss) and surfacing
        # the same signal the mp backend's supervision would raise.
        backend.workers[shard].close()
        backend.workers[shard] = backend._fresh_worker(shard)
        raise WorkerDied(shard, "killed by fault injection")


def install_faults(session: Any, schedule: FaultSchedule) -> FaultInjector:
    """Wrap ``session``'s backend in a :class:`FaultInjector` and return it.

    Install after :meth:`~repro.runtime.sharding.ShardCoordinator.start` (or
    on ``StreamingGammaRuntime.session``) and before driving; the session
    must hold a :class:`~repro.runtime.recovery.RecoveryManager` for kill
    events to be recoverable.
    """
    injector = FaultInjector(session.backend, schedule)
    session.backend = injector
    return injector
