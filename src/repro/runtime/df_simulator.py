"""Discrete-step multi-PE simulator for dynamic dataflow graphs.

Unlike the sequential interpreter (one firing at a time, any order), the
simulator advances in *steps*: at each step every ready ``(node, tag)`` pair —
up to the number of processing elements — fires simultaneously, and the tokens
they emit become visible at the next step.  This is the execution discipline
of the dataflow runtimes the paper cites (§II-A) and it is what produces the
dataflow-side parallelism profiles and PE-count speedups of experiment E9.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dataflow.compiled_ops import CompiledGraphOps
from ..dataflow.graph import DataflowGraph
from ..dataflow.matching import TokenStore
from ..dataflow.token import INITIAL_TAG, Token
from ..gamma.engine import NonTerminationError
from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .metrics import ParallelRunMetrics
from .pe import PEPool

__all__ = ["DataflowSimulationResult", "DataflowSimulator", "simulate_graph"]

DEFAULT_MAX_STEPS = 1_000_000


@dataclass
class DataflowSimulationResult:
    """Outcome of one simulated parallel execution."""

    outputs: Dict[str, List[Token]]
    metrics: ParallelRunMetrics
    steps: int
    total_firings: int
    per_pe_load: List[int] = field(default_factory=list)

    def output_values(self, label: str) -> List[Any]:
        return [t.value for t in self.outputs.get(label, [])]

    def outputs_as_multiset(self) -> Multiset:
        elements = []
        for label, tokens in self.outputs.items():
            for token in tokens:
                elements.append(Element(value=token.value, label=label, tag=token.tag))
        return Multiset(elements)


class DataflowSimulator:
    """Step-synchronous multi-PE simulation of a dataflow graph."""

    def __init__(
        self,
        graph: DataflowGraph,
        num_pes: Optional[int] = None,
        seed: Optional[int] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        compiled: bool = True,
    ) -> None:
        self.graph = graph
        self.num_pes = num_pes
        self.max_steps = max_steps
        self.compiled = compiled
        # Same compiled kernels/emit plan as the sequential interpreter.
        self._ops: Optional[CompiledGraphOps] = CompiledGraphOps(graph) if compiled else None
        self._rng = random.Random(seed)

    def run(self, root_values: Optional[Dict[str, Any]] = None) -> DataflowSimulationResult:
        """Drain the graph, firing ready nodes in synchronous parallel steps."""
        store = TokenStore(self.graph)
        outputs: Dict[str, List[Token]] = {e.label: [] for e in self.graph.output_edges()}
        pool: PEPool = PEPool(self.num_pes)
        total_firings = 0

        values = {node.node_id: node.value for node in self.graph.roots()}
        if root_values:
            unknown = set(root_values) - set(values)
            if unknown:
                raise ValueError(f"root_values for unknown roots: {sorted(unknown)}")
            values.update(root_values)

        # Root injection counts as step 0 work: all roots fire simultaneously,
        # exactly like the initial multiset is present "for free" on the Gamma side.
        for root in self.graph.roots():
            self._emit(root.node_id, {"out": values[root.node_id]}, INITIAL_TAG, store, outputs)

        steps = 0
        while store.has_ready():
            if steps >= self.max_steps:
                # Same budget contract as the Gamma engines/simulator.
                raise NonTerminationError(f"simulation exceeded {self.max_steps} steps")
            ready = store.ready()
            self._rng.shuffle(ready)
            scheduled = pool.dispatch(ready)
            # Consume all scheduled entries against the *current* store state,
            # then emit: a synchronous step.
            fired: List[Tuple[str, int, Dict[str, Any], Dict[str, Any]]] = []
            ops = self._ops
            for node_id, tag in scheduled:
                inputs = store.consume(node_id, tag)
                if ops is not None:
                    produced = ops.kernels[node_id](inputs)
                    fired.append((node_id, tag + ops.tag_delta[node_id], inputs, produced))
                else:
                    node = self.graph.node(node_id)
                    produced = node.compute(inputs)
                    fired.append((node_id, tag + node.tag_delta(), inputs, produced))
            for node_id, out_tag, _inputs, produced in fired:
                self._emit(node_id, produced, out_tag, store, outputs)
            total_firings += len(fired)
            steps += 1

        metrics = ParallelRunMetrics.from_profile(pool.profile, num_pes=self.num_pes)
        return DataflowSimulationResult(
            outputs=outputs,
            metrics=metrics,
            steps=steps,
            total_firings=total_firings,
            per_pe_load=pool.load_balance(),
        )

    def _emit(
        self,
        node_id: str,
        produced: Dict[str, Any],
        tag: int,
        store: TokenStore,
        outputs: Dict[str, List[Token]],
    ) -> None:
        ops = self._ops
        for port, value in produced.items():
            token = Token(value, tag)
            edges = (
                ops.emit_edges(node_id, port)
                if ops is not None
                else self.graph.out_edges(node_id, port)
            )
            for edge in edges:
                if edge.dst is None:
                    outputs.setdefault(edge.label, []).append(token)
                else:
                    store.deposit(edge.dst, edge.dst_port, token)


def simulate_graph(
    graph: DataflowGraph,
    num_pes: Optional[int] = None,
    seed: Optional[int] = None,
    root_values: Optional[Dict[str, Any]] = None,
) -> DataflowSimulationResult:
    """Convenience wrapper around :class:`DataflowSimulator`."""
    return DataflowSimulator(graph, num_pes=num_pes, seed=seed).run(root_values)
