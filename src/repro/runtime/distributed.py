"""Distributed multiset runtime (the paper's IoT motivation).

The paper motivates the equivalence with the possibility of executing dataflow
programs "in a distributed multiset environment", e.g. an Internet-of-Things
deployment where the multiset is spread over many small devices.  This module
is the runtime's front door; it offers three backends through
:class:`DistributedGammaRuntime`:

* ``backend="legacy"`` (default) — the original step-synchronous *simulation*:
  hash-partitioned workers fire at most ``firings_per_worker_step`` local
  matches per global step, starving workers migrate one element at a time
  from random peers, and termination is detected by rebuilding the union
  multiset and probing it.  Kept as the cost-model baseline of experiment
  E9(d) and of ``BENCH_sharded_runtime``.
* ``backend="inprocess"`` / ``backend="multiprocessing"`` — the real sharded
  execution subsystem (:mod:`repro.runtime.sharding`): every shard runs its
  own compiled :class:`~repro.gamma.scheduler.ReactionScheduler`, fires
  maximal local supersteps through the codegenned collectors and batched
  rewrites, and participates in a superstep-barrier protocol with
  footprint-routed batched migrations, work stealing, and two-phase global
  quiescence detection.  The multiprocessing backend runs shard workers as
  OS processes exchanging pickled element batches over queues.

Each legacy worker holds a persistent
:class:`~repro.gamma.scheduler.ReactionScheduler` over its partition, so
local matching runs on an incrementally maintained index — migrations and
firings flow through the multiset change notifications and re-arm exactly the
reactions whose consumed labels were touched, instead of rebuilding a matcher
per worker per step.

The result reports firings, steps, migrations and messages, so the partition
sweep of experiment E9(d) can show the locality/communication trade-off.

All of the above execute in batch mode; for **online** execution — elements
injected while the run is live, routed to their home shards at superstep
boundaries — wrap any backend in
:class:`repro.runtime.streaming.StreamingGammaRuntime`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..api import RuntimeConfig

from ..gamma.engine import NonTerminationError
from ..gamma.matching import Match, Matcher
from ..gamma.program import GammaProgram
from ..gamma.scheduler import ReactionScheduler
from ..multiset.element import Element
from ..multiset.multiset import Multiset
from ..multiset.partition import home_of

__all__ = ["DistributedMultiset", "DistributedRunResult", "DistributedGammaRuntime"]

#: Sentinel distinguishing "caller never passed firings_per_worker_step"
#: (sharded backends then default to maximal local batches) from an explicit
#: cap, including an explicit 1.
_UNSET_FIRINGS = object()


class DistributedMultiset:
    """A multiset hash-partitioned over a fixed number of workers."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.partitions: List[Multiset] = [Multiset() for _ in range(num_partitions)]

    # -- placement -----------------------------------------------------------------
    def home_of(self, element: Element) -> int:
        """The partition an element is routed to by default (hash placement).

        Placement uses :meth:`Element.stable_hash`, a digest of the canonical
        ``(value, label, tag)`` triple, **not** the builtin ``hash()``: the
        builtin salts strings per process (``PYTHONHASHSEED``), and a
        distributed deployment must route an element to the same home from
        every node and every restart.  The placement function is shared with
        the sharded runtime (:func:`repro.multiset.partition.home_of`), so
        both runtimes agree on every element's home.
        """
        return home_of(element, self.num_partitions)

    def add(self, element: Element, partition: Optional[int] = None) -> int:
        """Add ``element`` (to its home partition unless ``partition`` is given)."""
        index = self.home_of(element) if partition is None else partition
        self.partitions[index].add(element)
        return index

    def add_all(self, elements: Sequence[Element]) -> None:
        for element in elements:
            self.add(element)

    def remove(self, element: Element, partition: int) -> None:
        self.partitions[partition].remove(element)

    def migrate(self, element: Element, source: int, destination: int) -> None:
        """Move one copy of ``element`` between partitions."""
        self.partitions[source].remove(element)
        self.partitions[destination].add(element)

    # -- views ----------------------------------------------------------------------
    def union(self) -> Multiset:
        """The global multiset (union of all partitions)."""
        total = Multiset()
        for partition in self.partitions:
            total = total + partition
        return total

    def sizes(self) -> List[int]:
        return [len(p) for p in self.partitions]

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)


@dataclass
class DistributedRunResult:
    """Outcome of a distributed execution."""

    final: Multiset
    steps: int
    firings: int
    migrations: int
    messages: int
    per_partition_firings: List[int] = field(default_factory=list)

    def values_with_label(self, label: str) -> List:
        return self.final.values_with_label(label)

    @property
    def communication_ratio(self) -> float:
        """Messages per firing — the locality indicator reported by E9(d).

        Division semantics for the zero-firing edge cases: a run that fired
        nothing but still exchanged messages (e.g. an already-stable initial
        multiset, whose termination detection costs one message round) has
        *infinitely bad* locality and reports ``float("inf")`` — the earlier
        behavior reported ``0.0``, which read as perfect locality.  A run
        with neither firings nor messages reports ``0.0``.
        """
        if self.firings:
            return self.messages / self.firings
        return float("inf") if self.messages else 0.0


class DistributedGammaRuntime:
    """Execution of a Gamma program over a partitioned multiset.

    ``backend`` selects how the partitions execute: ``"legacy"`` (default)
    keeps the original step-synchronous simulation; ``"inprocess"`` and
    ``"multiprocessing"`` run the sharded subsystem
    (:class:`repro.runtime.sharding.ShardCoordinator`) over the same
    partitioning, returning a
    :class:`~repro.runtime.sharding.ShardedRunResult` (a
    :class:`DistributedRunResult` subclass, so callers read one interface).
    """

    #: Backend names accepted by :class:`DistributedGammaRuntime`.
    BACKENDS = ("legacy", "inprocess", "multiprocessing", "network")

    def __init__(
        self,
        program: GammaProgram,
        num_partitions: Optional[int] = None,
        seed: Optional[int] = None,
        max_steps: Optional[int] = None,
        firings_per_worker_step=_UNSET_FIRINGS,
        compiled: Optional[bool] = None,
        local_batches: bool = False,
        backend: Optional[str] = None,
        config: Optional["RuntimeConfig"] = None,
    ) -> None:
        """Configure a distributed run.

        The preferred configuration surface is ``config``, a
        :class:`repro.api.RuntimeConfig` validated against the
        ``"distributed"`` surface; the partition count may come positionally
        (``num_partitions``) or as ``config.shards`` (they must agree when
        both are given).  ``config`` is also the *only* way to enable the
        fault-tolerance and elasticity layers here (``config.recovery``,
        ``config.checkpoint_interval``, ``config.elasticity`` — sharded
        backends only).  The ``seed`` / ``max_steps`` / ``compiled`` /
        ``backend`` keywords are the legacy surface: still honored, but they
        emit a ``DeprecationWarning`` and cannot be combined with ``config``.

        ``local_batches=True`` switches every legacy worker to superstep
        firing: per global step a worker extracts a maximal disjoint set of
        *local* matches (capped at ``firings_per_worker_step``; pass ``None``
        for uncapped) and applies it through one batched rewrite, instead of
        the default one-at-a-time firing loop.  Starvation/migration and
        termination detection are unchanged.

        For the sharded backends, ``firings_per_worker_step`` becomes the
        per-superstep firing budget.  Left unset it defaults to ``None`` —
        maximal local batches — while the legacy default stays 1; an
        *explicit* value (including an explicit 1) is honored by every
        backend.  ``max_steps`` bounds the barrier rounds, and ``seed``
        drives the shards' derived scheduler seeds.
        """
        from ..api import RuntimeConfig, _legacy_names, _reject_config_mix, _warn_legacy

        legacy = _legacy_names(
            (
                ("seed", seed),
                ("max_steps", max_steps),
                ("compiled", compiled),
                ("backend", backend),
            )
        )
        if config is not None:
            _reject_config_mix(legacy)
            cfg = config
        else:
            cfg = RuntimeConfig(
                backend=backend,
                shards=num_partitions,
                seed=seed,
                max_steps=max_steps,
                compiled=compiled,
            )
        cfg.validate("distributed")
        if config is not None and num_partitions is not None:
            if cfg.shards is not None and cfg.shards != num_partitions:
                raise ValueError(
                    f"num_partitions={num_partitions} conflicts with "
                    f"config.shards={cfg.shards}"
                )
        shards = num_partitions if num_partitions is not None else cfg.shards
        if shards is None:
            raise ValueError(
                "num_partitions is required (positionally or as config.shards)"
            )
        if shards <= 0:
            raise ValueError("shards must be positive")
        if config is None and legacy:
            _warn_legacy("DistributedGammaRuntime", legacy)

        resolved_backend = cfg.backend if cfg.backend is not None else "legacy"
        self._explicit_firings = firings_per_worker_step is not _UNSET_FIRINGS
        if not self._explicit_firings:
            firings_per_worker_step = 1
        if (
            resolved_backend == "legacy"
            and local_batches is False
            and firings_per_worker_step is None
        ):
            raise ValueError(
                "firings_per_worker_step=None (uncapped) requires local_batches=True"
            )
        self.program = program
        self.num_partitions = shards
        self.backend = resolved_backend
        self.seed = cfg.seed
        self.max_steps = 1_000_000 if cfg.max_steps is None else cfg.max_steps
        self.firings_per_worker_step = firings_per_worker_step
        self.compiled = True if cfg.compiled is None else cfg.compiled
        self.local_batches = local_batches
        # Config-only layers (no legacy keyword ever existed for these).
        self.recovery = cfg.recovery
        self.checkpoint_interval = cfg.checkpoint_interval
        self.elasticity = cfg.elasticity
        self._rng = random.Random(self.seed)

    def run(self, initial: Optional[Multiset] = None) -> DistributedRunResult:
        """Run the program over ``num_partitions`` partitions to stability.

        ``initial`` defaults to the program's bundled initial multiset.
        Raises :class:`~repro.gamma.engine.NonTerminationError` when the step
        budget is exhausted and ``ValueError`` when no initial multiset is
        available.
        """
        # Re-seeded per run, NOT once in __init__: one runtime object must
        # produce identical traces on consecutive run() calls with a fixed
        # seed (the first run used to advance a shared RNG, silently making
        # the second run diverge).
        self._rng = random.Random(self.seed)
        if self.backend != "legacy":
            return self._run_sharded(initial)
        source = initial if initial is not None else self.program.initial
        if source is None:
            raise ValueError("an initial multiset is required")

        distributed = DistributedMultiset(self.num_partitions)
        distributed.add_all(list(source))

        steps = 0
        firings = 0
        migrations = 0
        messages = 0
        per_partition_firings = [0] * self.num_partitions
        # One persistent scheduler per worker: migrations/firings keep the
        # local indexes fresh through the multiset change notifications.
        schedulers = [
            ReactionScheduler(
                self.program.reactions, partition, rng=self._rng, compiled=self.compiled
            )
            for partition in distributed.partitions
        ]

        try:
            while True:
                if steps >= self.max_steps:
                    raise NonTerminationError(
                        f"distributed run exceeded {self.max_steps} steps on {self.program.name!r}"
                    )
                fired_this_step = 0
                starving: List[int] = []

                for worker in range(self.num_partitions):
                    local = distributed.partitions[worker]
                    scheduler = schedulers[worker]
                    executed = 0
                    if self.local_batches:
                        # Superstep firing: one maximal disjoint local batch,
                        # applied through one batched rewrite.
                        scheduler.refresh()
                        matches = scheduler.collect_superstep_matches(
                            budget=self.firings_per_worker_step
                        )
                        if matches:
                            removed: List[Element] = []
                            added: List[Element] = []
                            for match in matches:
                                removed.extend(match.consumed)
                                added.extend(match.produced())
                            if self.compiled:
                                local.rewrite_batch_unchecked(removed, added)
                            else:
                                local.replace(removed, added)
                            executed = len(matches)
                    else:
                        apply_rewrite = (
                            local.rewrite_unchecked if self.compiled else local.replace
                        )
                        while executed < self.firings_per_worker_step:
                            scheduler.refresh()
                            match = scheduler.find_first(shuffled=True)
                            if match is None:
                                break
                            produced = match.produced()
                            apply_rewrite(match.consumed, produced)
                            executed += 1
                    if executed == 0:
                        starving.append(worker)
                    fired_this_step += executed
                    per_partition_firings[worker] += executed

                firings += fired_this_step
                steps += 1

                if fired_this_step == 0:
                    # Global termination check: one message per worker.
                    messages += self.num_partitions
                    union = self._global_match_exists(distributed)
                    if not union:
                        break
                    # Not stable yet: rebalance by migrating elements toward worker 0
                    # until it can match (simple work-pulling strategy).
                    migrations += self._pull_elements(distributed, 0)
                    messages += 1
                elif starving:
                    # Starving workers pull one element each from a random peer.
                    for worker in starving:
                        moved = self._steal_one(distributed, worker)
                        migrations += moved
                        messages += moved
        finally:
            for scheduler in schedulers:
                scheduler.detach()

        return DistributedRunResult(
            final=distributed.union(),
            steps=steps,
            firings=firings,
            migrations=migrations,
            messages=messages,
            per_partition_firings=per_partition_firings,
        )

    # -- sharded backends ---------------------------------------------------------------

    def _run_sharded(self, initial: Optional[Multiset]) -> DistributedRunResult:
        """Delegate to the sharded subsystem (``backend != "legacy"``).

        The import is local to keep :mod:`repro.runtime.sharding` (which
        reuses :class:`DistributedRunResult`) free of import cycles.
        """
        from .sharding import ShardCoordinator

        # The legacy *default* (one firing per worker step) would disable
        # superstep batching entirely, so an unset cap widens to maximal
        # local batches; an explicit cap — including an explicit 1 — is
        # honored as given.
        budget = self.firings_per_worker_step if self._explicit_firings else None
        coordinator = ShardCoordinator(
            self.program,
            self.num_partitions,
            backend=self.backend,
            seed=self.seed,
            max_rounds=self.max_steps,
            superstep_budget=budget,
            compiled=self.compiled,
            recovery=self.recovery,
            checkpoint_rounds=self.checkpoint_interval,
            elasticity=self.elasticity,
        )
        return coordinator.run(initial)

    # -- helpers -----------------------------------------------------------------------

    def _global_match_exists(self, distributed: DistributedMultiset) -> bool:
        union = distributed.union()
        matcher = Matcher(union)
        return any(matcher.is_enabled(reaction) for reaction in self.program.reactions)

    def _steal_one(self, distributed: DistributedMultiset, worker: int) -> int:
        donors = [
            index
            for index in range(self.num_partitions)
            if index != worker and len(distributed.partitions[index]) > 0
        ]
        if not donors:
            return 0
        donor = self._rng.choice(donors)
        element = self._rng.choice(distributed.partitions[donor].distinct())
        distributed.migrate(element, donor, worker)
        return 1

    def _pull_elements(self, distributed: DistributedMultiset, destination: int) -> int:
        """Pull everything to ``destination`` so cross-partition matches can fire."""
        moved = 0
        for index in range(self.num_partitions):
            if index == destination:
                continue
            for element in list(distributed.partitions[index]):
                distributed.migrate(element, index, destination)
                moved += 1
        return moved
