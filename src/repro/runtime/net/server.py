"""Asyncio shard server: one shard's worker behind a framed socket.

The data plane of the network backend.  Each shard server owns a
:class:`~repro.runtime.sharding.shard.ShardWorker` and serves the *same*
command protocol the multiprocessing backend speaks over queues
(:func:`repro.runtime.sharding.mp._shard_worker_main`), transported as
length-prefixed frames (:mod:`repro.runtime.net.frames`) over a loopback TCP
connection.

Wire protocol (control plane → shard server, strict request/reply order)::

    ("auth", token_bytes)            -> no reply  spawn-time shared secret;
                                                 required first when the
                                                 server was launched with a
                                                 token — a missing or wrong
                                                 token closes the connection
                                                 without a reply
    ("hello", {shard, num_shards, seed, compiled, superstep, reactions})
        -> ("welcome", {"shard": shard})         membership handshake; the
                                                 server builds its worker and
                                                 routing table from this frame
    ("load"|"ingest", column_batch)  -> ("ok", copies)
    ("step", (max_supersteps, budget))
        -> ("report", (shard, fired, supersteps, size, stable))
                                                 ``stable`` is this shard's
                                                 quiescence vote, riding the
                                                 step reply exactly as in the
                                                 queue protocol
    ("labels", None)                 -> ("labels", {label: count})
    ("extract_labels", [label...])   -> ("batch", column_batch)
    ("extract_some", limit)          -> ("batch", column_batch)
    ("snapshot", None)               -> ("batch", column_batch)
    ("reset", column_batch)          -> ("reset_ok", shard)    checkpoint
                                                 restore; the distinctive kind
                                                 lets the client drain stale
                                                 replies of an aborted round
    ("sleep", seconds)               -> no reply (fault-injection delay hook)
    ("stop", None)                   -> ("stopped", shard), then close

Any exception is reported as ``("error", traceback_text)`` before the
connection closes, so the control plane fails loudly instead of hanging.  A
dropped connection (client abort, network fault) simply ends the handler —
the control plane observes the EOF on its side as a dead worker.

**Trust boundary.**  The ``hello`` frame ships the reaction tuple as a
tagged pickle, and ``pickle.loads`` is arbitrary code execution — so a
spawned server *requires* the ``auth`` preamble before it will decode
anything pickle-bearing: the backend generates a random token per run and
hands it to the server through the spawn pipe (never the network), and the
server compares in constant time.  Until the token matches, frames are
decoded with ``allow_pickle=False`` (a crafted pickle frame is just a
:class:`~repro.runtime.net.frames.FramePickleRejected` and a closed
connection), so any local process that race-connects to the loopback port
gets nothing.  A failed authentication does not count as the server's one
control connection — the real control plane can still connect.

:func:`shard_server_main` is the subprocess entry point: it binds an
ephemeral loopback port, reports the port number back through a
``multiprocessing`` pipe, serves until its (single) control connection ends,
and exits.  :func:`handle_shard_connection` is deliberately spawnable with
``asyncio.start_server`` inside a test process too (no token, so no auth
preamble), so the protocol logic is exercised under coverage without
crossing a process boundary.
"""

from __future__ import annotations

import asyncio
import hmac
import traceback
from typing import Any, Optional, Tuple

from ...multiset.columnar import from_column_batch, to_column_batch
from ..sharding.routing import RoutingTable
from ..sharding.shard import ShardWorker
from .frames import ConnectionClosed, FrameError, read_frame, write_frame

__all__ = ["handle_shard_connection", "shard_server_main"]


def _build_worker(config: dict) -> Tuple[ShardWorker, RoutingTable]:
    """Construct the shard worker + routing table a ``hello`` frame describes."""
    reactions = tuple(config["reactions"])
    worker = ShardWorker(
        config["shard"],
        reactions,
        seed=config["seed"],
        compiled=config["compiled"],
        superstep=config["superstep"],
    )
    routing = RoutingTable(reactions, config["num_shards"])
    return worker, routing


async def handle_shard_connection(
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
    auth_token: Optional[bytes] = None,
) -> bool:
    """Serve one control-plane connection until ``stop`` or disconnect.

    With an ``auth_token`` set, the first frame must be ``("auth", token)``
    — decoded pickle-free, compared in constant time, and answered with
    silence: a wrong or missing token just closes the connection (returns
    ``False``, so a single-shot server does not count it as its control
    connection).  Then the ``hello`` handshake, whose reaction tuple is the
    one pickle-bearing frame of the protocol; every later frame is a
    ``(command, payload)`` request answered in strict order.  Errors are
    reported as ``("error", traceback)`` replies; a dropped connection ends
    the handler silently (the peer already knows).  Returns ``True`` once
    the connection got past authentication.
    """
    worker = None
    try:
        if auth_token is not None:
            try:
                auth, _ = await read_frame(reader)  # allow_pickle=False
            except FrameError:
                return False  # hostile or vanished peer; say nothing
            if (
                not isinstance(auth, tuple)
                or len(auth) != 2
                or auth[0] != "auth"
                or not isinstance(auth[1], bytes)
                or not hmac.compare_digest(auth[1], auth_token)
            ):
                return False
        try:
            hello, _ = await read_frame(reader, allow_pickle=True)
        except FrameError:
            return True  # peer vanished before the handshake
        command, config = hello
        if command != "hello":
            await write_frame(
                writer, ("error", f"expected 'hello' handshake, got {command!r}")
            )
            return True
        worker, routing = _build_worker(config)
        shard = worker.shard
        reactions = tuple(config["reactions"])
        await write_frame(writer, ("welcome", {"shard": shard}))
        while True:
            try:
                frame, _ = await read_frame(reader, allow_pickle=True)
            except (ConnectionClosed, FrameError, ConnectionError):
                return True  # control plane dropped us; nothing left to reply to
            command, payload = frame
            if command == "stop":
                worker.close()
                worker = None
                await write_frame(writer, ("stopped", shard))
                return True
            if command == "load" or command == "ingest":
                copies = worker.ingest(from_column_batch(payload))
                await write_frame(writer, ("ok", copies))
            elif command == "step":
                max_supersteps, budget = payload
                report = worker.run_local(
                    max_supersteps=max_supersteps, budget=budget
                )
                await write_frame(
                    writer,
                    (
                        "report",
                        (
                            report.shard,
                            report.fired,
                            report.supersteps,
                            report.size,
                            report.stable,
                        ),
                    ),
                )
            elif command == "labels":
                await write_frame(writer, ("labels", worker.label_counts()))
            elif command == "extract_labels":
                pairs = worker.extract_labels(payload)
                await write_frame(writer, ("batch", to_column_batch(pairs)))
            elif command == "extract_some":
                pairs = worker.extract_some(payload, routing)
                await write_frame(writer, ("batch", to_column_batch(pairs)))
            elif command == "snapshot":
                await write_frame(writer, ("batch", to_column_batch(worker.counts())))
            elif command == "reset":
                # Checkpoint restore: rebuild the worker from scratch and
                # ingest the checkpoint batch, mirroring the queue protocol.
                worker.close()
                worker = ShardWorker(
                    shard,
                    reactions,
                    seed=config["seed"],
                    compiled=config["compiled"],
                    superstep=config["superstep"],
                )
                worker.ingest(from_column_batch(payload))
                await write_frame(writer, ("reset_ok", shard))
            elif command == "sleep":
                # Fault-injection hook: delay the *next* reply without dying.
                await asyncio.sleep(payload)
            else:
                raise ValueError(f"unknown shard command {command!r}")
    except BaseException:
        try:
            await write_frame(writer, ("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - peer gone while reporting
            pass
        return True
    finally:
        if worker is not None:
            worker.close()
        try:
            writer.close()
        except Exception:  # pragma: no cover - transport already torn down
            pass


async def serve_one_connection(
    port_callback, auth_token: Optional[bytes] = None
) -> None:
    """Serve shard connections on an ephemeral loopback port until one ends.

    ``port_callback`` receives the bound port once the socket is listening.
    The server exits when its first completed *authenticated* connection
    ends — the control plane holds exactly one connection per shard server
    and respawns a fresh process instead of reconnecting, so a single-shot
    lifetime keeps process management unambiguous, and a stranger failing
    the ``auth_token`` preamble cannot end the server's lifetime out from
    under the real control plane.
    """
    done = asyncio.Event()

    async def handler(reader: Any, writer: Any) -> None:
        served = False
        try:
            served = await handle_shard_connection(reader, writer, auth_token)
        finally:
            if served:
                done.set()

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    try:
        port_callback(server.sockets[0].getsockname()[1])
        await done.wait()
    finally:
        server.close()
        await server.wait_closed()


def shard_server_main(conn: Any, auth_token: Optional[bytes] = None) -> None:
    """Shard-server subprocess entry: bind, report the port, serve, exit.

    ``conn`` is the write end of a ``multiprocessing.Pipe``; the bound
    ephemeral port is sent through it (then the pipe is closed) so the parent
    can connect without any port-assignment race.  ``auth_token`` arrives
    through the spawn arguments — the same trusted channel — and gates the
    socket (see the module docstring's trust boundary).
    """

    def report(port: int) -> None:
        conn.send(port)
        conn.close()

    asyncio.run(serve_one_connection(report, auth_token))
