"""Network shard backend: the coordinator as a TCP control plane.

Runs the same superstep-barrier protocol as
:class:`~repro.runtime.sharding.mp.MultiprocessingBackend`, but the command
channel is a framed loopback socket per shard instead of a pair of
``multiprocessing`` queues — the single-machine form of the multi-node
runtime the ROADMAP targets.  Shard servers
(:mod:`repro.runtime.net.server`) are spawned as subprocesses; membership is
established by the ``hello``/``welcome`` handshake, which also distributes
the program and each shard's routing parameters, so a server process starts
generic and is specialized entirely over the wire.

Protocol discipline: within one backend call, commands are *broadcast* (all
frames written back-to-back) before any reply is read, and replies are
collected in shard order — the same send-all/collect-in-order pattern the
queue backend uses, which both overlaps the shards' work on real cores and
keeps per-connection request/reply pairing unambiguous without locks.

**Supervision.**  Every reply read is bounded by the reply timeout
(``REPRO_NET_TIMEOUT`` env seconds, default 300) and fails *fast* on
transport loss: a SIGKILL'd server closes its TCP side, so the pending read
raises within the event loop's notice of the EOF rather than after the
timeout.  Unsupervised (the default), any loss tears the backend down and
raises ``RuntimeError``; supervised (set by sessions holding a
:class:`~repro.runtime.recovery.RecoveryManager`), it raises
:class:`~repro.runtime.recovery.WorkerDied` and leaves survivors up so the
session can :meth:`NetworkBackend.recover` — respawn dead servers, broadcast
a checkpoint ``reset``, and drain each connection until the distinctive
``reset_ok`` acknowledgement discards the aborted round's stale replies.

:meth:`NetworkBackend.drop_connection` is the fault-injection hook: it
aborts one shard's client-side transport (the network analogue of a cable
pull), after which the next read on that shard surfaces ``WorkerDied`` and
recovery respawns the server.  :attr:`NetworkBackend.wire_bytes` counts
every frame byte sent or received, feeding
:func:`repro.analysis.sharding.communication_volume`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import secrets
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ...gamma.reaction import Reaction
from ...multiset.columnar import (
    column_batch_copies,
    from_column_batch,
    to_column_batch,
)
from ...multiset.element import Element
from ...multiset.multiset import Multiset
from ..recovery import WorkerDied
from ..sharding.quiescence import QuiescenceDetector
from ..sharding.routing import RoutingTable, Transfer
from ..sharding.shard import LocalReport
from .frames import FrameError, read_frame, write_frame
from .server import shard_server_main

__all__ = ["NetworkBackend"]

#: Default seconds one reply read may take before the worker is declared
#: unresponsive (matches the queue backend's reply timeout); override with
#: the ``REPRO_NET_TIMEOUT`` environment variable — CI pins a small value so
#: a hung socket fails the job fast instead of eating the runner.
_REPLY_TIMEOUT = 300.0

#: Seconds to wait for a freshly spawned server to report its port.
_SPAWN_TIMEOUT = 30.0


def _reply_timeout() -> float:
    """The effective reply timeout (env-overridable for bounded CI runs)."""
    raw = os.environ.get("REPRO_NET_TIMEOUT", "")
    try:
        return float(raw) if raw else _REPLY_TIMEOUT
    except ValueError:  # pragma: no cover - malformed env
        return _REPLY_TIMEOUT


class NetworkBackend:
    """Shard backend with every worker behind a framed loopback socket."""

    name = "network"

    def __init__(
        self,
        reactions: Sequence[Reaction],
        num_shards: int,
        routing: RoutingTable,
        seed: Optional[int] = None,
        compiled: bool = True,
        superstep: bool = True,
    ) -> None:
        """Spawn ``num_shards`` shard servers and complete their handshakes.

        Server processes use the ``forkserver`` start method when available
        (``spawn`` otherwise) — never ``fork``: respawn, resize, and
        recovery all launch servers while the backend's event-loop thread
        (and possibly executor threads) are alive, and forking a
        multi-threaded parent is deprecated and deadlock-prone.  The
        forkserver helper forks from a clean, thread-free process instead,
        with :mod:`repro.runtime.net.server` preloaded so each shard server
        skips the import cost.  Construction fails fast — an unreachable or
        misbehaving server aborts the whole backend.
        """
        self.routing = routing
        self.num_shards = num_shards
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "forkserver" if "forkserver" in methods else "spawn"
        )
        if hasattr(self._context, "set_forkserver_preload"):
            self._context.set_forkserver_preload(["repro.runtime.net.server"])
        #: Per-backend shared secret: servers receive it through the spawn
        #: arguments and refuse (silently) any connection that does not
        #: present it first, so no unauthenticated peer ever reaches the
        #: pickle-bearing part of the protocol.
        self._auth = secrets.token_bytes(32)
        self._hello = {
            "num_shards": num_shards,
            "seed": seed,
            "compiled": compiled,
            "superstep": superstep,
            "reactions": tuple(reactions),
        }
        self._timeout = _reply_timeout()
        self._processes: List[Any] = [None] * num_shards
        self._ports: List[Optional[int]] = [None] * num_shards
        self._readers: List[Any] = [None] * num_shards
        self._writers: List[Any] = [None] * num_shards
        #: Total frame bytes sent plus received over every shard connection.
        self.wire_bytes = 0
        self._stopped = False
        #: When True, worker loss raises :class:`WorkerDied` (leaving the
        #: backend up for :meth:`recover`) instead of tearing everything down.
        self.supervised = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        try:
            for shard in range(num_shards):
                self._launch(shard)
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._loop.run_forever,
                name="repro-net-backend",
                daemon=True,
            )
            self._thread.start()
            self._run(self._connect_many(range(num_shards)))
        except BaseException:
            self.stop()
            raise

    # -- process + connection plumbing ---------------------------------------------
    def _launch(self, shard: int) -> None:
        """Spawn shard ``shard``'s server process and learn its port."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=shard_server_main, args=(child_conn, self._auth), daemon=True
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_SPAWN_TIMEOUT):
            process.kill()
            raise RuntimeError(
                f"shard {shard} server reported no port within {_SPAWN_TIMEOUT}s"
            )
        self._ports[shard] = parent_conn.recv()
        parent_conn.close()
        self._processes[shard] = process

    async def _connect(self, shard: int) -> None:
        """Open shard ``shard``'s connection and run the membership handshake.

        The ``auth`` preamble presents the spawn-time token before the
        pickle-bearing ``hello``; a server that was not ours (or a hijacked
        port) stays silent and the handshake read fails loudly.
        """
        reader, writer = await asyncio.open_connection("127.0.0.1", self._ports[shard])
        self._readers[shard] = reader
        self._writers[shard] = writer
        await self._post(shard, "auth", self._auth)
        hello = dict(self._hello)
        hello["shard"] = shard
        await self._post(shard, "hello", hello)
        welcome = await self._reply(shard, "welcome")
        if welcome["shard"] != shard:  # pragma: no cover - handshake bug
            raise RuntimeError(
                f"shard {shard} server answered as shard {welcome['shard']}"
            )

    async def _connect_many(self, shards: Iterable[int]) -> None:
        shards = list(shards)
        results = await asyncio.gather(
            *(self._connect(shard) for shard in shards), return_exceptions=True
        )
        for shard, result in zip(shards, results):
            if isinstance(result, WorkerDied):
                raise result
            if isinstance(result, BaseException):
                raise WorkerDied(shard, f"handshake failed: {result}") from result

    def _run(self, coro):
        """Run a protocol coroutine on the loop thread; translate supervision.

        The synchronous boundary of the backend: coroutines always signal
        loss as :class:`WorkerDied`; here, unsupervised backends convert it
        into the fail-loudly contract (full teardown + ``RuntimeError``).
        """
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result()
        except WorkerDied as died:
            if self.supervised:
                raise
            self.stop()
            raise RuntimeError(f"shard {died.shard} worker {died.reason}") from None

    async def _post(self, shard: int, command: str, payload: Any = None) -> None:
        """Write one command frame to shard ``shard`` (no reply read)."""
        writer = self._writers[shard]
        if writer is None or writer.is_closing():
            raise WorkerDied(shard, f"connection lost before {command!r}")
        try:
            self.wire_bytes += await write_frame(writer, (command, payload))
        except (FrameError, ConnectionError, OSError) as exc:
            raise WorkerDied(shard, f"send of {command!r} failed: {exc}") from None

    def _send(self, shard: int, command: str, payload: Any = None) -> None:
        """Post one no-reply command from sync code (fault-injection hook).

        Mirrors the multiprocessing backend's ``_send`` so the shared fault
        injector can deliver ``sleep`` commands to either backend.
        """
        self._run(self._post(shard, command, payload))

    async def _next_reply(self, shard: int, expected: str) -> Tuple[str, Any]:
        """Read shard ``shard``'s next reply frame, bounded by the timeout.

        Transport loss (EOF, reset, torn frame) surfaces immediately as
        :class:`WorkerDied` — a killed server closes its socket, so death is
        detected at EOF speed, not timeout speed.  An alive-but-silent
        server hits the timeout; under supervision it is killed and
        reclaimed like a crash.
        """
        reader = self._readers[shard]
        if reader is None:
            raise WorkerDied(shard, f"no connection awaiting {expected!r} reply")
        try:
            # allow_pickle: replies come from the server *we* spawned on a
            # port it alone bound and reported over the spawn pipe, so batch
            # values of any picklable type can ride home.
            frame, size = await asyncio.wait_for(
                read_frame(reader, allow_pickle=True), timeout=self._timeout
            )
        except asyncio.TimeoutError:
            process = self._processes[shard]
            if self.supervised and process is not None and process.is_alive():
                # Unresponsive-but-alive under supervision is a livelock:
                # reclaim it the same way a crash would be handled.
                process.kill()
                process.join(timeout=10)
            raise WorkerDied(
                shard,
                f"unresponsive for {self._timeout:.0f}s awaiting {expected!r} reply",
            ) from None
        except (FrameError, ConnectionError, OSError) as exc:
            raise WorkerDied(
                shard, f"connection lost awaiting {expected!r} reply ({exc})"
            ) from None
        self.wire_bytes += size
        return frame

    async def _reply(self, shard: int, expected: str) -> Any:
        kind, payload = await self._next_reply(shard, expected)
        if kind == "error":
            raise WorkerDied(shard, f"failed:\n{payload}")
        if kind != expected:  # pragma: no cover - protocol bug
            raise RuntimeError(
                f"shard {shard}: expected {expected!r} reply, got {kind!r}"
            )
        return payload

    # -- protocol ----------------------------------------------------------------
    def load(self, partitions: Sequence[Sequence[Tuple[Element, int]]]) -> None:
        """Ship the initial hash partitions to the servers (one batch each)."""

        async def go() -> None:
            for shard, batch in enumerate(partitions):
                await self._post(shard, "load", to_column_batch(batch))
            for shard in range(self.num_shards):
                await self._reply(shard, "ok")

        self._run(go())

    def superstep_all(
        self,
        max_supersteps: Optional[int] = None,
        budget: Optional[int] = None,
    ) -> List[LocalReport]:
        """Run one local round on every shard concurrently; reports in shard order."""

        async def go() -> List[LocalReport]:
            for shard in range(self.num_shards):
                await self._post(shard, "step", (max_supersteps, budget))
            reports = []
            for shard in range(self.num_shards):
                fields = await self._reply(shard, "report")
                reports.append(LocalReport(*fields))
            return reports

        return self._run(go())

    def label_counts(self) -> List[Dict[str, int]]:
        """Per-shard label histograms (migration-planner input)."""

        async def go() -> List[Dict[str, int]]:
            for shard in range(self.num_shards):
                await self._post(shard, "labels")
            return [
                await self._reply(shard, "labels")
                for shard in range(self.num_shards)
            ]

        return self._run(go())

    def execute_transfers(
        self, transfers: Sequence[Transfer], detector: QuiescenceDetector
    ) -> Tuple[int, int]:
        """Apply an exchange plan; returns ``(copies_moved, batches_sent)``.

        The coordinator stays the switch fabric: extractions are broadcast,
        each batch is forwarded to its destination, and deliveries are
        acknowledged — identical bookkeeping to the queue backend, so the
        quiescence detector sees the same event order.
        """

        async def go() -> Tuple[int, int]:
            for transfer in transfers:
                await self._post(
                    transfer.source, "extract_labels", list(transfer.labels)
                )
            moved = 0
            batches = 0
            deliveries: List[Tuple[int, int]] = []
            for transfer in transfers:
                batch = await self._reply(transfer.source, "batch")
                copies = column_batch_copies(batch)
                if not copies:
                    continue
                detector.migrations_started(copies)
                await self._post(transfer.destination, "ingest", batch)
                deliveries.append((transfer.destination, copies))
                batches += 1
                moved += copies
            for destination, copies in deliveries:
                await self._reply(destination, "ok")
                detector.migrations_delivered(destination, copies)
            return moved, batches

        return self._run(go())

    def steal(
        self,
        donor: int,
        thief: int,
        limit: int,
        detector: QuiescenceDetector,
    ) -> int:
        """Move up to ``limit`` routable copies from ``donor`` to ``thief``."""

        async def go() -> int:
            await self._post(donor, "extract_some", limit)
            batch = await self._reply(donor, "batch")
            copies = column_batch_copies(batch)
            if not copies:
                return 0
            detector.migrations_started(copies)
            await self._post(thief, "ingest", batch)
            await self._reply(thief, "ok")
            detector.migrations_delivered(thief, copies)
            return copies

        return self._run(go())

    def ingest_batches(
        self, partitions: Sequence[Sequence[Tuple[Element, int]]]
    ) -> List[int]:
        """Routed streaming injection: one framed batch per non-empty shard."""

        async def go() -> List[int]:
            targets = [shard for shard, batch in enumerate(partitions) if batch]
            for shard in targets:
                await self._post(shard, "ingest", to_column_batch(partitions[shard]))
            copies = [0] * self.num_shards
            for shard in targets:
                copies[shard] = await self._reply(shard, "ok")
            return copies

        return self._run(go())

    def snapshot_all(self) -> Multiset:
        """Non-destructive union of every shard's partition (mid-stream read)."""
        snapshot = Multiset()
        for batch in self.snapshot_shard_batches():
            snapshot.add_counts(from_column_batch(batch))
        return snapshot

    def collect_final(self) -> Multiset:
        """Union of every shard's partition (the run's final multiset)."""
        return self.snapshot_all()

    # -- elasticity --------------------------------------------------------------
    def resize(
        self,
        num_shards: int,
        partitions: Sequence[Sequence[Tuple[Element, int]]],
    ) -> None:
        """Autoscale to ``num_shards`` shard servers and load ``partitions``.

        Mirrors the queue backend: dead servers are respawned first (so a
        retried resize is idempotent), growth spawns and connects fresh
        servers, shrinkage stops the excess ones, and every survivor gets a
        checkpoint-style ``reset`` with its repartitioned batch.
        """
        self.respawn(self.dead_shards())
        self._hello["num_shards"] = num_shards
        if num_shards > self.num_shards:
            grown = list(range(self.num_shards, num_shards))
            for shard in grown:
                self._processes.append(None)
                self._ports.append(None)
                self._readers.append(None)
                self._writers.append(None)
                self._launch(shard)
            self._run(self._connect_many(grown))
        elif num_shards < self.num_shards:
            for shard in range(num_shards, self.num_shards):
                self._retire(shard)
            del self._processes[num_shards:]
            del self._ports[num_shards:]
            del self._readers[num_shards:]
            del self._writers[num_shards:]
        self.num_shards = num_shards
        self._reset_all(partitions=partitions)

    def _retire(self, shard: int) -> None:
        """Gracefully stop one shard server (shrink path; best effort)."""

        async def go() -> None:
            try:
                await self._post(shard, "stop")
                await self._reply(shard, "stopped")
            except WorkerDied:
                pass
            self._abort_connection(shard)

        try:
            asyncio.run_coroutine_threadsafe(go(), self._loop).result(timeout=10)
        except Exception:  # pragma: no cover - teardown race
            pass
        process = self._processes[shard]
        if process is not None:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck server
                process.kill()
                process.join(timeout=10)

    def _abort_connection(self, shard: int) -> None:
        """Hard-close shard ``shard``'s transport (loop thread only)."""
        writer = self._writers[shard]
        if writer is not None:
            transport = writer.transport
            if transport is not None:
                transport.abort()

    def _reset_all(self, partitions=None, batches=None) -> None:
        """Broadcast ``reset``; drain each connection until ``reset_ok``.

        Survivors of an aborted round may still owe replies; the server
        serves commands strictly in order, so reading until the distinctive
        ``reset_ok`` kind discards exactly the stale traffic.
        """

        async def go() -> None:
            for shard in range(self.num_shards):
                payload = (
                    to_column_batch(partitions[shard])
                    if partitions is not None
                    else batches[shard]
                )
                await self._post(shard, "reset", payload)
            for shard in range(self.num_shards):
                while True:
                    kind, payload = await self._next_reply(shard, "reset_ok")
                    if kind == "reset_ok":
                        break
                    if kind == "error":
                        raise WorkerDied(shard, f"failed during reset:\n{payload}")

        self._run(go())

    # -- recovery ----------------------------------------------------------------
    def snapshot_shard_batches(self) -> List[Any]:
        """Every shard's partition as column batches (checkpoint capture)."""

        async def go() -> List[Any]:
            for shard in range(self.num_shards):
                await self._post(shard, "snapshot")
            return [
                await self._reply(shard, "batch")
                for shard in range(self.num_shards)
            ]

        return self._run(go())

    def dead_shards(self) -> List[int]:
        """Shards whose server process or connection is gone."""
        dead = []
        for shard in range(self.num_shards):
            process = self._processes[shard]
            writer = self._writers[shard]
            if (
                process is None
                or not process.is_alive()
                or writer is None
                or writer.is_closing()
            ):
                dead.append(shard)
        return dead

    def drop_connection(self, shard: int) -> None:
        """Fault-injection hook: abort shard ``shard``'s transport now.

        The network analogue of a pulled cable: the client-side transport is
        hard-closed, so the next read on this shard raises
        :class:`WorkerDied` and (under supervision) recovery respawns the
        server — whose single-shot process exits on its own once it notices
        the EOF.
        """
        done = threading.Event()

        def abort() -> None:
            self._abort_connection(shard)
            done.set()

        self._loop.call_soon_threadsafe(abort)
        done.wait(timeout=10)

    def respawn(self, shards: Iterable[int]) -> None:
        """Replace the given shards' server processes and connections.

        The old process is killed and joined and its transport aborted (any
        buffered traffic is garbage from the aborted round); a fresh server
        is spawned, connected, and handshaken from scratch.
        """
        shards = list(shards)
        for shard in shards:
            process = self._processes[shard]
            if process is not None:
                if process.is_alive():
                    process.kill()
                process.join(timeout=10)
            done = threading.Event()

            def abort(shard=shard) -> None:
                self._abort_connection(shard)
                done.set()

            self._loop.call_soon_threadsafe(abort)
            done.wait(timeout=10)
            self._launch(shard)
        if shards:
            self._run(self._connect_many(shards))

    def recover(self, shard_batches: Sequence[Any]) -> List[int]:
        """Roll every shard back to a checkpoint cut; returns respawned shards."""
        respawned = self.dead_shards()
        self.respawn(respawned)
        self._reset_all(batches=shard_batches)
        return respawned

    def stop(self) -> None:
        """Stop every shard server and the event loop (idempotent).

        Every teardown step is individually guarded: a server that already
        died, a socket broken by that death, or a process that ignores the
        ``stop`` command must not keep the coordinator from reclaiming the
        rest.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._loop is not None and self._thread is not None:

            async def farewell() -> None:
                for shard in range(len(self._writers)):
                    writer = self._writers[shard]
                    if writer is None or writer.is_closing():
                        continue
                    try:
                        await write_frame(writer, ("stop", None))
                    except Exception:
                        pass
                    try:
                        writer.close()
                    except Exception:  # pragma: no cover - teardown race
                        pass

            try:
                asyncio.run_coroutine_threadsafe(farewell(), self._loop).result(
                    timeout=10
                )
            except Exception:  # pragma: no cover - loop already unusable
                pass
        for process in self._processes:
            if process is None:
                continue
            try:
                process.join(timeout=10)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            if not self._thread.is_alive():
                self._loop.close()
