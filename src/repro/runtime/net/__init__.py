"""Network transport for the sharded runtime.

The single-machine form of the multi-node runtime: the same superstep-
barrier protocol the sharding subsystem already runs, carried over framed
loopback sockets instead of ``multiprocessing`` queues, plus a socket front
door for streamed ingestion.

* :mod:`~repro.runtime.net.frames` — the wire format: length-prefixed,
  pure-stdlib msgpack-style frames with a typed :class:`FrameError`
  hierarchy (no input may hang the decoder or deliver a partial message);
* :mod:`~repro.runtime.net.server` — the data plane: one shard worker per
  server process, specialized over the wire by the ``hello`` handshake and
  serving the exact command set of the multiprocessing backend;
* :mod:`~repro.runtime.net.backend` — the control plane:
  :class:`NetworkBackend` plugs into :class:`~repro.runtime.sharding.
  ShardCoordinator` as ``backend="network"``, with supervision, recovery,
  elasticity, and wire-byte accounting;
* :mod:`~repro.runtime.net.gateway` — streamed ingestion:
  :class:`IngestGateway` multiplexes concurrent producer sockets into an
  :class:`~repro.runtime.streaming.IngestQueue` with per-tenant admission
  control and refuse-or-block backpressure; :class:`GatewayClient` is the
  producer-side helper.
"""

from .backend import NetworkBackend
from .frames import (
    DEFAULT_MAX_FRAME,
    ConnectionClosed,
    FrameCorrupt,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    decode_frame,
    encode_frame,
)
from .gateway import GatewayClient, IngestGateway
from .server import handle_shard_connection, shard_server_main

__all__ = [
    "NetworkBackend",
    "IngestGateway",
    "GatewayClient",
    "FrameError",
    "FrameTruncated",
    "FrameCorrupt",
    "FrameTooLarge",
    "ConnectionClosed",
    "FrameDecoder",
    "encode_frame",
    "decode_frame",
    "DEFAULT_MAX_FRAME",
    "handle_shard_connection",
    "shard_server_main",
]
