"""Async ingestion gateway: many producer sockets, one admission queue.

The network face of :class:`~repro.runtime.streaming.IngestQueue`.  An
:class:`IngestGateway` listens on a loopback port and multiplexes any number
of concurrent producer connections into one queue, preserving the queue's
admission contract end to end:

* **refuse-or-block, never drop** — an ``offer`` request mirrors
  :meth:`IngestQueue.offer` (non-blocking; over-capacity batches are
  *refused* with a reason, and the producer keeps its elements); a blocking
  request mirrors :meth:`IngestQueue.put` (the reply is withheld until
  capacity frees up or the timeout expires — TCP's own flow control then
  backpressures the producer).  An element is admitted exactly once or not
  at all; the gateway never silently loses one.
* **per-tenant admission control** — each connection names a *tenant* in its
  handshake; with a ``tenant_quota`` set, one tenant's pending (admitted but
  not yet drained) copies may not exceed the quota, so a single hot producer
  cannot starve the others out of the shared queue.  Tenant accounting is
  decremented as the runtime drains epochs, via the queue's take listeners
  — exact while the gateway is the queue's only producer (FIFO admissions
  leave in FIFO order), conservative otherwise.
* **atomic batches** — a batch is admitted all-or-nothing through
  :meth:`IngestQueue.offer_batch`, so a refusal can never leave half a
  batch in the run.

Wire protocol (framed, see :mod:`repro.runtime.net.frames`)::

    ("hello", {"tenant": name})            -> ("welcome", {"tenant": name})
    ("offer", {"batch": column_batch,
               "block": bool,
               "timeout": seconds|None})   -> ("admitted", copies)
                                            | ("refused", reason)
                                            | ("timeout", seconds)
    ("close", None)                        -> ("closed", None)

:class:`GatewayClient` is the synchronous producer-side helper the tests and
benchmarks use; any codec-speaking client works the same way.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from ...multiset.columnar import from_column_batch, to_column_batch
from ...multiset.element import Element
from .frames import (
    ConnectionClosed,
    FrameDecoder,
    FrameError,
    encode_frame,
    read_frame,
    recv_frame,
    write_frame,
)

__all__ = ["IngestGateway", "GatewayClient"]

#: Tenant name used when a client's handshake does not declare one.
DEFAULT_TENANT = "default"


def _coerce_pairs(elements: Iterable[Any]) -> List[Tuple[Element, int]]:
    """Normalize producer input into ``(Element, count)`` pairs.

    Accepts :class:`Element` instances, ``(Element, count)`` pairs,
    ``(value, label, tag)`` tuples, and bare values — the same universe
    :meth:`IngestQueue.offer` takes.  A single :class:`Element` (or any
    non-iterable value) is treated as a one-entry batch.
    """
    if isinstance(elements, (Element, str)) or not hasattr(elements, "__iter__"):
        elements = [elements]
    pairs: List[Tuple[Element, int]] = []
    for entry in elements:
        if (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], Element)
            and isinstance(entry[1], int)
        ):
            pairs.append(entry)
        elif isinstance(entry, Element):
            pairs.append((entry, 1))
        elif isinstance(entry, tuple):
            pairs.append((Element.from_tuple(entry), 1))
        else:
            pairs.append((Element(value=entry), 1))
    return pairs


class IngestGateway:
    """Socket front door multiplexing producer streams into an ingest queue.

    Parameters
    ----------
    queue:
        The :class:`~repro.runtime.streaming.IngestQueue` admissions land
        in.  The gateway registers a take listener on it, so tenant
        accounting tracks the runtime's epoch drains.
    tenant_quota:
        Optional cap on one tenant's pending copies (admitted but not yet
        drained).  ``None`` disables per-tenant control; the queue's own
        ``capacity`` still bounds the total.
    host:
        Bind address (loopback by default — tests and CI never leave the
        machine).

    The server starts listening on an ephemeral port immediately;
    :attr:`port` is the address producers connect to.  :meth:`close` stops
    the listener (idempotent); admitted elements stay in the queue.
    """

    def __init__(
        self,
        queue: Any,
        tenant_quota: Optional[int] = None,
        host: str = "127.0.0.1",
    ) -> None:
        if tenant_quota is not None and tenant_quota <= 0:
            raise ValueError("tenant_quota must be positive (or None)")
        self.queue = queue
        self.tenant_quota = tenant_quota
        #: Copies admitted through the gateway (all tenants, whole lifetime).
        self.injected = 0
        #: Frame bytes received plus sent over every producer connection.
        self.wire_bytes = 0
        #: Offers refused (over quota or over capacity, non-blocking mode).
        self.refused = 0
        #: Blocking offers that timed out before capacity freed up.
        self.timeouts = 0
        self._state = threading.Condition()
        self._pending: Dict[str, int] = {}
        self._ledger: Deque[Tuple[str, int]] = deque()
        self._closed = False
        # Live producer writers (loop-thread access only), so close() can
        # abort them and a blocked client sees EOF instead of hanging.
        self._writers: set = set()
        queue.add_take_listener(self._on_take)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-ingest-gateway", daemon=True
        )
        self._thread.start()
        self._server = asyncio.run_coroutine_threadsafe(
            asyncio.start_server(self._handle, host, 0), self._loop
        ).result(timeout=30)
        self.host = host
        self.port = self._server.sockets[0].getsockname()[1]

    # -- accounting ----------------------------------------------------------------
    def pending_of(self, tenant: str) -> int:
        """Copies this tenant has in the queue (admitted, not yet drained)."""
        with self._state:
            return self._pending.get(tenant, 0)

    def _on_take(self, copies: int) -> None:
        """Queue take listener: retire drained copies from the tenant ledger.

        Admissions leave the queue in FIFO order, so retiring ledger entries
        front-first attributes each drained copy to the tenant that offered
        it (exact while the gateway is the sole producer; never negative
        otherwise — the ledger only ever holds gateway admissions).
        """
        with self._state:
            remaining = copies
            while remaining > 0 and self._ledger:
                tenant, count = self._ledger[0]
                take = min(count, remaining)
                if take == count:
                    self._ledger.popleft()
                else:
                    self._ledger[0] = (tenant, count - take)
                self._pending[tenant] = self._pending.get(tenant, 0) - take
                remaining -= take
            self._state.notify_all()

    # -- admission (runs on executor threads, never the event loop) -----------------
    def _admit(
        self,
        tenant: str,
        pairs: List[Tuple[Element, int]],
        block: bool,
        timeout: Optional[float],
    ) -> Tuple[str, Any]:
        """Admit one batch for ``tenant``; returns the reply ``(kind, payload)``.

        Non-blocking (``block=False``): one shot — over quota or over
        capacity refuses immediately.  Blocking: waits (bounded by
        ``timeout`` seconds) for quota and capacity together; every queue
        drain re-checks the predicate, so the wait mirrors
        :meth:`IngestQueue.put`'s condition loop.  :meth:`close` wakes every
        waiter, and a woken waiter that finds the gateway closed refuses —
        it must never go back to sleep on a condition nobody will signal
        again.
        """
        if block and timeout is not None and timeout < 0:
            # A lapsed deadline (raw clients can ship one) is an immediate
            # timeout refusal: nothing is attempted, so the producer can
            # rely on "timeout == not admitted" even for negative waits.
            self.timeouts += 1
            return ("timeout", timeout)
        copies = sum(count for _, count in pairs)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state:
            while True:
                if self._closed:
                    return ("refused", "gateway closed")
                over_quota = (
                    self.tenant_quota is not None
                    and self._pending.get(tenant, 0) + copies > self.tenant_quota
                )
                admitted = False
                if not over_quota:
                    try:
                        admitted = self.queue.offer_batch(pairs)
                    except ValueError:
                        return ("refused", "stream closed")
                if admitted:
                    self._ledger.append((tenant, copies))
                    self._pending[tenant] = self._pending.get(tenant, 0) + copies
                    self.injected += copies
                    return ("admitted", copies)
                if not block:
                    self.refused += 1
                    return (
                        "refused",
                        "tenant quota exceeded" if over_quota else "queue at capacity",
                    )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    self.timeouts += 1
                    return ("timeout", timeout)
                self._state.wait(remaining)

    # -- connection handling ---------------------------------------------------------
    async def _handle(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        """Serve one producer connection until it closes."""
        loop = asyncio.get_running_loop()
        self._writers.add(writer)
        try:
            try:
                hello, size = await read_frame(reader)
            except FrameError:
                return
            self.wire_bytes += size
            command, payload = hello
            if command != "hello":
                self.wire_bytes += await write_frame(
                    writer, ("error", f"expected 'hello' handshake, got {command!r}")
                )
                return
            tenant = (payload or {}).get("tenant") or DEFAULT_TENANT
            self.wire_bytes += await write_frame(
                writer, ("welcome", {"tenant": tenant})
            )
            while True:
                try:
                    frame, size = await read_frame(reader)
                except (ConnectionClosed, FrameError, ConnectionError):
                    return
                self.wire_bytes += size
                command, payload = frame
                if command == "close":
                    self.wire_bytes += await write_frame(writer, ("closed", None))
                    return
                if command != "offer":
                    self.wire_bytes += await write_frame(
                        writer, ("error", f"unknown gateway command {command!r}")
                    )
                    return
                pairs = from_column_batch(payload["batch"])
                # The wait (if any) blocks an executor thread, never the
                # loop, so slow tenants cannot stall other connections.
                reply = await loop.run_in_executor(
                    None,
                    self._admit,
                    tenant,
                    pairs,
                    bool(payload.get("block")),
                    payload.get("timeout"),
                )
                self.wire_bytes += await write_frame(writer, reply)
        except (ConnectionError, OSError):
            return  # transport died mid-reply (producer gone or close() abort)
        except RuntimeError:  # pragma: no cover - close() race
            return  # executor already shut down under a just-arrived offer
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass

    def close(self) -> None:
        """Stop listening and release the loop thread (idempotent).

        Waiting admissions are woken and refuse (``_admit`` re-checks the
        closed flag, so no waiter sleeps forever on a queue nobody drains);
        established producer connections are aborted, so a client blocked on
        its reply sees :class:`ConnectionClosed` instead of hanging; the
        loop's default executor — where admissions block — is shut down
        before the loop stops, so no executor thread outlives the gateway or
        stalls interpreter exit.  Elements already admitted stay in the
        queue.
        """
        if self._closed:
            return
        with self._state:
            self._closed = True
            self._state.notify_all()

        def shutdown() -> None:
            self._server.close()
            # Abort, not close: discard buffered replies and surface a
            # prompt EOF/reset to producers mid-request.
            for writer in list(self._writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()

        self._loop.call_soon_threadsafe(shutdown)
        try:
            # Runs after shutdown() (FIFO loop scheduling); joins the
            # executor threads, which _admit's closed-check lets finish.
            asyncio.run_coroutine_threadsafe(
                self._loop.shutdown_default_executor(), self._loop
            ).result(timeout=10)
        except Exception:  # pragma: no cover - loop already unusable
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        if not self._thread.is_alive():
            self._loop.close()


class GatewayClient:
    """Synchronous producer client for an :class:`IngestGateway`.

    Connects, performs the tenant handshake, and exposes the queue's own
    admission verbs over the wire: :meth:`offer` (non-blocking, ``bool``)
    and :meth:`put` (blocking, raises ``TimeoutError``).  Not thread-safe —
    one client per producer thread, matching one connection per producer.
    """

    def __init__(
        self,
        port: int,
        tenant: str = DEFAULT_TENANT,
        host: str = "127.0.0.1",
        timeout: float = 30.0,
    ) -> None:
        """Connect to ``host:port`` and handshake as ``tenant``."""
        self.tenant = tenant
        self._timeout = timeout
        self._decoder = FrameDecoder()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        kind, payload = self._request(("hello", {"tenant": tenant}))
        if kind != "welcome":
            raise RuntimeError(f"gateway rejected handshake: {kind!r} {payload!r}")

    _DEFAULT_TIMEOUT = object()

    def _request(self, frame: Any, timeout: Any = _DEFAULT_TIMEOUT) -> Tuple[str, Any]:
        if timeout is GatewayClient._DEFAULT_TIMEOUT:
            timeout = self._timeout
        self._sock.sendall(encode_frame(frame))
        return recv_frame(self._sock, self._decoder, timeout=timeout)

    def offer(self, elements: Iterable[Any], count: Optional[int] = None) -> bool:
        """Non-blocking batch admission; ``False`` when refused (no loss).

        ``elements`` is any mix of elements / pairs / bare values (see
        :func:`_coerce_pairs`); ``count`` replicates a single-element offer.
        """
        pairs = _coerce_pairs(elements)
        if count is not None:
            if len(pairs) != 1:
                raise ValueError("count applies to single-element offers only")
            pairs = [(pairs[0][0], count)]
        kind, payload = self._request(
            ("offer", {"batch": to_column_batch(pairs), "block": False, "timeout": None})
        )
        if kind == "admitted":
            return True
        if kind == "refused":
            return False
        raise RuntimeError(f"unexpected gateway reply {kind!r}: {payload!r}")

    def put(self, elements: Iterable[Any], timeout: Optional[float] = None) -> int:
        """Blocking batch admission; returns copies admitted.

        Raises ``TimeoutError`` when ``timeout`` seconds pass without
        capacity (the elements were *not* admitted) and ``ValueError`` when
        the stream has closed.  A negative ``timeout`` — a deadline that
        lapsed before the call — raises ``TimeoutError`` immediately
        *without sending the offer*: the old behavior forwarded the negative
        remainder into the socket timeout, which blew up client-side after
        the frame was already on the wire, so the batch could be admitted
        while the producer saw an error.
        """
        pairs = _coerce_pairs(elements)
        if timeout is not None and timeout < 0:
            raise TimeoutError(
                f"no gateway capacity within {timeout}s (deadline already lapsed)"
            )
        wire_timeout = None if timeout is None else timeout + self._timeout
        kind, payload = self._request(
            ("offer", {"batch": to_column_batch(pairs), "block": True, "timeout": timeout}),
            timeout=wire_timeout,
        )
        if kind == "admitted":
            return payload
        if kind == "timeout":
            raise TimeoutError(f"no gateway capacity within {payload}s")
        if kind == "refused":
            raise ValueError(f"gateway refused blocking offer: {payload}")
        raise RuntimeError(f"unexpected gateway reply {kind!r}: {payload!r}")

    def close(self) -> None:
        """End the session (best effort) and close the socket."""
        try:
            self._sock.sendall(encode_frame(("close", None)))
            recv_frame(self._sock, self._decoder, timeout=self._timeout)
        except (OSError, FrameError):  # pragma: no cover - gateway already gone
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
