"""Length-prefixed frame codec: the sharded runtime's wire format.

Every message the network transport exchanges — protocol commands, shard
replies, gateway admissions — travels as one *frame*: a 4-byte big-endian
unsigned length prefix followed by exactly that many body bytes.  The body is
a self-describing msgpack-style encoding built on :mod:`struct` alone (no
third-party codec), covering the value universe the shard protocol actually
ships: ``None``, bools, arbitrary-precision ints, floats, strings, bytes,
lists, tuples, and string/int-keyed dicts — which includes the column-batch
element wire format (:func:`~repro.multiset.columnar.to_column_batch`)
unchanged.  Values outside that universe (the handshake's reaction tuple is
the only one that crosses the wire today) fall back to a tagged stdlib
pickle — but because ``pickle.loads`` is arbitrary code execution, the
*decoder* rejects that tag by default: every ``decode`` entry point takes
``allow_pickle`` (default ``False``, raising :class:`FramePickleRejected`),
and only the backend↔shard-server channel — which authenticates the peer
with a spawn-time token first (:mod:`repro.runtime.net.server`) — opts in.
Network-facing endpoints (the ingestion gateway, the pre-auth server
socket) never decode a pickle from the wire.

Safety properties, pinned by ``tests/properties/test_frame_properties.py``:

* **round-trip** — ``decode_frame(encode_frame(x)) == x`` for every
  encodable value, including every column batch;
* **no partial delivery** — a truncated buffer raises
  :class:`FrameTruncated`, a body that lies about its own lengths raises
  :class:`FrameCorrupt`, and an oversized length prefix raises
  :class:`FrameTooLarge` *before* any body bytes are buffered; no input
  hangs the decoder or yields half a message;
* **typed failures** — every decode error is a :class:`FrameError`
  (a ``ValueError``), so transport code has one exception family to map to
  :class:`~repro.runtime.recovery.WorkerDied`.  Hostile bodies that would
  otherwise escape the family — an unhashable dict key, nesting past
  :data:`MAX_DEPTH` — are converted to :class:`FrameCorrupt`.

:class:`FrameDecoder` is the incremental (feed-bytes, get-objects) variant
used by synchronous socket clients; :func:`read_frame` / :func:`write_frame`
are the asyncio-stream variant used by the shard servers and the backend.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, List, Optional, Tuple

__all__ = [
    "FrameError",
    "FrameTruncated",
    "FrameCorrupt",
    "FramePickleRejected",
    "FrameTooLarge",
    "ConnectionClosed",
    "DEFAULT_MAX_FRAME",
    "MAX_DEPTH",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
    "read_frame",
    "write_frame",
]

#: Default cap on one frame's body size (bytes).  A 10^5-element snapshot
#: batch encodes to a few megabytes; 64 MiB leaves an order of magnitude of
#: headroom while still rejecting a garbage length prefix immediately.
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

#: Cap on value nesting, enforced symmetrically by encoder and decoder so
#: everything encodable is decodable.  Real protocol payloads are at most a
#: handful of levels deep; the cap exists so a hostile body of nested list
#: tags raises :class:`FrameCorrupt` instead of ``RecursionError``.
MAX_DEPTH = 128

_PREFIX = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


class FrameError(ValueError):
    """Base class of every frame encode/decode failure."""


class FrameTruncated(FrameError):
    """The buffer ends before the frame it starts is complete."""


class FrameCorrupt(FrameError):
    """The frame's body contradicts itself (bad tag, bad length, bad UTF-8)."""


class FramePickleRejected(FrameCorrupt):
    """A pickle-tagged value arrived on an endpoint that forbids pickles."""


class FrameTooLarge(FrameError):
    """A length prefix (or an encoded value) exceeds the frame-size cap."""


class ConnectionClosed(FrameError):
    """The peer closed the stream cleanly at a frame boundary (EOF)."""


# -- encoding ----------------------------------------------------------------------

def _encode_value(value: Any, out: List[bytes], depth: int = 0) -> None:
    """Append ``value``'s tagged encoding to ``out`` (recursive)."""
    if depth > MAX_DEPTH:
        raise FrameError(f"value nesting exceeds the depth cap ({MAX_DEPTH})")
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out.append(b"I")
            out.append(_U32.pack(len(raw)))
            out.append(raw)
    elif type(value) is float:
        out.append(b"d")
        out.append(_F64.pack(value))
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif type(value) is bytes:
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(value)
    elif type(value) is list:
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out, depth + 1)
    elif type(value) is tuple:
        out.append(b"t")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(item, out, depth + 1)
    elif type(value) is dict:
        out.append(b"m")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_value(key, out, depth + 1)
            _encode_value(item, out, depth + 1)
    else:
        # Total-coverage fallback: anything else (bools/ints subclasses,
        # Fractions, frozensets...) rides a tagged stdlib pickle.  The shard
        # protocol itself only uses it for the handshake's reaction tuple.
        raw = pickle.dumps(value)
        out.append(b"p")
        out.append(_U32.pack(len(raw)))
        out.append(raw)


def encode_frame(value: Any, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Encode ``value`` as one complete frame (length prefix included).

    Raises :class:`FrameTooLarge` when the encoded body would exceed
    ``max_frame`` bytes — the sender-side half of the size contract, so an
    oversized batch fails loudly at the producer instead of poisoning the
    receiver's stream.
    """
    parts: List[bytes] = []
    _encode_value(value, parts)
    body = b"".join(parts)
    if len(body) > max_frame:
        raise FrameTooLarge(
            f"encoded frame body is {len(body)} bytes (cap {max_frame})"
        )
    return _PREFIX.pack(len(body)) + body


# -- decoding ----------------------------------------------------------------------

class _Body:
    """Bounds-checked cursor over one frame body."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, start: int, end: int) -> None:
        self.data = data
        self.pos = start
        self.end = end

    def take(self, count: int) -> bytes:
        """Consume exactly ``count`` bytes or raise :class:`FrameCorrupt`."""
        if count < 0 or self.pos + count > self.end:
            raise FrameCorrupt(
                f"frame body claims {count} bytes at offset {self.pos} "
                f"but only {self.end - self.pos} remain"
            )
        raw = self.data[self.pos : self.pos + count]
        self.pos += count
        return raw


def _decode_value(body: _Body, allow_pickle: bool, depth: int = 0) -> Any:
    """Decode one tagged value from ``body`` (recursive)."""
    if depth > MAX_DEPTH:
        raise FrameCorrupt(
            f"frame body nests values deeper than the cap ({MAX_DEPTH})"
        )
    tag = body.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(body.take(8))[0]
    if tag == b"I":
        (length,) = _U32.unpack(body.take(4))
        return int.from_bytes(body.take(length), "big", signed=True)
    if tag == b"d":
        return _F64.unpack(body.take(8))[0]
    if tag == b"s":
        (length,) = _U32.unpack(body.take(4))
        try:
            return body.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameCorrupt(f"invalid UTF-8 in string value: {exc}") from None
    if tag == b"b":
        (length,) = _U32.unpack(body.take(4))
        return body.take(length)
    if tag == b"l" or tag == b"t":
        (count,) = _U32.unpack(body.take(4))
        items = [_decode_value(body, allow_pickle, depth + 1) for _ in range(count)]
        return items if tag == b"l" else tuple(items)
    if tag == b"m":
        (count,) = _U32.unpack(body.take(4))
        try:
            return {
                _decode_value(body, allow_pickle, depth + 1): _decode_value(
                    body, allow_pickle, depth + 1
                )
                for _ in range(count)
            }
        except TypeError as exc:
            # A well-formed body can still name an unhashable key (a list).
            raise FrameCorrupt(f"unhashable dict key in frame body: {exc}") from None
    if tag == b"p":
        (length,) = _U32.unpack(body.take(4))
        raw = body.take(length)
        if not allow_pickle:
            raise FramePickleRejected(
                "pickle-tagged value rejected (this endpoint decodes with "
                "allow_pickle=False; only the authenticated backend/server "
                "channel accepts pickles)"
            )
        try:
            return pickle.loads(raw)
        except FrameCorrupt:
            raise
        except Exception as exc:
            raise FrameCorrupt(f"invalid pickled value: {exc}") from None
    raise FrameCorrupt(f"unknown frame type tag {tag!r}")


def decode_frame(
    data: bytes,
    max_frame: int = DEFAULT_MAX_FRAME,
    allow_pickle: bool = False,
) -> Tuple[Any, int]:
    """Decode the first complete frame in ``data``; returns ``(value, consumed)``.

    ``consumed`` is the total bytes of the frame (prefix + body), so callers
    holding a buffer with several frames can slice and repeat.  Raises
    :class:`FrameTruncated` when ``data`` ends mid-frame,
    :class:`FrameTooLarge` when the prefix exceeds ``max_frame`` (checked
    before any body byte is needed), and :class:`FrameCorrupt` when the body
    is malformed or does not use exactly its declared length.  Pickle-tagged
    values raise :class:`FramePickleRejected` unless ``allow_pickle`` is
    set — reserve it for peers authenticated out of band.
    """
    if len(data) < _PREFIX.size:
        raise FrameTruncated(
            f"need {_PREFIX.size} prefix bytes, have {len(data)}"
        )
    (length,) = _PREFIX.unpack_from(data)
    if length > max_frame:
        raise FrameTooLarge(f"frame claims {length} bytes (cap {max_frame})")
    total = _PREFIX.size + length
    if len(data) < total:
        raise FrameTruncated(
            f"frame claims {length} body bytes, only {len(data) - _PREFIX.size} present"
        )
    body = _Body(data, _PREFIX.size, total)
    try:
        value = _decode_value(body, allow_pickle)
    except RecursionError:  # pragma: no cover - depth cap fires first
        raise FrameCorrupt("frame body nests values beyond the recursion limit") from None
    if body.pos != total:
        raise FrameCorrupt(
            f"frame body has {total - body.pos} trailing bytes after its value"
        )
    return value, total


class FrameDecoder:
    """Incremental frame decoder for synchronous byte streams.

    Feed arbitrary chunks; complete frames come out, partial ones stay
    buffered.  An oversized prefix raises :class:`FrameTooLarge` as soon as
    the prefix itself is readable — the decoder never buffers toward a frame
    it would reject.  Used by :class:`~repro.runtime.net.gateway.GatewayClient`
    and the socket-level tests.
    """

    def __init__(
        self, max_frame: int = DEFAULT_MAX_FRAME, allow_pickle: bool = False
    ) -> None:
        """Create an empty decoder with the given frame-size cap.

        ``allow_pickle`` mirrors :func:`decode_frame` — leave it off unless
        the peer is authenticated.
        """
        self.max_frame = max_frame
        self.allow_pickle = allow_pickle
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[Any]:
        """Absorb ``chunk``; return every frame it completed (maybe none)."""
        self._buffer.extend(chunk)
        frames: List[Any] = []
        while True:
            if len(self._buffer) < _PREFIX.size:
                return frames
            (length,) = _PREFIX.unpack_from(self._buffer)
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"frame claims {length} bytes (cap {self.max_frame})"
                )
            total = _PREFIX.size + length
            if len(self._buffer) < total:
                return frames
            value, consumed = decode_frame(
                bytes(self._buffer), self.max_frame, self.allow_pickle
            )
            del self._buffer[:consumed]
            frames.append(value)


# -- asyncio-stream helpers --------------------------------------------------------

async def read_frame(
    reader: "asyncio.StreamReader",
    max_frame: int = DEFAULT_MAX_FRAME,
    allow_pickle: bool = False,
) -> Tuple[Any, int]:
    """Read one frame from ``reader``; returns ``(value, wire_bytes)``.

    ``wire_bytes`` counts prefix plus body (communication-volume accounting).
    Raises :class:`ConnectionClosed` on a clean EOF at a frame boundary,
    :class:`FrameTruncated` on EOF mid-frame, :class:`FrameTooLarge` before
    reading an oversized body, and :class:`FrameCorrupt` on a bad body.
    ``allow_pickle`` mirrors :func:`decode_frame`.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("stream closed at a frame boundary") from None
        raise FrameTruncated(
            f"stream closed after {len(exc.partial)} of {_PREFIX.size} prefix bytes"
        ) from None
    (length,) = _PREFIX.unpack(prefix)
    if length > max_frame:
        raise FrameTooLarge(f"frame claims {length} bytes (cap {max_frame})")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameTruncated(
            f"stream closed after {len(exc.partial)} of {length} body bytes"
        ) from None
    value, consumed = decode_frame(prefix + body, max_frame, allow_pickle)
    return value, consumed


async def write_frame(
    writer: "asyncio.StreamWriter",
    value: Any,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> int:
    """Encode ``value`` and write it to ``writer``; returns the wire bytes."""
    data = encode_frame(value, max_frame)
    writer.write(data)
    await writer.drain()
    return len(data)


def recv_frame(sock, decoder: FrameDecoder, timeout: Optional[float] = None) -> Any:
    """Blocking-socket read of one frame through ``decoder``.

    The synchronous-client counterpart of :func:`read_frame` (used by
    :class:`~repro.runtime.net.gateway.GatewayClient` and tests): receives
    chunks until the decoder completes a frame.  Raises
    :class:`ConnectionClosed` on EOF at a frame boundary (or on a peer that
    aborted the connection — a reset while waiting for a reply means the
    same thing to a request/reply client: no reply is coming) and
    :class:`FrameTruncated` on EOF mid-frame; ``timeout`` (seconds) is
    applied per ``recv`` via the socket's own timeout (``None`` blocks
    indefinitely).
    """
    sock.settimeout(timeout)
    while True:
        try:
            chunk = sock.recv(65536)
        except ConnectionResetError:
            raise ConnectionClosed("peer aborted the connection") from None
        if not chunk:
            if decoder.pending_bytes:
                raise FrameTruncated(
                    f"peer closed with {decoder.pending_bytes} buffered bytes"
                )
            raise ConnectionClosed("peer closed at a frame boundary")
        frames = decoder.feed(chunk)
        if frames:
            if len(frames) > 1:  # pragma: no cover - strict request/reply usage
                raise FrameCorrupt("peer sent more than one reply frame")
            return frames[0]
