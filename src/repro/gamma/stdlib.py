"""Classic Gamma programs.

These are the canonical examples from the Gamma literature (Banâtre & Le
Métayer, and the implementations the paper cites).  They serve three roles in
the reproduction:

* executable documentation of the model (``examples/chemical_programs.py``);
* workloads for the scheduler and scaling benchmarks (experiments E6, E9);
* targets for the Gamma-to-dataflow conversion tests beyond the paper's own
  listings.

Each builder returns a :class:`~repro.gamma.program.GammaProgram`; companion
``*_multiset`` helpers build initial multisets of configurable size.  The
minimum-element program is Eq. 2 of the paper verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .expr import BinOp, Compare, Const, Var, var
from .pattern import ElementPattern, ElementTemplate, pattern, template
from .program import GammaProgram
from .reaction import Branch, Reaction

__all__ = [
    "DATA_LABEL",
    "values_multiset",
    "indexed_multiset",
    "min_element",
    "max_element",
    "sum_reduction",
    "product_reduction",
    "gcd_program",
    "prime_sieve",
    "exchange_sort",
    "remove_duplicates",
    "count_threshold",
    "CLASSIC_PROGRAMS",
]

#: Label carried by the data elements of the classic programs.
DATA_LABEL = "x"


def values_multiset(values: Iterable, label: str = DATA_LABEL) -> Multiset:
    """Multiset of plain values, all carrying ``label`` and tag 0."""
    return Multiset([Element(value=v, label=label, tag=0) for v in values])


def indexed_multiset(values: Sequence, label: str = DATA_LABEL) -> Multiset:
    """Multiset of values whose position is recorded in the element *tag*.

    Used by the exchange-sort program: the tag plays the role of the array
    index, exactly like the iteration tag plays the role of the loop instance
    in the paper's loop translation.
    """
    return Multiset([Element(value=v, label=label, tag=i) for i, v in enumerate(values)])


def _binary_fold(name: str, op: str, label: str = DATA_LABEL, guard=None) -> Reaction:
    """``replace x, y by x <op> y [where guard]`` over elements labelled ``label``."""
    return Reaction(
        name=name,
        replace=[pattern("a", label, "t1"), pattern("b", label, "t2")],
        branches=[
            Branch(
                productions=[
                    ElementTemplate(
                        value=BinOp(op, var("a"), var("b")),
                        label=Const(label),
                        tag=Const(0),
                    )
                ]
            )
        ],
        guard=guard,
    )


def min_element(label: str = DATA_LABEL) -> GammaProgram:
    """Equation 2 of the paper: ``replace x, y by x where x < y``.

    The stable multiset contains a single element: the minimum.
    """
    reaction = Reaction(
        name="Rmin",
        replace=[pattern("a", label, "t1"), pattern("b", label, "t2")],
        branches=[Branch(productions=[template("a", label, Const(0))])],
        guard=Compare("<", var("a"), var("b")),
    )
    return GammaProgram([reaction], name="min_element")


def max_element(label: str = DATA_LABEL) -> GammaProgram:
    """``replace x, y by x where x >= y`` — stable state holds the maximum."""
    reaction = Reaction(
        name="Rmax",
        replace=[pattern("a", label, "t1"), pattern("b", label, "t2")],
        branches=[Branch(productions=[template("a", label, Const(0))])],
        guard=Compare(">=", var("a"), var("b")),
    )
    return GammaProgram([reaction], name="max_element")


def sum_reduction(label: str = DATA_LABEL) -> GammaProgram:
    """``replace x, y by x + y`` — stable state holds the sum of the multiset."""
    return GammaProgram([_binary_fold("Rsum", "+", label)], name="sum_reduction")


def product_reduction(label: str = DATA_LABEL) -> GammaProgram:
    """``replace x, y by x * y`` — stable state holds the product."""
    return GammaProgram([_binary_fold("Rprod", "*", label)], name="product_reduction")


def gcd_program(label: str = DATA_LABEL) -> GammaProgram:
    """Greatest common divisor of a multiset of positive integers.

    Two reactions: subtract the smaller from the larger (Euclid by repeated
    subtraction) and merge equal elements.  The stable multiset contains the
    single element gcd(values).
    """
    subtract = Reaction(
        name="Rsub",
        replace=[pattern("a", label, "t1"), pattern("b", label, "t2")],
        branches=[
            Branch(
                productions=[
                    ElementTemplate(
                        value=BinOp("-", var("a"), var("b")),
                        label=Const(label),
                        tag=Const(0),
                    ),
                    template("b", label, Const(0)),
                ]
            )
        ],
        guard=Compare(">", var("a"), var("b")),
    )
    merge = Reaction(
        name="Rmerge",
        replace=[pattern("a", label, "t1"), pattern("b", label, "t2")],
        branches=[Branch(productions=[template("a", label, Const(0))])],
        guard=Compare("==", var("a"), var("b")),
    )
    return GammaProgram([subtract, merge], name="gcd")


def prime_sieve(label: str = DATA_LABEL) -> GammaProgram:
    """Prime sieve: ``replace x, y by y where x % y == 0 and x != y``.

    Starting from the multiset {2..N}, the stable multiset contains exactly
    the primes up to N (every composite is eventually erased by one of its
    divisors).
    """
    reaction = Reaction(
        name="Rsieve",
        replace=[pattern("a", label, "t1"), pattern("b", label, "t2")],
        branches=[Branch(productions=[template("b", label, Const(0))])],
        guard=Compare("==", BinOp("%", var("a"), var("b")), Const(0)).and_(
            Compare("!=", var("a"), var("b"))
        ),
    )
    return GammaProgram([reaction], name="prime_sieve")


def exchange_sort(label: str = DATA_LABEL) -> GammaProgram:
    """Exchange sort over an indexed multiset (index stored in the element tag).

    ``replace [x, label, i], [y, label, j] by [y, label, i], [x, label, j]
    where i < j and x > y`` — at the stable state the values read in tag order
    are sorted ascending.
    """
    reaction = Reaction(
        name="Rsort",
        replace=[pattern("a", label, "i"), pattern("b", label, "j")],
        branches=[
            Branch(productions=[template("b", label, "i"), template("a", label, "j")])
        ],
        guard=Compare("<", var("i"), var("j")).and_(Compare(">", var("a"), var("b"))),
    )
    return GammaProgram([reaction], name="exchange_sort")


def remove_duplicates(label: str = DATA_LABEL) -> GammaProgram:
    """``replace x, y by x where x == y`` — stable state is the support set."""
    reaction = Reaction(
        name="Rdedup",
        replace=[pattern("a", label, "t1"), pattern("b", label, "t2")],
        branches=[Branch(productions=[template("a", label, Const(0))])],
        guard=Compare("==", var("a"), var("b")),
    )
    return GammaProgram([reaction], name="remove_duplicates")


def count_threshold(threshold, label: str = DATA_LABEL, out_label: str = "count") -> GammaProgram:
    """Count elements >= ``threshold``: map each to 1/0 then sum.

    Demonstrates sequential composition (`;`): a mapping block followed by a
    reduction block.  Returns a :class:`GammaProgram`-compatible sequential
    program.
    """
    from .program import SequentialProgram

    mapper = Reaction(
        name="Rmap",
        replace=[pattern("a", label, "t")],
        branches=[
            Branch(
                productions=[template(Const(1), out_label, Const(0))],
                condition=Compare(">=", var("a"), Const(threshold)),
            ),
            Branch(productions=[template(Const(0), out_label, Const(0))], condition=None),
        ],
    )
    reducer = _binary_fold("Rcount", "+", out_label)
    return SequentialProgram(
        [GammaProgram([mapper], name="map_threshold"), GammaProgram([reducer], name="count_sum")],
        name="count_threshold",
    )


#: Registry used by benchmarks and the workload generators.
CLASSIC_PROGRAMS = {
    "min_element": min_element,
    "max_element": max_element,
    "sum_reduction": sum_reduction,
    "product_reduction": product_reduction,
    "gcd": gcd_program,
    "prime_sieve": prime_sieve,
    "exchange_sort": exchange_sort,
    "remove_duplicates": remove_duplicates,
}
