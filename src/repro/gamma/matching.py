"""Reaction matching engine.

Matching answers the question at the heart of the Γ operator (Eq. 1): *does
there exist a tuple of elements* ``x1..xn`` *in the multiset such that the
reaction condition holds?*  The engine performs a backtracking search over the
replace-list patterns, using the label/tag index to prune candidates (the
reactions produced by Algorithm 1 always fix the labels they consume, and loop
programs additionally require equal tags on every consumed element).

Multiplicities are respected: a reaction consuming two elements may bind both
patterns to the *same* element value only if that element occurs at least
twice in the multiset.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..multiset.element import Element
from ..multiset.index import LabelTagIndex
from ..multiset.multiset import Multiset
from .pattern import Binding, ElementPattern
from .reaction import Reaction

__all__ = ["Match", "Matcher", "find_match", "iter_matches"]


@dataclass(frozen=True)
class Match:
    """A successful match of a reaction against the multiset."""

    reaction: Reaction
    consumed: Tuple[Element, ...]
    binding: Dict[str, object]

    def produced(self) -> List[Element]:
        """The elements the reaction will insert when this match fires."""
        return self.reaction.apply(dict(self.binding))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Match({self.reaction.name}, consumed={list(self.consumed)!r})"


class Matcher:
    """Backtracking matcher bound to one multiset snapshot.

    The matcher builds a :class:`LabelTagIndex` lazily; callers that already
    maintain an index (the parallel scheduler) can pass it in to avoid the
    rebuild cost.

    With ``compiled=True`` each probed reaction is specialized once through
    :func:`repro.gamma.compiled.compile_reaction` and subsequent probes run
    the compiled matcher (slot-based search, codegenned guards/productions)
    instead of this class's interpretive search.  The interpreted path is the
    semantic baseline; the compiled path reproduces its matches exactly for
    identity match plans, and the same match *set* otherwise (see
    :mod:`repro.gamma.compiled`).
    """

    def __init__(
        self,
        multiset: Multiset,
        index: Optional[LabelTagIndex] = None,
        rng: Optional[random.Random] = None,
        compiled: bool = False,
    ) -> None:
        self.multiset = multiset
        self.index = index if index is not None else LabelTagIndex(multiset)
        self.rng = rng
        self.compiled = compiled
        # id(reaction) -> (CompiledReaction | None, reaction).  The reaction is
        # kept alongside to hold a strong reference while the id is cached;
        # ``None`` marks a reaction the compiler refused (probed interpretively).
        self._compiled_cache: Dict[int, Tuple[Optional[object], Reaction]] = {}

    # -- compilation -----------------------------------------------------------
    def compiled_for(self, reaction: Reaction):
        """The :class:`~repro.gamma.compiled.CompiledReaction` for ``reaction``.

        Returns ``None`` when ``compiled=False`` or the reaction defeats the
        compiler (the probe then falls back to the interpreted search).
        """
        if not self.compiled:
            return None
        entry = self._compiled_cache.get(id(reaction))
        if entry is None:
            from .compiled import CompilationError, compile_reaction

            try:
                compiled = compile_reaction(reaction)
            except CompilationError:
                compiled = None
            entry = (compiled, reaction)
            self._compiled_cache[id(reaction)] = entry
        return entry[0]

    # -- public API ------------------------------------------------------------
    def find(self, reaction: Reaction) -> Optional[Match]:
        """Return one enabled match for ``reaction`` or ``None``."""
        compiled = self.compiled_for(reaction)
        if compiled is not None:
            return compiled.find(self.index, self.multiset, self.rng)
        for match in self.iter_matches(reaction):
            return match
        return None

    def iter_matches(self, reaction: Reaction, limit: Optional[int] = None) -> Iterator[Match]:
        """Yield enabled matches for ``reaction`` (up to ``limit`` when given).

        Matches that bind the same multiset of consumed elements through a
        different pattern ordering are all yielded; deduplication, when
        needed, is the caller's concern (the chaotic scheduler only takes the
        first match, the parallel scheduler deduplicates by consumed
        elements).
        """
        compiled = self.compiled_for(reaction)
        if compiled is not None:
            yield from compiled.iter_matches(self.index, self.multiset, self.rng, limit=limit)
            return
        produced = 0
        for consumed, binding in self._search(reaction.replace, {}, [], Counter()):
            if not reaction.is_enabled(binding):
                continue
            yield Match(reaction=reaction, consumed=tuple(consumed), binding=dict(binding))
            produced += 1
            if limit is not None and produced >= limit:
                return

    def is_enabled(self, reaction: Reaction) -> bool:
        """True when ``reaction`` has at least one enabled match."""
        return self.find(reaction) is not None

    # -- search -----------------------------------------------------------------
    def _candidates(self, pat: ElementPattern, binding: Binding) -> Iterable[Element]:
        """Candidate elements for ``pat`` given the variables bound so far.

        Deterministic matching (``rng is None``) yields candidates lazily from
        the index — an enabled probe then touches O(arity) elements instead of
        materializing whole label buckets.  Randomized matching materializes
        and shuffles, as the chaotic/parallel schedulers require.
        """
        fixed_label = pat.fixed_label()
        # When the label is a bound variable we can still use the index.
        if fixed_label is None:
            from .expr import Var

            if isinstance(pat.label, Var) and pat.label.name in binding:
                fixed_label = binding[pat.label.name]

        tag_value: Optional[int] = None
        tag_var = pat.tag_variable()
        if tag_var is not None and tag_var in binding:
            tag_value = binding[tag_var]
        else:
            from .expr import Const

            if isinstance(pat.tag, Const):
                tag_value = pat.tag.value

        if self.rng is None:
            if fixed_label is not None:
                return self.index.iter_candidates(fixed_label, tag_value)
            return self._iter_all_labels(tag_value)

        if fixed_label is not None:
            candidates = self.index.candidates(fixed_label, tag_value)
        else:
            # Variable label not yet bound: consider every distinct element,
            # restricted by tag when it is known.
            candidates = []
            for label in self.index.labels():
                candidates.extend(self.index.candidates(label, tag_value))

        candidates = list(candidates)
        self.rng.shuffle(candidates)
        return candidates

    def _iter_all_labels(self, tag_value: Optional[int]) -> Iterator[Element]:
        for label in self.index.labels():
            yield from self.index.iter_candidates(label, tag_value)

    def _search(
        self,
        patterns: Sequence[ElementPattern],
        binding: Binding,
        consumed: List[Element],
        consumed_counts: Counter,
    ) -> Iterator[Tuple[List[Element], Binding]]:
        """Backtracking search assigning elements to patterns in order.

        ``consumed_counts`` is a running multiset of the elements consumed so
        far, threaded through the recursion so the multiplicity check is O(1)
        per candidate instead of a linear rescan of ``consumed``.
        """
        if not patterns:
            yield list(consumed), dict(binding)
            return
        pat, rest = patterns[0], patterns[1:]
        for element in self._candidates(pat, binding):
            # Respect multiplicities: the same element value can only be
            # consumed as many times as it occurs in the multiset.
            already = consumed_counts[element]
            if already and self.multiset.count(element) <= already:
                continue
            new_binding = pat.match(element, binding)
            if new_binding is None:
                continue
            consumed.append(element)
            consumed_counts[element] += 1
            yield from self._search(rest, new_binding, consumed, consumed_counts)
            consumed.pop()
            consumed_counts[element] -= 1


def find_match(
    reaction: Reaction,
    multiset: Multiset,
    rng: Optional[random.Random] = None,
) -> Optional[Match]:
    """Convenience wrapper: one enabled match of ``reaction`` in ``multiset``."""
    return Matcher(multiset, rng=rng).find(reaction)


def iter_matches(
    reaction: Reaction,
    multiset: Multiset,
    limit: Optional[int] = None,
) -> Iterator[Match]:
    """Convenience wrapper: iterate enabled matches of ``reaction`` in ``multiset``."""
    return Matcher(multiset).iter_matches(reaction, limit=limit)
