"""Vectorized execution over columnar storage: the fifth matcher variant.

:mod:`repro.gamma.compiled` generates four matcher variants per reaction
(find/iterate x deterministic/seeded).  This module adds the **fifth**: a
*mask program* that evaluates a reaction's constant fields, cross-pattern
equalities and guard as one boolean sweep over a whole
:class:`~repro.multiset.columnar.ColumnarBucket` — ``numpy`` elementwise
kernels over the bucket's int64 columns when numpy is available, a codegenned
scalar closure otherwise.  Three consumers sit on top of it:

* :func:`vectorized_for` / :meth:`CompiledReaction.vectorized` — lower a
  compiled reaction to a :class:`VectorizedReaction` (or ``None`` when the
  reaction is outside the vectorizable fragment; callers then stay on the
  object path, a per-reaction fallback that never changes semantics).
* :class:`ColumnarKernel` — a whole-drain sequential engine core.  It mirrors
  the multiset into a detached :class:`ColumnarStore`, replays the
  sequential engine's first-match/fire loop entirely against the columns
  (guard probes become chunked mask sweeps with memoized candidate queues;
  extremum/sum fold *candidates* come from single vector compares per sweep),
  and writes the exact object state back with
  :meth:`~repro.multiset.columnar.ColumnarStore.sync_into` when it finishes
  or bails.  Traces are **bit-identical** to the object engine: the kernel
  enumerates candidates in the same stable slot order the compiled find
  matcher scans buckets in, and the store replicates ``Counter`` key
  insertion/tombstone order exactly.
* :func:`columnar_collect` — a columnar superstep collector with the same
  claim-accounting contract as
  :meth:`~repro.gamma.compiled.CompiledReaction.collect`, yielding the same
  matches in the same order, used by the parallel backend when
  ``columnar=True``.

Vectorizable fragment (everything else falls back per reaction):

* arity 1 or 2, identity match plan, no variable labels, no conditional
  ``by`` branches (the first branch must be unconditional);
* pattern fields are variables or int/bool constants;
* the guard uses ``+ - * % min max`` arithmetic, comparisons and boolean
  connectives over bound variables and int constants — no ``/`` (trunc-div
  diverges from floor semantics on arrays) and no value whose static bound
  can overflow int64;
* ``%`` guards carry a *hazard* pre-check: any reachable zero divisor makes
  the kernel bail to the object path, which then raises (or not) exactly as
  the compiled guard would.

The kernel additionally bails whenever a firing produces an element that
demotes a tracked bucket from vectorizable (non-int payloads, out-of-bound
magnitudes), so heterogeneous solutions degrade in speed, never in meaning.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..multiset.columnar import (
    VECTOR_INT_BOUND,
    ColumnarBucket,
    ColumnarStore,
    numpy_or_none,
)
from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .expr import BinOp, BoolOp, Compare, Const, Expr, Not, Var
from .reaction import Reaction
from .tracer import FiringRecord, StepRecord

__all__ = [
    "VectorizedReaction",
    "vectorized_for",
    "ColumnarKernel",
    "columnar_collect",
    "SWEEP_CHUNK",
]

#: Slots swept per lazy mask-evaluation chunk of the sequential kernel.
SWEEP_CHUNK = 4096

#: Static magnitude bound above which mask arithmetic could leave int64.
_OVERFLOW_BOUND = 2**62

_REFS = ("v0", "t0", "v1", "t1")


class _Unsupported(Exception):
    """Internal: the expression/reaction is outside the vectorizable fragment."""


class _Bail(Exception):
    """Internal: the kernel must hand this drain back to the object path."""


# ---------------------------------------------------------------------------
# Guard lowering: Expr -> (numpy mask source, scalar source)
# ---------------------------------------------------------------------------

class _Lowered:
    """One lowered subexpression: twin sources plus static metadata."""

    __slots__ = ("vec", "sca", "kind", "maxabs", "vars")

    def __init__(self, vec: str, sca: str, kind: str, maxabs: int, vars_: frozenset):
        self.vec = vec
        self.sca = sca
        self.kind = kind  # "int" | "bool"
        self.maxabs = maxabs
        self.vars = vars_


def _fold_const(expr: Expr) -> _Lowered:
    """Lower a variable-free subexpression by evaluating it once."""
    try:
        value = expr.evaluate({})
    except Exception as exc:  # evaluation faults stay on the object path
        raise _Unsupported("constant subexpression faults") from exc
    if isinstance(value, bool):
        src = "True" if value else "False"
        return _Lowered(src, src, "bool", 1, frozenset())
    if isinstance(value, int):
        if abs(value) > _OVERFLOW_BOUND:
            raise _Unsupported("constant exceeds the int64 mask bound")
        return _Lowered(repr(value), repr(value), "int", abs(value), frozenset())
    raise _Unsupported(f"non-int constant {value!r}")


def _lower(expr: Expr, refs: Dict[str, str], hazards: List[Tuple[str, str, frozenset]]) -> _Lowered:
    """Lower ``expr`` to twin (vector, scalar) sources over ``v0,t0,v1,t1``.

    ``refs`` maps reaction variables to the four positional refs; ``%`` with a
    non-constant divisor appends a ``(vec, sca, vars)`` hazard term (divisor
    may be zero) to ``hazards``.  Raises :class:`_Unsupported` outside the
    fragment.
    """
    if not expr.variables():
        return _fold_const(expr)
    if isinstance(expr, Var):
        ref = refs[expr.name]
        return _Lowered(ref, ref, "int", VECTOR_INT_BOUND, frozenset((ref,)))
    if isinstance(expr, Const):  # pragma: no cover - consts have no variables
        return _fold_const(expr)
    if isinstance(expr, BinOp):
        if expr.op == "/":
            raise _Unsupported("division guards stay on the object path")
        left = _lower(expr.left, refs, hazards)
        right = _lower(expr.right, refs, hazards)
        if left.kind != "int" or right.kind != "int":
            raise _Unsupported("arithmetic over boolean subexpressions")
        vars_ = left.vars | right.vars
        if expr.op in ("+", "-"):
            maxabs = left.maxabs + right.maxabs
            vec = sca = f"(({left.vec}) {expr.op} ({right.vec}))"
            sca = f"(({left.sca}) {expr.op} ({right.sca}))"
        elif expr.op == "*":
            maxabs = left.maxabs * right.maxabs
            vec = f"(({left.vec}) * ({right.vec}))"
            sca = f"(({left.sca}) * ({right.sca}))"
        elif expr.op == "%":
            if isinstance(expr.right, Const) and expr.right.value == 0:
                raise _Unsupported("guard always divides by zero")
            if not isinstance(expr.right, Const):
                hazards.append((f"(({right.vec}) == 0)", f"(({right.sca}) == 0)", right.vars))
            maxabs = right.maxabs
            vec = f"(({left.vec}) % ({right.vec}))"
            sca = f"(({left.sca}) % ({right.sca}))"
        elif expr.op in ("min", "max"):
            maxabs = max(left.maxabs, right.maxabs)
            helper = "_minimum" if expr.op == "min" else "_maximum"
            vec = f"{helper}(({left.vec}), ({right.vec}))"
            sca = f"{expr.op}(({left.sca}), ({right.sca}))"
        else:  # pragma: no cover - grammar closed by expr.py
            raise _Unsupported(f"operator {expr.op!r}")
        if maxabs > _OVERFLOW_BOUND:
            raise _Unsupported("static bound exceeds int64")
        return _Lowered(vec, sca, "int", maxabs, vars_)
    if isinstance(expr, Compare):
        left = _lower(expr.left, refs, hazards)
        right = _lower(expr.right, refs, hazards)
        if left.kind != "int" or right.kind != "int":
            raise _Unsupported("comparison over boolean subexpressions")
        vec = f"(({left.vec}) {expr.op} ({right.vec}))"
        sca = f"(({left.sca}) {expr.op} ({right.sca}))"
        return _Lowered(vec, sca, "bool", 1, left.vars | right.vars)
    if isinstance(expr, BoolOp):
        left = _lower(expr.left, refs, hazards)
        right = _lower(expr.right, refs, hazards)
        if left.kind != "bool" or right.kind != "bool":
            raise _Unsupported("boolean connective over non-boolean operands")
        vop = "&" if expr.op == "and" else "|"
        vec = f"(({left.vec}) {vop} ({right.vec}))"
        sca = f"(({left.sca}) {expr.op} ({right.sca}))"
        return _Lowered(vec, sca, "bool", 1, left.vars | right.vars)
    if isinstance(expr, Not):
        operand = _lower(expr.operand, refs, hazards)
        if operand.kind != "bool":
            raise _Unsupported("negation of a non-boolean operand")
        return _Lowered(f"(~({operand.vec}))", f"(not ({operand.sca}))", "bool", 1, operand.vars)
    raise _Unsupported(f"unsupported expression node {type(expr).__name__}")


def _compile_src(body: str, args: str) -> Callable:
    """Exec one generated mask/hazard function and return it."""
    np_ = numpy_or_none()
    namespace: Dict[str, Any] = {
        "_minimum": np_.minimum if np_ is not None else min,
        "_maximum": np_.maximum if np_ is not None else max,
    }
    src = f"def _mask({args}):\n    return {body}\n"
    exec(compile(src, "<vector-mask>", "exec"), namespace)
    return namespace["_mask"]


# ---------------------------------------------------------------------------
# Reaction lowering
# ---------------------------------------------------------------------------

def _pattern_refs(reaction: Reaction) -> Dict[str, str]:
    """Map each pattern variable to its first-binding positional ref."""
    refs: Dict[str, str] = {}
    for k, pat in enumerate(reaction.replace):
        for field_expr, ref in ((pat.value, f"v{k}"), (pat.tag, f"t{k}")):
            if isinstance(field_expr, Var) and field_expr.name not in refs:
                refs[field_expr.name] = ref
    return refs


def _const_int(expr: Expr) -> int:
    """The int value of a Const field (bools canonicalize to ints)."""
    value = expr.value  # type: ignore[attr-defined]
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int) and abs(value) <= VECTOR_INT_BOUND:
        return value
    raise _Unsupported(f"non-int pattern constant {value!r}")


class VectorizedReaction:
    """A reaction lowered to columnar mask programs (the fifth variant).

    Holds the twin codegenned mask functions (numpy-elementwise and scalar
    short-circuit), the divisor-hazard pre-checks, and the compiled
    binding/production specs the columnar kernel and collector execute.
    Construction is via :func:`vectorized_for` only.
    """

    __slots__ = (
        "compiled",
        "reaction",
        "arity",
        "labels",
        "tag_consts",
        "outer_sca",
        "pair_vec",
        "pair_sca",
        "uses_outer",
        "hazard_vec",
        "hazard_terms",
        "collect_safe",
        "collide",
        "binding_spec",
        "bind",
        "productions",
        "source",
    )

    def __init__(self, compiled: "Any") -> None:
        reaction: Reaction = compiled.reaction
        plan = compiled.plan
        if compiled.wildcard or not plan.is_identity:
            raise _Unsupported("wildcard or reordered plans stay on the object path")
        if reaction.arity not in (1, 2):
            raise _Unsupported("only unary/binary reactions are vectorized")
        if reaction.branches[0].condition is not None:
            raise _Unsupported("conditional by-branches stay on the object path")
        self.compiled = compiled
        self.reaction = reaction
        self.arity = reaction.arity

        refs = _pattern_refs(reaction)
        labels: List[str] = []
        tag_consts: List[Optional[int]] = []
        constraints: List[Tuple[_Lowered, bool]] = []  # (term, outer_only)
        hazards: List[Tuple[str, str, frozenset]] = []
        bound: Dict[str, str] = {}
        for k, pat in enumerate(reaction.replace):
            if not isinstance(pat.label, Const) or not isinstance(pat.label.value, str):
                raise _Unsupported("variable/non-string labels stay on the object path")
            labels.append(pat.label.value)
            for field_expr, ref in ((pat.value, f"v{k}"), (pat.tag, f"t{k}")):
                if isinstance(field_expr, Const):
                    if ref.startswith("t") and isinstance(field_expr.value, bool):
                        # A bool tag constant can never match (tags are ints
                        # with bool excluded at construction) — but equality
                        # against the int column would claim otherwise.
                        raise _Unsupported("boolean tag constant")
                    term = _Lowered(
                        f"({ref} == {_const_int(field_expr)})",
                        f"({ref} == {_const_int(field_expr)})",
                        "bool",
                        1,
                        frozenset((ref,)),
                    )
                    constraints.append((term, k == 0))
                elif isinstance(field_expr, Var):
                    first = bound.get(field_expr.name)
                    if first is None:
                        bound[field_expr.name] = ref
                    else:
                        term = _Lowered(
                            f"({ref} == {first})", f"({ref} == {first})", "bool", 1,
                            frozenset((ref, first)),
                        )
                        constraints.append((term, k == 0))
                else:
                    raise _Unsupported("computed pattern fields stay on the object path")
            tag_consts.append(
                _const_int(pat.tag) if isinstance(pat.tag, Const) else None
            )
        self.labels = tuple(labels)
        self.tag_consts = tuple(tag_consts)

        guard_term: Optional[_Lowered] = None
        if reaction.guard is not None:
            guard_term = _lower(reaction.guard, refs, hazards)
            if guard_term.kind != "bool":
                raise _Unsupported("non-boolean guard")

        outer_terms = [t for t, outer_only in constraints if outer_only]
        pair_terms = [t for t, _ in constraints]
        if guard_term is not None:
            pair_terms.append(guard_term)
        if self.arity == 1 and guard_term is not None:
            outer_terms.append(guard_term)

        def conjoin(terms: List[_Lowered], vec: bool) -> Optional[str]:
            if not terms:
                return None
            glue = " & " if vec else " and "
            return glue.join(t.vec if vec else t.sca for t in terms)

        args = "v0, t0, v1, t1" if self.arity == 2 else "v0, t0"
        outer_src = conjoin(outer_terms, vec=False)
        self.outer_sca = _compile_src(outer_src, "v0, t0") if outer_src else None
        if self.arity == 2:
            pair_vec_src = conjoin(pair_terms, vec=True)
            pair_sca_src = conjoin(pair_terms, vec=False)
            self.pair_vec = _compile_src(pair_vec_src, args) if pair_vec_src else None
            self.pair_sca = _compile_src(pair_sca_src, args) if pair_sca_src else None
            pair_vars = frozenset().union(*(t.vars for t in pair_terms)) if pair_terms else frozenset()
            self.uses_outer = bool(pair_vars & {"v0", "t0"})
        else:
            self.pair_vec = None
            self.pair_sca = None
            self.uses_outer = True

        # Divisor hazards: classified by which pattern's fields they read, so
        # the superstep collector can pre-check a whole snapshot per side.
        self.hazard_terms: List[Tuple[str, Callable]] = []
        collect_safe = True
        for vec_src, _sca_src, vars_ in hazards:
            outer_vars = vars_ & {"v0", "t0"}
            inner_vars = vars_ & {"v1", "t1"}
            if outer_vars and inner_vars:
                side = "mixed"
                collect_safe = False
            elif inner_vars:
                side = "inner"
            else:
                side = "outer"
            self.hazard_terms.append((side, _compile_src(vec_src, args)))
        if hazards:
            any_src = " | ".join(vec for vec, _, _ in hazards)
            self.hazard_vec = _compile_src(f"({any_src})", args)
        else:
            self.hazard_vec = None
        self.collect_safe = collect_safe
        self.collide = self.arity == 2 and labels[0] == labels[1]

        # Binding extraction: plan slot order, first-encounter field —
        # codegenned to one dict display so firing pays no getattr loop.
        spec: List[Tuple[str, int, str]] = []
        sites: Dict[str, Tuple[int, str]] = {}
        for k, pat in enumerate(reaction.replace):
            for field_expr, attr in ((pat.value, "value"), (pat.label, "label"), (pat.tag, "tag")):
                if isinstance(field_expr, Var) and field_expr.name not in sites:
                    sites[field_expr.name] = (k, attr)
        for name in plan.slots:
            k, attr = sites[name]
            spec.append((name, k, attr))
        self.binding_spec = tuple(spec)
        items = ", ".join(f"{name!r}: es[{k}].{attr}" for name, k, attr in spec)
        self.bind = _compile_src(f"{{{items}}}", "es")

        # Productions of the (unconditional) first branch: constant-shaped
        # templates are *interned* against the store's live slots so repeated
        # firings reuse the existing element objects; everything else runs
        # the compiled template closure.
        from .compiled import _compile_env_expr  # local import: avoid cycle at module load

        prods: List[Tuple] = []
        for i, tmpl in enumerate(reaction.branches[0].productions):
            if (
                isinstance(tmpl.label, Const)
                and isinstance(tmpl.label.value, str)
                and isinstance(tmpl.tag, Const)
                and isinstance(tmpl.tag.value, int)
                and not isinstance(tmpl.tag.value, bool)
            ):
                prods.append(
                    ("intern", tmpl.label.value, tmpl.tag.value, _compile_env_expr(tmpl.value))
                )
            else:
                prods.append(("call", compiled._branches[0][1][i]))
        self.productions = tuple(prods)

        parts = []
        if self.arity == 2:
            parts.append(f"# vector mask ({args})\n{pair_vec_src or 'True'}")
            parts.append(f"# scalar mask ({args})\n{pair_sca_src or 'True'}")
        if outer_src:
            parts.append(f"# outer mask (v0, t0)\n{outer_src}")
        if hazards:
            parts.append("# hazard (any divisor zero)\n" + " | ".join(v for v, _, _ in hazards))
        self.source = "\n".join(parts) or "# unconditional mask\nTrue"

    # -- firing -----------------------------------------------------------------
    def binding_for(self, elements: Tuple[Element, ...]) -> Dict[str, Any]:
        """The match binding dict, in the compiled matcher's slot key order."""
        return self.bind(elements)


def vectorized_for(compiled: "Any") -> Optional[VectorizedReaction]:
    """Lower ``compiled`` to its mask program, or ``None`` outside the fragment.

    Prefer :meth:`~repro.gamma.compiled.CompiledReaction.vectorized`, which
    caches the result (and the generated mask source) on the reaction.
    """
    try:
        return VectorizedReaction(compiled)
    except _Unsupported:
        return None


# ---------------------------------------------------------------------------
# Sequential whole-drain kernel
# ---------------------------------------------------------------------------

class _InnerQueue:
    """Memoized inner-candidate queue for one (reaction, outer-key) pair.

    The pair mask depends on the outer only through ``(v0, t0)``, so one
    queue serves *every* outer slot carrying that key — outer values repeat
    heavily in the paper workloads, which is what amortizes the sweeps.
    ``q`` holds mask-true slot indexes of the lazily chunk-swept prefix
    ``[0, sweep_pos)`` of the inner bucket (``sweep_pos`` is pushed to the
    bucket's current length each time the queue is used, so later appends
    are swept in exactly once).  ``fh`` is a monotone dead-prefix head:
    entries are only ever *passed* permanently when their slot dies — a
    global property, which keeps the front of the queue equal to the first
    live candidate the object matcher's scan-from-head would find, for any
    outer.
    """

    __slots__ = ("q", "fh", "sweep_pos", "v0", "t0")

    def __init__(self, sweep_start: int, v0: int, t0: int) -> None:
        self.q: List[int] = []
        self.fh = 0
        self.sweep_pos = sweep_start
        self.v0 = v0
        self.t0 = t0


class _ReactionState:
    """Persistent per-reaction probe state of the sequential kernel."""

    __slots__ = (
        "vec",
        "b0",
        "b1",
        "selfable",
        "cur",
        "outer_cursor",
        "queue",
        "queues",
        "failed",
        "appends_seen",
        "merges_seen",
        "self_blocked",
        "last_slots",
        "producers",
    )

    def __init__(self, vec: VectorizedReaction, store: ColumnarStore) -> None:
        self.vec = vec
        self.b0 = store.bucket_for(vec.labels[0])
        self.b1 = store.bucket_for(vec.labels[1]) if vec.arity == 2 else None
        self.selfable = self.b1 is self.b0
        self.cur = -1
        self.outer_cursor = 0
        self.queue: Optional[_InnerQueue] = None
        # Queues memoized by outer key; outer-independent masks collapse to
        # the single key ``None``.
        self.queues: Dict[Any, _InnerQueue] = {}
        self.failed: Dict[int, bool] = {}  # outer slot -> blocked-on-self-count
        self.appends_seen = len(self.b1.elements) if self.b1 is not None else 0
        self.merges_seen = len(self.b0.merge_log) if self.selfable else 0
        self.self_blocked = False
        #: Slots of the last probe's consumed tuple (kernel removes by slot).
        self.last_slots: Tuple[int, ...] = ()
        # Productions with their target buckets pre-bound (bucket objects are
        # stable for a store's lifetime, so the per-firing label lookup of
        # the generic path is dead weight here).
        self.producers: Tuple = tuple(
            ("intern", store.bucket_for(entry[1]), entry[1], entry[2], entry[3])
            if entry[0] == "intern"
            else entry
            for entry in vec.productions
        )

    # -- event ingestion ---------------------------------------------------------
    def _pair_ok(self, v0: int, t0: int, v1: Any, t1: int) -> bool:
        vec = self.vec
        if vec.pair_sca is None:
            return True
        try:
            return bool(vec.pair_sca(v0, t0, v1, t1))
        except ZeroDivisionError as exc:
            raise _Bail("divisor hazard") from exc

    def _revive_for_append(self, vj: int, tj: int) -> List[int]:
        """Failed outer slots for which a newly appended inner is a partner."""
        b0 = self.b0
        failed = self.failed
        vec = self.vec
        np_ = numpy_or_none()
        revived: List[int] = []
        if np_ is not None and len(failed) >= 32 and vec.pair_vec is not None:
            slots = np_.fromiter(failed.keys(), dtype=np_.int64, count=len(failed))
            values, tags, counts = b0.values_view()
            if vec.hazard_vec is not None and bool(
                vec.hazard_vec(values[slots], tags[slots], vj, tj).any()
            ):
                raise _Bail("divisor hazard")
            mask = vec.pair_vec(values[slots], tags[slots], vj, tj) & (counts[slots] > 0)
            for f in slots[mask].tolist():
                revived.append(f)
                del failed[f]
            return revived
        for f in list(failed):
            if b0.counts[f] <= 0:
                del failed[f]
            elif self._pair_ok(b0.values[f], b0.tags[f], vj, tj):
                revived.append(f)
                del failed[f]
        return revived

    def _process_events(self) -> None:
        """Catch up on inner-bucket appends and self-count merges.

        Appends may create matches for *failed* outers (revival); merges can
        only revive outers that failed while blocked on their own
        multiplicity (a self-pair needs two copies).  Any revival rewinds
        the outer cursor to the earliest revived slot — the object matcher
        would find that outer first.  (Appends reach the candidate queues
        lazily, through each queue's sweep watermark, not here.)
        """
        revived: List[int] = []
        b1 = self.b1
        if b1 is not None:
            end = len(b1.elements)
            if end > self.appends_seen:
                values = b1.values
                tags = b1.tags
                counts = b1.counts
                for j in range(self.appends_seen, end):
                    if counts[j] <= 0 or not self.failed:
                        continue
                    revived.extend(self._revive_for_append(values[j], tags[j]))
                self.appends_seen = end
        if self.selfable:
            log = self.b0.merge_log
            end = len(log)
            if end > self.merges_seen:
                counts = self.b0.counts
                for idx in range(self.merges_seen, end):
                    slot = log[idx]
                    if self.failed.get(slot) is True and counts[slot] >= 2:
                        revived.append(slot)
                        del self.failed[slot]
                self.merges_seen = end
        if revived:
            self.outer_cursor = min(self.outer_cursor, min(revived))
            self.cur = -1
            self.queue = None

    # -- outer scan ---------------------------------------------------------------
    def _next_outer(self) -> int:
        """Advance to the next viable outer slot (-1 when the scan is dry)."""
        b0 = self.b0
        counts = b0.counts
        values = b0.values
        tags = b0.tags
        failed = self.failed
        vec = self.vec
        outer_sca = vec.outer_sca
        end = len(b0.elements)
        slot = self.outer_cursor
        while slot < end:
            if counts[slot] > 0 and slot not in failed:
                if outer_sca is None:
                    break
                try:
                    ok = outer_sca(values[slot], tags[slot])
                except ZeroDivisionError as exc:
                    raise _Bail("divisor hazard") from exc
                if ok:
                    break
                if vec.arity == 1:
                    failed[slot] = False  # unary guards are immutable per slot
            slot += 1
        if slot >= end:
            self.outer_cursor = slot
            return -1
        self.cur = slot
        self.outer_cursor = slot + 1
        if vec.arity == 2:
            key = (values[slot], tags[slot]) if vec.uses_outer else None
            queue = self.queues.get(key)
            if queue is None:
                queue = self.queues[key] = _InnerQueue(
                    self.b1.live_head, values[slot], tags[slot]
                )
            self.queue = queue
        return slot

    # -- inner sweep --------------------------------------------------------------
    def _sweep_some(self, queue: _InnerQueue, sweep_end: int) -> bool:
        """Mask-evaluate chunks of the inner bucket until a hit lands in ``q``.

        One numpy elementwise compare per chunk covers guard, constant fields
        and liveness at once; without numpy the same codegenned predicate
        runs as a scalar short-circuit loop.  Returns False when the sweep
        region ``[queue.sweep_pos, sweep_end)`` is exhausted without a hit.
        """
        b1 = self.b1
        vec = self.vec
        np_ = numpy_or_none()
        grew = False
        while queue.sweep_pos < sweep_end and not grew:
            lo = queue.sweep_pos
            hi = min(lo + SWEEP_CHUNK, sweep_end)
            queue.sweep_pos = hi
            if np_ is not None:
                views = b1.values_view()
                vs, ts, cs = views[0][lo:hi], views[1][lo:hi], views[2][lo:hi]
                if vec.hazard_vec is not None:
                    if bool(vec.hazard_vec(queue.v0, queue.t0, vs, ts).any()):
                        raise _Bail("divisor hazard in sweep")
                if vec.pair_vec is None:
                    mask = cs > 0
                else:
                    mask = vec.pair_vec(queue.v0, queue.t0, vs, ts) & (cs > 0)
                hits = mask.nonzero()[0]
                if hits.size:
                    queue.q.extend((hits + lo).tolist())
                    grew = True
            else:
                counts = b1.counts
                values = b1.values
                tags = b1.tags
                for s in range(lo, hi):
                    if counts[s] > 0 and self._pair_ok(
                        queue.v0, queue.t0, values[s], tags[s]
                    ):
                        queue.q.append(s)
                        grew = True
        return grew

    def _scan_inner(self) -> int:
        """First live inner partner for the current outer; -1 when exhausted.

        Walks the queue's memoized candidates from its dead-prefix head,
        retiring entries permanently only when their slot died (sound for
        every outer sharing the queue); a live candidate that is the outer
        itself without a second copy is skipped non-destructively.  When the
        memoized list runs dry, more of the bucket — including slots
        appended since the last use — is mask-swept in.
        """
        queue = self.queue
        b1 = self.b1
        counts = b1.counts
        cur = self.cur if self.selfable else -1
        self.self_blocked = False
        entries = queue.q
        k = queue.fh
        while True:
            while k < len(entries):
                s = entries[k]
                if counts[s] <= 0:
                    if k == queue.fh:
                        queue.fh = k + 1
                    k += 1
                    continue
                if s == cur:
                    if counts[s] >= 2:
                        return s
                    self.self_blocked = True
                    k += 1
                    continue
                return s
            if queue.sweep_pos < len(b1.elements):
                if not self._sweep_some(queue, len(b1.elements)):
                    return -1
                continue
            return -1

    # -- probe --------------------------------------------------------------------
    def probe(self) -> Optional[Tuple[Element, ...]]:
        """The reaction's first match against the store, or ``None``.

        Equivalent by construction to the compiled find matcher's result on
        the mirrored multiset: same first outer (bucket slot order, skipping
        proven-dead outers), same first inner (candidate queues enumerate
        mask-true slots in slot order and only retire them on death).
        """
        self._process_events()
        b0 = self.b0
        while True:
            if self.cur < 0 and self._next_outer() < 0:
                return None
            cur = self.cur
            if b0.counts[cur] <= 0:
                self.cur = -1
                self.queue = None
                continue
            if self.vec.arity == 1:
                self.last_slots = (cur,)
                return (b0.elements[cur],)
            partner = self._scan_inner()
            if partner >= 0:
                self.last_slots = (cur, partner)
                return (b0.elements[cur], self.b1.elements[partner])
            self.failed[cur] = self.self_blocked
            self.cur = -1
            self.queue = None


class ColumnarKernel:
    """Whole-drain columnar core for the sequential engine.

    Built against a live :class:`~repro.gamma.scheduler.ReactionScheduler`
    (deterministic, incremental, compiled); mirrors the multiset into a
    detached :class:`ColumnarStore`, runs the first-match/fire loop against
    the columns, and on every exit path — stable, budget, bail, or a raising
    production — writes the exact object state back and re-arms the
    scheduler, so the object engine can always pick up mid-run.
    """

    def __init__(self, scheduler: "Any", store: ColumnarStore, states: List[_ReactionState]) -> None:
        self.scheduler = scheduler
        self.store = store
        self.states = states
        self._tracked = {id(state.b0) for state in states} | {
            id(state.b1) for state in states if state.b1 is not None
        }

    @classmethod
    def build(cls, scheduler: "Any") -> Optional["ColumnarKernel"]:
        """A kernel for ``scheduler``'s run, or ``None`` outside the fragment.

        Requires a deterministic (unseeded), incremental scheduler carrying
        an attached columnar store (``columnar=True``); every reaction must
        lower to a mask program and every footprint bucket must be
        int-shaped.  The kernel drives the scheduler's own attached store —
        mutating it directly while the drain runs, then writing the multiset
        back — so the mirror stays coherent for any object-path work that
        follows a bail.  Ineligibility is never an error: the caller simply
        stays on the object drain.
        """
        store = scheduler.columnar_store
        if store is None or scheduler.rng is not None or not scheduler.incremental:
            return None
        vecs: List[VectorizedReaction] = []
        for compiled in scheduler._compiled:
            if compiled is None:
                return None
            vec = compiled.vectorized()
            if vec is None:
                return None
            vecs.append(vec)
        if not vecs:
            return None
        for vec in vecs:
            for label in vec.labels:
                if not store.bucket_for(label).vectorizable:
                    return None
        states = [_ReactionState(vec, store) for vec in vecs]
        return cls(scheduler, store, states)

    # -- drain --------------------------------------------------------------------
    def drain(
        self,
        trace: "Any",
        max_steps: int,
        profiler: Optional["Any"] = None,
    ) -> Tuple[int, int, str]:
        """Fire first matches until stable, budget, or a bail condition.

        Returns ``(steps, firings, outcome)`` with ``outcome`` one of
        ``"stable"``, ``"budget"`` (budget handling — raising or returning a
        partial result — is the engine's job, so messages stay uniform) or
        ``"bail"`` (the object path must finish this drain: a divisor
        hazard, or a produced element demoted a tracked bucket).  The trace
        records written here are bit-identical to the object engine's; the
        multiset is resynchronized on every exit, including raising
        production evaluation.
        """
        steps = 0
        firings = 0
        outcome = "stable"
        store = self.store
        states = self.states
        tracked = self._tracked
        trace_steps = trace.steps
        timer = None
        if profiler is not None:
            from time import perf_counter as timer  # noqa: F811
        try:
            while True:
                if steps >= max_steps:
                    outcome = "budget"
                    break
                t0 = timer() if timer else 0.0
                found = None
                vec = None
                for state in states:
                    consumed = state.probe()
                    if consumed is not None:
                        found = consumed
                        vec = state.vec
                        break
                if timer:
                    profiler.add("guard", timer() - t0)
                if found is None:
                    break
                t0 = timer() if timer else 0.0
                # Same records the object drain writes, constructed directly
                # (the wrappers' re-tupling and binding-copying showed up at
                # 10^5-firing scale).  The step record lands *before* the
                # productions run — the object drain calls ``begin_step``
                # first too, so a raising production leaves the same empty
                # step behind on both paths.
                n = len(trace_steps)
                step_rec = StepRecord(step=n)
                trace_steps.append(step_rec)
                binding = vec.bind(found)
                produced = []
                for entry in state.producers:
                    if entry[0] == "intern":
                        _, bucket, label, tag, value_fn = entry
                        value = value_fn(binding)
                        try:
                            slot = bucket.slot_of.get((value, tag))
                        except TypeError:
                            slot = None  # unhashable: Element() raises canonically
                        if slot is not None:
                            produced.append(bucket.elements[slot])
                        else:
                            produced.append(Element(value=value, label=label, tag=tag))
                    else:
                        produced.append(entry[1](binding))
                slots = state.last_slots
                store.remove_slot(state.b0, slots[0])
                if len(slots) == 2:
                    store.remove_slot(state.b1, slots[1])
                demoted = False
                for element in produced:
                    bucket, _slot, appended = store.add(element)
                    if appended and not bucket.vectorizable and id(bucket) in tracked:
                        demoted = True
                step_rec.firings.append(
                    FiringRecord(
                        step=n,
                        reaction=vec.reaction.name,
                        consumed=found,
                        produced=tuple(produced),
                        binding=binding,
                    )
                )
                firings += 1
                steps += 1
                if timer:
                    profiler.add("fire", timer() - t0)
                if demoted:
                    outcome = "bail"
                    break
        except _Bail:
            outcome = "bail"
        finally:
            t0 = timer() if timer else 0.0
            self._resync()
            if timer:
                profiler.add("notify", timer() - t0)
        return steps, firings, outcome

    def _resync(self) -> None:
        """Write the store back into the multiset and re-arm the scheduler."""
        scheduler = self.scheduler
        self.store.sync_into(scheduler.multiset)
        scheduler.index.rebuild(scheduler.multiset)
        scheduler._parked.clear()
        scheduler._dirty.clear()


# ---------------------------------------------------------------------------
# Columnar superstep collection (parallel backend)
# ---------------------------------------------------------------------------

class _Snapshot:
    """One superstep's frozen view of a (label, tag-filter) bucket slice."""

    __slots__ = ("elements", "values", "tags", "head")

    def __init__(self, elements: List[Element], values: Any, tags: Any) -> None:
        self.elements = elements
        self.values = values
        self.tags = tags
        self.head = 0


def _snapshot(store: ColumnarStore, label: str, tag: Optional[int], cache: Dict) -> _Snapshot:
    """The cached live-slot snapshot for one pattern's bucket slice."""
    key = ("snap", label, tag)
    snap = cache.get(key)
    if snap is not None:
        return snap
    bucket = store.buckets.get(label)
    np_ = numpy_or_none()
    if bucket is None or not bucket.elements:
        empty = np_.empty(0, dtype=np_.int64) if np_ is not None else []
        snap = _Snapshot([], empty, empty)
    elif np_ is not None:
        values, tags, counts = bucket.values_view()
        mask = counts > 0
        if tag is not None:
            mask = mask & (tags == tag)
        idx = mask.nonzero()[0]
        elements = [bucket.elements[i] for i in idx.tolist()]
        snap = _Snapshot(elements, values[idx], tags[idx])
    else:
        counts = bucket.counts
        tags_col = bucket.tags
        keep = [
            i
            for i in range(len(bucket.elements))
            if counts[i] > 0 and (tag is None or tags_col[i] == tag)
        ]
        snap = _Snapshot(
            [bucket.elements[i] for i in keep],
            [bucket.values[i] for i in keep],
            [tags_col[i] for i in keep],
        )
    cache[key] = snap
    return snap


def _hazard_clear(vec: VectorizedReaction, snaps: List[_Snapshot]) -> bool:
    """True when no divisor hazard is reachable anywhere in the snapshots."""
    np_ = numpy_or_none()
    for side, fn in vec.hazard_terms:
        snap = snaps[0] if side == "outer" else snaps[-1]
        if np_ is not None:
            hz = fn(snap.values, snap.tags, snap.values, snap.tags)
            if bool(np_.asarray(hz).any()):
                return False
        else:
            for v, t in zip(snap.values, snap.tags):
                try:
                    if fn(v, t, v, t):
                        return False
                except ZeroDivisionError:
                    return False
    return True


def _candidates(vec: VectorizedReaction, snap: _Snapshot, v0: int, t0: int, cache: Dict) -> List[int]:
    """Mask-true positions of the inner snapshot for outer key ``(v0, t0)``.

    Cached per superstep: outer-independent masks share one entry, and
    repeated outer keys (equal-value elements) re-use theirs.
    """
    key = ("cand", id(vec), v0, t0) if vec.uses_outer else ("cand", id(vec))
    cands = cache.get(key)
    if cands is not None:
        return cands
    np_ = numpy_or_none()
    if vec.pair_vec is None:
        cands = list(range(len(snap.elements)))
    elif np_ is not None:
        mask = vec.pair_vec(v0, t0, snap.values, snap.tags)
        cands = np_.asarray(mask).nonzero()[0].tolist()
    else:
        cands = [
            p
            for p in range(len(snap.elements))
            if vec.pair_sca(v0, t0, snap.values[p], snap.tags[p])
        ]
    cache[key] = cands
    return cands


def columnar_collect(
    compiled: "Any",
    store: ColumnarStore,
    multiset: Multiset,
    remaining: Dict[Element, int],
    cache: Dict,
):
    """Columnar variant of :meth:`CompiledReaction.collect`, or ``None``.

    Yields the *same matches in the same order* as the deterministic
    codegenned collector — same claim accounting against the shared
    ``remaining`` map, same exhausted-prefix head advance (kept in ``cache``
    so it persists across one superstep's reactions), same stable tie-break
    order — but enumerates guard-true partners from one cached mask sweep
    per outer key instead of re-evaluating the guard per pair.  Returns
    ``None`` when the reaction (or a divisor hazard reachable this
    superstep) requires the object path; the caller then falls back for this
    reaction only.
    """
    vec = compiled.vectorized()
    if vec is None or not vec.collect_safe:
        return None
    for label in vec.labels:
        bucket = store.buckets.get(label)
        if bucket is not None and not bucket.vectorizable:
            return None
    snaps = [
        _snapshot(store, vec.labels[k], vec.tag_consts[k], cache)
        for k in range(vec.arity)
    ]
    if vec.hazard_terms and not _hazard_clear(vec, snaps):
        return None
    return _collect_iter(compiled, vec, snaps, multiset, remaining, cache)


def _collect_iter(
    compiled: "Any",
    vec: VectorizedReaction,
    snaps: List[_Snapshot],
    multiset: Multiset,
    remaining: Dict[Element, int],
    cache: Dict,
):
    """Generator behind :func:`columnar_collect` (hazards already cleared)."""
    from .compiled import CompiledMatch

    mcount = multiset._counts.get
    snap0 = snaps[0]
    outer_sca = vec.outer_sca
    unary = vec.arity == 1
    snap1 = None if unary else snaps[-1]
    collide = vec.collide
    elems0 = snap0.elements
    j0 = snap0.head
    prefix = True
    while j0 < len(elems0):
        e0 = elems0[j0]
        r0 = remaining.get(e0)
        if r0 is not None and r0 <= 0:
            if prefix:
                snap0.head = j0 + 1
            j0 += 1
            continue
        prefix = False
        v0 = snap0.values[j0]
        t0 = snap0.tags[j0]
        if outer_sca is not None and not outer_sca(v0, t0):
            j0 += 1
            continue
        if unary:
            binding = vec.binding_for((e0,))
            yield CompiledMatch(
                reaction=vec.reaction, consumed=(e0,), binding=binding, compiled=compiled
            )
            x0 = remaining.get(e0)
            remaining[e0] = (mcount(e0) if x0 is None else x0) - 1
            j0 += 1
            continue
        # Advance the inner exhausted-prefix head, then walk the cached
        # mask-true candidate positions from it.
        elems1 = snap1.elements
        head1 = snap1.head
        while head1 < len(elems1):
            r = remaining.get(elems1[head1])
            if r is None or r > 0:
                break
            head1 += 1
        snap1.head = head1
        cands = _candidates(vec, snap1, int(v0), int(t0), cache)
        stop = False
        for p in cands[bisect_left(cands, head1):]:
            e1 = elems1[p]
            n1 = 1 if (collide and e1 is e0) else 0
            r1 = remaining.get(e1)
            if r1 is None:
                if n1 and mcount(e1) <= n1:
                    continue
            elif r1 <= 0:
                continue
            elif r1 <= n1:
                continue
            binding = vec.binding_for((e0, e1))
            yield CompiledMatch(
                reaction=vec.reaction, consumed=(e0, e1), binding=binding, compiled=compiled
            )
            x0 = remaining.get(e0)
            remaining[e0] = (mcount(e0) if x0 is None else x0) - 1
            x1 = remaining.get(e1)
            remaining[e1] = (mcount(e1) if x1 is None else x1) - 1
            if remaining[e0] <= 0:
                stop = True
                break
        j0 += 1
        if stop:
            continue
