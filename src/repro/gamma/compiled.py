"""Reaction compilation: specialize matching, guards and productions per reaction.

The interpreted pipeline pays a fixed interpretive tax on every candidate
probe: :meth:`ElementPattern.match` copies a binding dict per candidate,
guards and productions tree-walk the :class:`~repro.gamma.expr.Expr` AST per
evaluation, and every field access re-dispatches on ``Var``/``Const``.  A
reaction, however, is *static* for the lifetime of a run while being probed
millions of times — the classic staging opportunity.  This module compiles
each reaction once into:

* a **match plan** — the replace-list patterns reordered by selectivity
  (patterns whose label/tag are already known — constants or variables bound
  by an earlier pattern — come first, with stable tie-breaks on declaration
  order), with fixed labels/tags and shared-variable joins resolved at
  compile time;
* **slot-based matching** — every reaction variable gets a fixed slot; the
  generated matcher keeps the slot vector in local variables of one stack
  frame (the compiled form of a flat slot list), so candidate probes bind and
  compare scalars instead of copying dicts;
* **codegenned matchers** — for each reaction, four specialized functions are
  produced with :func:`compile`: deterministic and shuffled variants of
  ``find`` (first enabled match) and ``iterate`` (all enabled matches).  The
  nested candidate loops are unrolled per pattern, bucket lookups are inlined
  against the :class:`~repro.multiset.index.LabelTagIndex` raw buckets, and
  the consumed-multiplicity check is an O(1) comparison against the elements
  already chosen by the enclosing loops (no ``sum(...)``/``multiset.count``
  rescan per candidate);
* **compiled guards and productions** — expressions are lowered to Python
  source and compiled to closures; comparison nodes go through tiny wrappers
  that preserve the interpreter's ``EvaluationError`` semantics, and any
  expression the code generator does not understand (e.g. a user-defined
  :class:`Expr` subclass) falls back to *closure composition* over the node's
  own ``evaluate`` — semantics are never lost to the optimizer.

Equivalence contract
--------------------

For reactions whose match plan is the identity permutation — which includes
every reaction of the paper's listings and of Algorithm 1's output that the
engines' seeded-trace tests pin — the compiled matcher enumerates exactly the
same matches in exactly the same order as the interpreted
:class:`~repro.gamma.matching.Matcher`, consumes the RNG identically in
shuffled mode, and raises the same exceptions from guard/production
evaluation.  When the plan genuinely reorders patterns the *set* of matches
is unchanged but the enumeration order may differ (the same latitude the
scheduler's parking already takes for seeded engines).  The property tests in
``tests/properties/test_compiled_properties.py`` pin both halves of this
contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..multiset.element import Element
from ..multiset.index import LabelTagIndex
from ..multiset.multiset import Multiset
from .expr import (
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    BinOp,
    BoolOp,
    Compare,
    Const,
    EvaluationError,
    Expr,
    Not,
    Var,
    _safe_div,
)
from .matching import Match
from .pattern import Binding, ElementPattern, ElementTemplate
from .reaction import Reaction

__all__ = [
    "CompilationError",
    "CompiledMatch",
    "CompiledReaction",
    "MatchPlan",
    "compile_expr",
    "compile_reaction",
    "evaluate_productions",
]


class CompilationError(Exception):
    """Raised when a reaction cannot be compiled (callers fall back to the
    interpreted matcher)."""


class _Unsupported(Exception):
    """Internal: expression node the code generator cannot lower."""


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------

def _make_cmp(fn: Callable[[Any, Any], bool], node: Compare) -> Callable[[Any, Any], bool]:
    """Comparison wrapper preserving ``Compare.evaluate``'s error semantics."""

    def compare(a, b):
        """Apply the comparison, mapping ``TypeError`` to ``EvaluationError``."""
        try:
            return bool(fn(a, b))
        except TypeError as exc:
            raise EvaluationError(f"incomparable operands in {node!r}: {exc}") from exc

    return compare


def _lower(
    expr: Expr,
    ref: Callable[[str], str],
    consts: List[Any],
    helpers: List[Callable],
) -> str:
    """Lower ``expr`` to a Python source fragment.

    ``ref`` renders a variable reference (a slot local for the matcher, an
    ``E[...]`` lookup for env closures).  Constants are routed through the
    ``C`` table so arbitrary values need no ``repr`` round-trip; comparison
    nodes and unknown arithmetic operators go through the ``H`` helper table.
    Raises :class:`_Unsupported` for unknown node types.
    """
    if isinstance(expr, Var):
        return ref(expr.name)
    if isinstance(expr, Const):
        consts.append(expr.value)
        return f"C[{len(consts) - 1}]"
    if isinstance(expr, BinOp):
        left = _lower(expr.left, ref, consts, helpers)
        right = _lower(expr.right, ref, consts, helpers)
        op = expr.op
        if op in ("+", "-", "*", "%"):
            return f"({left} {op} {right})"
        if op == "/":
            return f"_div({left}, {right})"
        if op in ("min", "max"):
            return f"{op}({left}, {right})"
        # Operator registered in ARITHMETIC_OPS after this module was written:
        # call it directly, exactly like BinOp.evaluate does.
        helpers.append(ARITHMETIC_OPS[op])
        return f"H[{len(helpers) - 1}]({left}, {right})"
    if isinstance(expr, Compare):
        left = _lower(expr.left, ref, consts, helpers)
        right = _lower(expr.right, ref, consts, helpers)
        helpers.append(_make_cmp(COMPARISON_OPS[expr.op], expr))
        return f"H[{len(helpers) - 1}]({left}, {right})"
    if isinstance(expr, BoolOp):
        left = _lower(expr.left, ref, consts, helpers)
        right = _lower(expr.right, ref, consts, helpers)
        joiner = "and" if expr.op == "and" else "or"
        return f"(bool({left}) {joiner} bool({right}))"
    if isinstance(expr, Not):
        operand = _lower(expr.operand, ref, consts, helpers)
        return f"(not bool({operand}))"
    raise _Unsupported(f"cannot lower {type(expr).__name__}")


def _compose(expr: Expr) -> Callable[[Binding], Any]:
    """Closure-composition fallback for non-codegennable expressions.

    Known node kinds compose child closures with their operator functions
    (resolving dispatch once, at compile time); unknown node kinds delegate to
    the node's own ``evaluate``, which *defines* their semantics.
    """
    if isinstance(expr, (Var, Const)):
        return expr.evaluate
    if isinstance(expr, BinOp):
        fn = ARITHMETIC_OPS[expr.op]
        left, right = _compose(expr.left), _compose(expr.right)
        return lambda env: fn(left(env), right(env))
    if isinstance(expr, Compare):
        fn = _make_cmp(COMPARISON_OPS[expr.op], expr)
        left, right = _compose(expr.left), _compose(expr.right)
        return lambda env: fn(left(env), right(env))
    if isinstance(expr, BoolOp):
        left, right = _compose(expr.left), _compose(expr.right)
        if expr.op == "and":
            return lambda env: bool(left(env)) and bool(right(env))
        return lambda env: bool(left(env)) or bool(right(env))
    if isinstance(expr, Not):
        operand = _compose(expr.operand)
        return lambda env: not bool(operand(env))
    return expr.evaluate


def _compile_env_expr(expr: Expr) -> Callable[[Binding], Any]:
    """Compile ``expr`` to a closure over a binding dict, without the unbound-
    variable guard.

    Internal building block: the reaction pipeline only evaluates expressions
    under bindings whose completeness ``Reaction._validate_variables`` already
    proved, so the per-call guard would be dead weight on the firing path.
    """
    consts: List[Any] = []
    helpers: List[Callable] = []
    try:
        src = _lower(expr, lambda name: f"E[{name!r}]", consts, helpers)
    except _Unsupported:
        return _compose(expr)
    namespace = {
        "C": tuple(consts),
        "H": tuple(helpers),
        "_div": _safe_div,
        "bool": bool,
        "min": min,
        "max": max,
    }
    return eval(compile(f"lambda E: {src}", "<compiled-expr>", "eval"), namespace)


def compile_expr(expr: Expr) -> Callable[[Binding], Any]:
    """Compile ``expr`` into a callable taking a variable-binding mapping.

    Uses :func:`compile`-based code generation when every node is understood
    and the closure-composition fallback otherwise; either way the returned
    callable evaluates exactly like ``expr.evaluate`` (same values, same
    exceptions — including :class:`EvaluationError` for unbound variables).
    """
    fn = _compile_env_expr(expr)

    def evaluate(env: Binding) -> Any:
        """Evaluate under ``env``, surfacing unbound variables uniformly."""
        try:
            return fn(env)
        except KeyError as exc:
            raise EvaluationError(f"unbound reaction variable {exc.args[0]!r}") from exc

    return evaluate


# ---------------------------------------------------------------------------
# Match plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MatchPlan:
    """The compile-time search strategy for one reaction.

    ``order[k]`` is the original replace-list index probed at plan position
    ``k``; ``selectivity[k]`` records ``(label_known, tag_known)`` at the
    moment position ``k`` was chosen (constants or variables bound by earlier
    plan positions).  ``slots`` maps slot index -> variable name in
    first-encounter order over the *original* pattern order, which is also
    the key order of the binding dicts the compiled matcher emits.
    """

    order: Tuple[int, ...]
    slots: Tuple[str, ...]
    selectivity: Tuple[Tuple[bool, bool], ...]

    @property
    def is_identity(self) -> bool:
        """True when the plan preserves declaration order (and therefore the
        interpreted matcher's exact enumeration order)."""
        return self.order == tuple(range(len(self.order)))

    @property
    def slot_of(self) -> Dict[str, int]:
        """Mapping from variable name to its fixed slot index."""
        return {name: i for i, name in enumerate(self.slots)}


def _field_known(field_expr: Expr, bound: FrozenSet[str]) -> bool:
    if isinstance(field_expr, Const):
        return True
    return field_expr.name in bound  # type: ignore[union-attr]


def _plan(reaction: Reaction) -> MatchPlan:
    """Greedy selectivity ordering with bound-variable propagation.

    At each step the pattern with the most index leverage is chosen:
    known-label patterns before variable-label ones, known-tag before unknown
    within a label class, original position as the stable tie-break.  Binding
    propagation means a pattern whose tag variable is bound by an earlier
    choice counts as known-tag — the shared-``v``-tag reactions produced by
    Algorithm 1 resolve their tag join at compile time this way.
    """
    patterns = reaction.replace
    slots: List[str] = []
    seen = set()
    for pat in patterns:
        for field_expr in (pat.value, pat.label, pat.tag):
            if isinstance(field_expr, Var) and field_expr.name not in seen:
                seen.add(field_expr.name)
                slots.append(field_expr.name)

    remaining = list(range(len(patterns)))
    bound: set = set()
    order: List[int] = []
    selectivity: List[Tuple[bool, bool]] = []

    while remaining:
        frozen_bound = frozenset(bound)

        def rank(i: int) -> Tuple[int, int, int]:
            """Selectivity key: known-label, then known-tag, then declaration order."""
            pat = patterns[i]
            label_known = _field_known(pat.label, frozen_bound)
            tag_known = _field_known(pat.tag, frozen_bound)
            return (0 if label_known else 1, 0 if tag_known else 1, i)

        best = min(remaining, key=rank)
        key = rank(best)
        order.append(best)
        selectivity.append((key[0] == 0, key[1] == 0))
        remaining.remove(best)
        bound |= patterns[best].variables()

    return MatchPlan(order=tuple(order), slots=tuple(slots), selectivity=tuple(selectivity))


# ---------------------------------------------------------------------------
# Matcher code generation
# ---------------------------------------------------------------------------

def _fields_could_collide(a: ElementPattern, b: ElementPattern) -> bool:
    """Could the two patterns ever match equal elements?

    Used to prune the consumed-multiplicity check at compile time: two
    patterns with different constant fields can never bind equal elements, so
    no runtime occurrence counting is needed between them.
    """
    for fa, fb in ((a.value, b.value), (a.label, b.label), (a.tag, b.tag)):
        if isinstance(fa, Const) and isinstance(fb, Const) and not (fa.value == fb.value):
            return False
    return True


class _SourceWriter:
    """Indentation-aware line accumulator for generated matcher source."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def w(self, line: str) -> None:
        """Append ``line`` at the current indentation level."""
        self.lines.append("    " * self.indent + line)


def _emit_matcher_body(
    writer: _SourceWriter,
    reaction: Reaction,
    plan: MatchPlan,
    consts: List[Any],
    helpers: List[Callable],
    shuffled: bool,
    emit: str,
) -> None:
    """Emit the nested candidate loops for one matcher variant.

    ``emit`` is ``"return"`` (find variant: first enabled match) or
    ``"yield"`` (iterate variant: all enabled matches, interpreted order).
    """
    patterns = reaction.replace
    slot_of = plan.slot_of
    bound: set = set()

    def slot_ref(name: str) -> str:
        """Local-variable name of the slot holding reaction variable ``name``."""
        return f"s{slot_of[name]}"

    def condition_fragment(expr: Expr) -> str:
        """Lower ``expr`` to a source fragment (closure-composition fallback)."""
        try:
            return _lower(expr, slot_ref, consts, helpers)
        except _Unsupported:
            helpers.append(_compose(expr))
            env = ", ".join(
                f"{name!r}: {slot_ref(name)}" for name in sorted(expr.variables())
            )
            return f"H[{len(helpers) - 1}]({{{env}}})"

    def const_ref(value: Any) -> str:
        """Intern ``value`` in the constant pool; returns its reference."""
        consts.append(value)
        return f"C[{len(consts) - 1}]"

    for k, position in enumerate(plan.order):
        pat = patterns[position]

        label_frag: Optional[str] = None
        if isinstance(pat.label, Const):
            label_frag = const_ref(pat.label.value)
        elif pat.label.name in bound:
            label_frag = slot_ref(pat.label.name)

        tag_frag: Optional[str] = None
        if isinstance(pat.tag, Const):
            tag_frag = const_ref(pat.tag.value)
        elif pat.tag.name in bound:
            tag_frag = slot_ref(pat.tag.name)

        # -- candidate source (mirrors Matcher._candidates exactly) ---------
        if label_frag is not None and tag_frag is not None:
            writer.w(f"t{k} = _idx.get({label_frag})")
            writer.w(f"b{k} = t{k}.get({tag_frag}) if t{k} is not None else None")
            if shuffled:
                writer.w(f"c{k} = list(b{k}) if b{k} else []")
                writer.w(f"rng.shuffle(c{k})")
                writer.w(f"for e{k} in c{k}:")
            else:
                writer.w(f"if b{k}:")
                writer.indent += 1
                writer.w(f"for e{k} in b{k}:")
        elif label_frag is not None:
            writer.w(f"b{k} = _flat.get({label_frag})")
            if shuffled:
                writer.w(f"c{k} = list(b{k}) if b{k} else []")
                writer.w(f"rng.shuffle(c{k})")
                writer.w(f"for e{k} in c{k}:")
            else:
                writer.w(f"if b{k}:")
                writer.indent += 1
                writer.w(f"for e{k} in b{k}:")
        elif tag_frag is not None:
            if shuffled:
                writer.w(f"c{k} = []")
                writer.w(f"for t{k} in _idx.values():")
                writer.w(f"    b{k} = t{k}.get({tag_frag})")
                writer.w(f"    if b{k}:")
                writer.w(f"        c{k}.extend(b{k})")
                writer.w(f"rng.shuffle(c{k})")
                writer.w(f"for e{k} in c{k}:")
            else:
                writer.w(f"for t{k} in _idx.values():")
                writer.indent += 1
                writer.w(f"b{k} = t{k}.get({tag_frag})")
                writer.w(f"if b{k}:")
                writer.indent += 1
                writer.w(f"for e{k} in b{k}:")
        else:
            if shuffled:
                writer.w(f"c{k} = []")
                writer.w(f"for b{k} in _flat.values():")
                writer.w(f"    c{k}.extend(b{k})")
                writer.w(f"rng.shuffle(c{k})")
                writer.w(f"for e{k} in c{k}:")
            else:
                writer.w(f"for b{k} in _flat.values():")
                writer.indent += 1
                writer.w(f"for e{k} in b{k}:")
        writer.indent += 1

        # -- consumed-multiplicity check (O(1), against enclosing loops) ----
        colliders = [
            j for j in range(k)
            if _fields_could_collide(patterns[plan.order[j]], pat)
        ]
        if colliders:
            terms = " + ".join(
                f"(e{k} is e{j} or e{k} == e{j})" for j in colliders
            )
            writer.w(f"n{k} = {terms}")
            writer.w(f"if n{k} and mcount(e{k}) <= n{k}:")
            writer.w("    continue")

        # -- field checks / slot binds (value, label, tag — pattern order) --
        for field_expr, attr, source_known in (
            (pat.value, "value", False),
            (pat.label, "label", label_frag is not None),
            (pat.tag, "tag", tag_frag is not None),
        ):
            if isinstance(field_expr, Const):
                if not source_known:
                    writer.w(f"if {const_ref(field_expr.value)} != e{k}.{attr}:")
                    writer.w("    continue")
            else:
                name = field_expr.name
                if name in bound:
                    if not source_known:
                        writer.w(f"if {slot_ref(name)} != e{k}.{attr}:")
                        writer.w("    continue")
                else:
                    writer.w(f"{slot_ref(name)} = e{k}.{attr}")
                    bound.add(name)

    # -- enabledness (guard, then the ordered branch conditions) ------------
    if reaction.guard is not None:
        writer.w(f"if not ({condition_fragment(reaction.guard)}):")
        writer.w("    continue")
    # Branch conditions are or-ed in declaration order, mirroring
    # ``enabled_branch``'s first-true scan: conditions after the first
    # unconditional branch are never evaluated, conditions before it are
    # (they may raise, and the interpreter would evaluate them too).
    alternatives: List[str] = []
    for branch in reaction.branches:
        if branch.condition is None:
            alternatives.append("True")
            break
        alternatives.append(f"({condition_fragment(branch.condition)})")
    if alternatives != ["True"]:
        writer.w(f"if not ({' or '.join(alternatives)}):")
        writer.w("    continue")

    consumed = ", ".join(
        f"e{plan.order.index(position)}" for position in range(len(patterns))
    )
    binding = ", ".join(f"{name!r}: {slot_ref(name)}" for name in plan.slots)
    suffix = "," if len(patterns) == 1 else ""
    writer.w(f"{emit} (({consumed}{suffix}), {{{binding}}})")


def _emit_collect_body(
    writer: _SourceWriter,
    reaction: Reaction,
    plan: MatchPlan,
    consts: List[Any],
    helpers: List[Callable],
    shuffled: bool,
) -> None:
    """Emit the superstep *collector*: a greedy pairwise-disjoint match set.

    The collector yields matches like the iterate variant but threads a shared
    ``rem`` map (element -> copies still unclaimed this superstep, lazily
    initialized, shared across all reactions) through the candidate checks,
    and after each accepted match breaks back out to the shallowest loop whose
    element is exhausted instead of rescanning consumed candidates.  One call
    enumerates a greedy disjoint set in near-linear time — maximal up to
    repeated slot assignments of multi-copy elements, which each distinct
    combination's single visit cannot re-claim — and the per-firing probe
    restart of the sequential engines disappears, which is where the parallel
    backend's throughput comes from.

    Only generated for plans whose every position has a known label (constant
    or bound by an earlier position): each level is then exactly one bucket
    loop, which the break/continue cascade below requires.  Unknown-label
    plans fall back to the scheduler's accounting loop over ``iter_matches``.
    """
    patterns = reaction.replace
    slot_of = plan.slot_of
    bound: set = set()
    arity = len(patterns)

    def slot_ref(name: str) -> str:
        """Local-variable name of the slot holding reaction variable ``name``."""
        return f"s{slot_of[name]}"

    def condition_fragment(expr: Expr) -> str:
        """Lower ``expr`` to a source fragment (closure-composition fallback)."""
        try:
            return _lower(expr, slot_ref, consts, helpers)
        except _Unsupported:
            helpers.append(_compose(expr))
            env = ", ".join(
                f"{name!r}: {slot_ref(name)}" for name in sorted(expr.variables())
            )
            return f"H[{len(helpers) - 1}]({{{env}}})"

    def const_ref(value: Any) -> str:
        """Intern ``value`` in the constant pool; returns its reference."""
        consts.append(value)
        return f"C[{len(consts) - 1}]"

    if arity > 1:
        writer.w("_stop = -1")

    for k, position in enumerate(plan.order):
        pat = patterns[position]

        label_frag: Optional[str]
        if isinstance(pat.label, Const):
            label_frag = const_ref(pat.label.value)
        else:
            # supports_collect guarantees the label variable is bound here.
            label_frag = slot_ref(pat.label.name)

        tag_frag: Optional[str] = None
        if isinstance(pat.tag, Const):
            tag_frag = const_ref(pat.tag.value)
        elif pat.tag.name in bound:
            tag_frag = slot_ref(pat.tag.name)

        # -- candidate source: exactly one loop per level -------------------
        if tag_frag is not None:
            writer.w(f"t{k} = _idx.get({label_frag})")
            writer.w(f"b{k} = t{k}.get({tag_frag}) if t{k} is not None else None")
        else:
            writer.w(f"b{k} = _flat.get({label_frag})")
        if shuffled:
            writer.w(f"c{k} = list(b{k}) if b{k} else []")
            writer.w(f"rng.shuffle(c{k})")
            writer.w(f"for e{k} in c{k}:")
        else:
            # Deterministic scans run over a per-superstep *view* of the
            # bucket — a materialized snapshot plus a head pointer shared (via
            # ``views``) by every scan of that bucket this superstep.  Greedy
            # claiming exhausts candidates mostly front-to-back, so each
            # rescan would otherwise re-skip an ever-growing exhausted prefix
            # (quadratic for guard-free folds); the head pointer advances past
            # that prefix permanently, which is sound because claims only
            # accumulate while the batch is being collected.
            writer.w(f"if b{k}:")
            writer.w(f"    v{k} = views.get(id(b{k}))")
            writer.w(f"    if v{k} is None:")
            writer.w(f"        v{k} = views[id(b{k})] = [list(b{k}), 0]")
            writer.w(f"    l{k} = v{k}[0]")
            writer.w(f"    h{k} = v{k}[1]")
            writer.w("else:")
            writer.w(f"    l{k} = ()")
            writer.w(f"    h{k} = 0")
            writer.w(f"a{k} = True")
            writer.w(f"for j{k} in range(h{k}, len(l{k})):")
        writer.indent += 1
        if not shuffled:
            writer.w(f"e{k} = l{k}[j{k}]")

        # -- availability: superstep consumption + within-match collisions --
        # ``rem`` maps element -> remaining copies, initialized lazily on the
        # first claim; an untouched element always has >= 1 copy (it came out
        # of a live bucket), so the common case costs one dict probe and no
        # multiset lookup.  Collision terms use identity only: bucket keys
        # hold exactly one instance per distinct element.  Only the
        # *unconditionally* exhausted case may advance the view head —
        # within-match collision skips are local to the current partial match.
        colliders = [
            j for j in range(k)
            if _fields_could_collide(patterns[plan.order[j]], pat)
        ]
        if colliders:
            terms = " + ".join(f"(e{k} is e{j})" for j in colliders)
            writer.w(f"n{k} = {terms}")
            writer.w(f"r{k} = rem.get(e{k})")
            writer.w(f"if r{k} is None:")
            writer.w(f"    if n{k} and mcount(e{k}) <= n{k}:")
            if not shuffled:
                writer.w(f"        a{k} = False")
            writer.w("        continue")
            writer.w(f"elif r{k} <= 0:")
            if not shuffled:
                writer.w(f"    if a{k}:")
                writer.w(f"        v{k}[1] = j{k} + 1")
            writer.w("    continue")
            writer.w(f"elif r{k} <= n{k}:")
            if not shuffled:
                writer.w(f"    a{k} = False")
            writer.w("    continue")
        else:
            writer.w(f"r{k} = rem.get(e{k})")
            writer.w(f"if r{k} is not None and r{k} <= 0:")
            if not shuffled:
                writer.w(f"    if a{k}:")
                writer.w(f"        v{k}[1] = j{k} + 1")
            writer.w("    continue")
        if not shuffled:
            writer.w(f"a{k} = False")

        # -- field checks / slot binds (value, label, tag — pattern order) --
        for field_expr, attr, source_known in (
            (pat.value, "value", False),
            (pat.label, "label", True),
            (pat.tag, "tag", tag_frag is not None),
        ):
            if isinstance(field_expr, Const):
                if not source_known:
                    writer.w(f"if {const_ref(field_expr.value)} != e{k}.{attr}:")
                    writer.w("    continue")
            else:
                name = field_expr.name
                if name in bound:
                    if not source_known:
                        writer.w(f"if {slot_ref(name)} != e{k}.{attr}:")
                        writer.w("    continue")
                else:
                    writer.w(f"{slot_ref(name)} = e{k}.{attr}")
                    bound.add(name)

    # -- enabledness (guard, then the ordered branch conditions) ------------
    if reaction.guard is not None:
        writer.w(f"if not ({condition_fragment(reaction.guard)}):")
        writer.w("    continue")
    alternatives: List[str] = []
    for branch in reaction.branches:
        if branch.condition is None:
            alternatives.append("True")
            break
        alternatives.append(f"({condition_fragment(branch.condition)})")
    if alternatives != ["True"]:
        writer.w(f"if not ({' or '.join(alternatives)}):")
        writer.w("    continue")

    consumed = ", ".join(
        f"e{plan.order.index(position)}" for position in range(len(patterns))
    )
    binding = ", ".join(f"{name!r}: {slot_ref(name)}" for name in plan.slots)
    suffix = "," if len(patterns) == 1 else ""
    writer.w(f"yield (({consumed}{suffix}), {{{binding}}})")

    # -- consume the match, then advance the shallowest exhausted loop ------
    for k in range(arity):
        writer.w(f"x{k} = rem.get(e{k})")
        writer.w(f"rem[e{k}] = (mcount(e{k}) if x{k} is None else x{k}) - 1")
    if arity > 1:
        # Exhaustion re-reads ``rem`` (not the locals above): the same object
        # may fill several slots, in which case the later decrements count.
        # Keeping the held prefix e_0..e_j alive requires every object in it
        # to retain one copy *per slot it fills*, so level j's threshold
        # counts its identity collisions with shallower held slots — not
        # just its own copy (one object spread over two held slots with one
        # copy left must break, or the next inner yield over-consumes it).
        for j in range(arity - 1):
            keyword = "if" if j == 0 else "elif"
            prior = [
                i for i in range(j)
                if _fields_could_collide(
                    patterns[plan.order[i]], patterns[plan.order[j]]
                )
            ]
            if prior:
                need = " + ".join(f"(e{j} is e{i})" for i in prior)
                writer.w(f"{keyword} rem[e{j}] < 1 + {need}:")
            else:
                writer.w(f"{keyword} rem[e{j}] <= 0:")
            writer.w(f"    _stop = {j}")
        writer.w("if _stop != -1:")
        writer.w("    break")
        # Unwind: each enclosing level either resumes (its element still has
        # copies) or forwards the break outward.  The handler for the loop of
        # level ``k + 1`` lives in level ``k``'s body (indent ``k + 2``).
        for k in range(arity - 2, -1, -1):
            writer.indent = k + 2
            writer.w("if _stop != -1:")
            writer.w(f"    if _stop == {k}:")
            writer.w("        _stop = -1")
            writer.w("    else:")
            writer.w("        break")


def _build_matcher(
    reaction: Reaction,
    plan: MatchPlan,
    shuffled: bool,
    mode: str,
) -> Tuple[Callable, str]:
    """Generate, compile and return one matcher variant (plus its source)."""
    consts: List[Any] = []
    helpers: List[Callable] = []
    writer = _SourceWriter()
    if mode == "collect":
        args = (
            "_idx, _flat, rng, mcount, rem"
            if shuffled
            else "_idx, _flat, mcount, rem, views"
        )
    else:
        args = "_idx, _flat, rng, mcount" if shuffled else "_idx, _flat, mcount"
    writer.w(f"def matcher({args}):")
    writer.indent = 1
    if mode == "collect":
        _emit_collect_body(writer, reaction, plan, consts, helpers, shuffled)
    else:
        _emit_matcher_body(
            writer, reaction, plan, consts, helpers, shuffled,
            emit="return" if mode == "find" else "yield",
        )
    writer.indent = 1
    if mode == "find":
        writer.w("return None")
    source = "\n".join(writer.lines)
    namespace: Dict[str, Any] = {
        "C": tuple(consts),
        "H": tuple(helpers),
        "_div": _safe_div,
        "bool": bool,
        "list": list,
        "min": min,
        "max": max,
        "id": id,
        "len": len,
        "range": range,
    }
    exec(compile(source, f"<compiled-reaction {reaction.name}>", "exec"), namespace)
    return namespace["matcher"], source


# ---------------------------------------------------------------------------
# Compiled productions
# ---------------------------------------------------------------------------

def _compile_template(template: ElementTemplate) -> Callable[[Binding], Element]:
    """Compile one production template, preserving ``instantiate`` semantics.

    Templates whose label and tag are valid constants skip the per-firing
    type checks (they are discharged here, at compile time); an all-constant
    template becomes a single shared immutable element.
    """
    value_fn = _compile_env_expr(template.value)
    label_fn = _compile_env_expr(template.label)
    tag_fn = _compile_env_expr(template.tag)

    if isinstance(template.label, Const) and isinstance(template.tag, Const):
        label = template.label.value
        tag = template.tag.value
        if isinstance(label, str) and isinstance(tag, int) and not isinstance(tag, bool):
            if isinstance(template.value, Const):
                try:
                    element = Element(value=template.value.value, label=label, tag=tag)
                except (TypeError, ValueError):
                    pass  # invalid constant: fail at firing time, like instantiate
                else:
                    return lambda env: element
            else:
                return lambda env: Element(value=value_fn(env), label=label, tag=tag)

    def produce(env: Binding) -> Element:
        """Instantiate the template under ``env`` (validated label/tag)."""
        label = label_fn(env)
        if not isinstance(label, str):
            raise TypeError(f"produced label must be a string, got {label!r}")
        tag = tag_fn(env)
        if isinstance(tag, bool) or not isinstance(tag, int):
            raise TypeError(f"produced tag must be an int, got {tag!r}")
        return Element(value=value_fn(env), label=label, tag=tag)

    return produce


# ---------------------------------------------------------------------------
# Compiled reaction + matches
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledMatch(Match):
    """A match found by the compiled matcher.

    Identical observable content to an interpreted :class:`Match` (same
    reaction, consumed tuple in declaration order, same binding dict);
    :meth:`produced` runs the compiled productions instead of re-walking the
    template ASTs.
    """

    compiled: Optional["CompiledReaction"] = None

    def produced(self) -> List[Element]:
        """The elements inserted when this match fires (compiled productions)."""
        return self.compiled.apply(self.binding)


class CompiledReaction:
    """One reaction specialized for repeated probing.

    Built by :func:`compile_reaction`; probed through :meth:`find` /
    :meth:`iter_matches` against an attached
    :class:`~repro.multiset.index.LabelTagIndex`.
    """

    __slots__ = (
        "reaction",
        "plan",
        "footprint",
        "wildcard",
        "sources",
        "_find_det",
        "_find_rng",
        "_iter_det",
        "_iter_rng",
        "_collect_supported",
        "_collect_det",
        "_collect_rng",
        "_branches",
        "_vectorized",
    )

    def __init__(self, reaction: Reaction) -> None:
        self.reaction = reaction
        self.plan = _plan(reaction)
        # Scheduler footprint, resolved once at compile time.
        self.footprint: FrozenSet[str] = reaction.consumed_labels()
        self.wildcard: bool = reaction.has_variable_label()
        self._find_det, src_fd = _build_matcher(reaction, self.plan, False, "find")
        self._find_rng, src_fr = _build_matcher(reaction, self.plan, True, "find")
        self._iter_det, src_id = _build_matcher(reaction, self.plan, False, "iterate")
        self._iter_rng, src_ir = _build_matcher(reaction, self.plan, True, "iterate")
        #: Generated sources, keyed for inspection/debugging and tests.
        self.sources: Dict[str, str] = {
            "find_det": src_fd,
            "find_rng": src_fr,
            "iter_det": src_id,
            "iter_rng": src_ir,
        }
        # Superstep collectors need every plan position label-known (one
        # bucket loop per level); unknown-label plans probe through the
        # scheduler's accounting fallback instead.  Generation is *lazy* (on
        # the first :meth:`collect`): only the parallel backend uses the
        # collectors, and the sequential engines must not pay their codegen
        # at setup — the small-size scheduler benchmarks gate this.
        self._collect_supported: bool = all(
            label_known for label_known, _ in self.plan.selectivity
        )
        self._collect_det: Optional[Callable] = None
        self._collect_rng: Optional[Callable] = None
        # Fifth matcher variant (columnar mask program), built lazily like the
        # collectors: only columnar runs pay the lowering.  ``False`` is the
        # not-yet-attempted sentinel (``None`` means "tried, not lowerable").
        self._vectorized: Any = False
        self._branches: Tuple[Tuple[Optional[Callable], Tuple[Callable, ...]], ...] = tuple(
            (
                None if branch.condition is None else _compile_env_expr(branch.condition),
                tuple(_compile_template(tmpl) for tmpl in branch.productions),
            )
            for branch in reaction.branches
        )

    # -- probing ---------------------------------------------------------------
    def find(
        self,
        index: LabelTagIndex,
        multiset: Multiset,
        rng: Optional[random.Random] = None,
    ) -> Optional[Match]:
        """First enabled match against the indexed multiset, or ``None``."""
        if rng is None:
            got = self._find_det(
                index.label_tag_buckets(), index.label_buckets(), multiset.count
            )
        else:
            got = self._find_rng(
                index.label_tag_buckets(), index.label_buckets(), rng, multiset.count
            )
        if got is None:
            return None
        consumed, binding = got
        return CompiledMatch(
            reaction=self.reaction, consumed=consumed, binding=binding, compiled=self
        )

    def iter_matches(
        self,
        index: LabelTagIndex,
        multiset: Multiset,
        rng: Optional[random.Random] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Match]:
        """All enabled matches (up to ``limit``), interpreted-matcher order."""
        if rng is None:
            raw = self._iter_det(
                index.label_tag_buckets(), index.label_buckets(), multiset.count
            )
        else:
            raw = self._iter_rng(
                index.label_tag_buckets(), index.label_buckets(), rng, multiset.count
            )
        produced = 0
        for consumed, binding in raw:
            yield CompiledMatch(
                reaction=self.reaction, consumed=consumed, binding=binding, compiled=self
            )
            produced += 1
            if limit is not None and produced >= limit:
                return

    @property
    def supports_collect(self) -> bool:
        """True when a codegenned superstep collector exists for this plan."""
        return self._collect_supported

    def vectorized(self):
        """The reaction's columnar mask program, or ``None``.

        Fifth matcher variant (see :mod:`repro.gamma.vectorized`): constant
        fields, cross-pattern equalities and the guard fused into one boolean
        mask evaluated bucket-at-a-time over a
        :class:`~repro.multiset.columnar.ColumnarStore`.  Lowered lazily on
        first call and cached; reactions outside the vectorizable fragment
        cache (and return) ``None``, which callers treat as "stay on the
        object path".  The generated mask source is published under
        ``sources["vector_mask"]`` for inspection, next to the other four
        variants.
        """
        if self._vectorized is False:
            from .vectorized import vectorized_for

            self._vectorized = vectorized_for(self)
            if self._vectorized is not None:
                self.sources["vector_mask"] = self._vectorized.source
        return self._vectorized

    def collect(
        self,
        index: LabelTagIndex,
        multiset: Multiset,
        remaining: Dict[Element, int],
        rng: Optional[random.Random] = None,
        views: Optional[Dict[int, list]] = None,
    ) -> Iterator[Match]:
        """Greedy disjoint matches for one superstep, claiming from ``remaining``.

        ``remaining`` maps elements to copies still unclaimed this superstep;
        entries are created lazily (an absent element still has its full
        multiset count) and decremented for every consumed copy, so one map
        can be shared across all of a superstep's reactions.  ``views`` is the
        deterministic scan's per-superstep bucket-view cache (snapshot list +
        exhausted-prefix head pointer, keyed by bucket identity); share one
        dict across a superstep's reactions for amortized prefix skipping.
        The multiset must not be mutated while the iterator is live — callers
        collect the whole batch first and fire afterwards.  Raises
        ``TypeError`` when :attr:`supports_collect` is false.
        """
        if not self._collect_supported:
            raise TypeError(
                f"reaction {self.reaction.name!r} has no superstep collector "
                f"(unknown-label match plan); use iter_matches with accounting"
            )
        # Raw counter access (same package): candidates always come from live
        # buckets, so the coercion/default handling of Multiset.count is dead
        # weight on this, the hottest loop of the parallel backend.
        mcount = multiset._counts.get
        if rng is None:
            if self._collect_det is None:
                self._collect_det, src = _build_matcher(
                    self.reaction, self.plan, False, "collect"
                )
                self.sources["collect_det"] = src
            raw = self._collect_det(
                index.label_tag_buckets(),
                index.label_buckets(),
                mcount,
                remaining,
                {} if views is None else views,
            )
        else:
            if self._collect_rng is None:
                self._collect_rng, src = _build_matcher(
                    self.reaction, self.plan, True, "collect"
                )
                self.sources["collect_rng"] = src
            raw = self._collect_rng(
                index.label_tag_buckets(), index.label_buckets(), rng, mcount, remaining
            )
        for consumed, binding in raw:
            yield CompiledMatch(
                reaction=self.reaction, consumed=consumed, binding=binding, compiled=self
            )

    # -- firing ----------------------------------------------------------------
    def apply(self, binding: Binding) -> List[Element]:
        """Compiled reaction action: productions of the first enabled branch.

        The guard is not re-evaluated — matches handed out by the compiled
        matcher already passed it, and guards are pure functions of the
        binding.  An all-branches-disabled binding raises the same
        ``ValueError`` as :meth:`Reaction.apply`.
        """
        for condition, produce_fns in self._branches:
            if condition is None or condition(binding):
                return [fn(binding) for fn in produce_fns]
        raise ValueError(
            f"reaction {self.reaction.name!r} is not enabled under binding {binding!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledReaction({self.reaction.name!r}, order={self.plan.order}, "
            f"slots={self.plan.slots})"
        )


def evaluate_productions(matches: Sequence[Match]) -> List[List[Element]]:
    """Evaluate the productions of ``matches`` (in order).

    The unit of work the parallel engine ships to its
    ``concurrent.futures`` workers: production evaluation is pure (compiled
    closures over per-match binding dicts; no multiset access), so chunks of a
    superstep batch can be evaluated concurrently and reassembled in match
    order without affecting the trace.
    """
    return [match.produced() for match in matches]


def compile_reaction(reaction: Reaction) -> CompiledReaction:
    """Compile ``reaction``; raises :class:`CompilationError` on failure.

    Failure is always recoverable — callers (the :class:`Matcher`) fall back
    to the interpreted search, so an exotic reaction degrades in speed, never
    in semantics.
    """
    try:
        return CompiledReaction(reaction)
    except Exception as exc:
        raise CompilationError(f"cannot compile reaction {reaction.name!r}: {exc}") from exc
