"""Reactions: the (condition, action) pairs of the Gamma model.

A reaction corresponds to one ``(R_i, A_i)`` pair of Eq. 1 in the paper.  We
represent it with:

* a *replace list* of :class:`~repro.gamma.pattern.ElementPattern` — the
  elements consumed and the variables they bind;
* an optional *guard* expression — the ``where`` clause of Eq. 2 (e.g.
  ``x < y`` for the minimum-element reaction) and the single-branch ``if``
  clauses of reactions R11–R13 (the label-discrimination idiom);
* an ordered list of :class:`Branch` values — the ``by ... if ... by ... else``
  alternatives of the paper's steer translations (R14–R17).  A branch with
  ``condition=None`` is the ``else`` arm.  A branch with an empty production
  list is the paper's ``by 0`` (consume and produce nothing).

Enabledness (the reaction condition ``R_i``): a binding of the replace list
such that the guard holds **and** at least one branch condition holds.  Firing
(the action ``A_i``): the productions of the *first* branch whose condition
holds are instantiated and inserted while the matched elements are removed.
This single formulation covers every listing in the paper:

* Eq. 2 (``where x < y``)           -> guard, one unconditional branch.
* R1–R3, R18, R19 (no conditions)   -> no guard, one unconditional branch.
* R11–R13 (``if`` without ``else``) -> guard (otherwise unmatched labels would
  be consumed and silently deleted, which is not what the paper intends).
* R14–R17 (``if``/``else`` pairs)   -> two branches; the ``else`` arm of the
  steer translations is ``by 0`` (empty production).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..multiset.element import Element
from .expr import Expr
from .pattern import Binding, ElementPattern, ElementTemplate

__all__ = ["Branch", "Reaction"]


@dataclass(frozen=True)
class Branch:
    """One ``by`` alternative: productions guarded by an optional condition."""

    productions: Tuple[ElementTemplate, ...]
    condition: Optional[Expr] = None

    def __init__(
        self,
        productions: Sequence[ElementTemplate],
        condition: Optional[Expr] = None,
    ) -> None:
        object.__setattr__(self, "productions", tuple(productions))
        object.__setattr__(self, "condition", condition)

    def is_enabled(self, binding: Binding) -> bool:
        """True when this branch's condition holds (or it has no condition)."""
        if self.condition is None:
            return True
        return bool(self.condition.evaluate(binding))

    def produce(self, binding: Binding) -> List[Element]:
        """Instantiate the branch's productions under ``binding``."""
        return [tmpl.instantiate(binding) for tmpl in self.productions]

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        if self.condition is not None:
            names |= self.condition.variables()
        for tmpl in self.productions:
            names |= tmpl.variables()
        return frozenset(names)


@dataclass(frozen=True)
class Reaction:
    """A Gamma reaction ``(R_i, A_i)``.

    Attributes
    ----------
    name:
        Identifier used in traces, the DSL and conversion bookkeeping
        (``"R1"``, ``"R16"``, ...).
    replace:
        The patterns of the consumed elements (the ``replace`` list).
    branches:
        The ordered ``by`` alternatives.
    guard:
        Optional global enabledness condition (``where`` clause).
    """

    name: str
    replace: Tuple[ElementPattern, ...]
    branches: Tuple[Branch, ...]
    guard: Optional[Expr] = None

    def __init__(
        self,
        name: str,
        replace: Sequence[ElementPattern],
        branches: Sequence[Branch],
        guard: Optional[Expr] = None,
    ) -> None:
        if not name:
            raise ValueError("reaction name must be non-empty")
        replace = tuple(replace)
        branches = tuple(branches)
        if not replace:
            raise ValueError(f"reaction {name!r} must consume at least one element")
        if not branches:
            raise ValueError(f"reaction {name!r} must have at least one 'by' branch")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "replace", replace)
        object.__setattr__(self, "branches", branches)
        object.__setattr__(self, "guard", guard)
        self._validate_variables()

    # -- validation -----------------------------------------------------------
    def _validate_variables(self) -> None:
        bound: set = set()
        for pat in self.replace:
            bound |= pat.variables()
        used: set = set()
        if self.guard is not None:
            used |= self.guard.variables()
        for branch in self.branches:
            used |= branch.variables()
        unbound = used - bound
        if unbound:
            raise ValueError(
                f"reaction {self.name!r} uses variables {sorted(unbound)} "
                f"that are not bound by its replace list"
            )

    # -- properties -----------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of elements consumed per firing."""
        return len(self.replace)

    def consumed_labels(self) -> FrozenSet[str]:
        """Literal labels required by the replace list (variable labels excluded)."""
        labels = set()
        for pat in self.replace:
            fixed = pat.fixed_label()
            if fixed is not None:
                labels.add(fixed)
        return frozenset(labels)

    def has_variable_label(self) -> bool:
        """True when some consumed element's label is a pattern variable."""
        return any(pat.fixed_label() is None for pat in self.replace)

    def produced_labels(self) -> FrozenSet[str]:
        """Literal labels that can be produced by any branch (best effort).

        Productions whose label is a non-constant expression contribute
        nothing; the callers that rely on this (reduction, analysis) only need
        the constant case, which is what Algorithm 1 generates.
        """
        from .expr import Const

        labels = set()
        for branch in self.branches:
            for tmpl in branch.productions:
                if isinstance(tmpl.label, Const):
                    labels.add(tmpl.label.value)
        return frozenset(labels)

    def variables(self) -> FrozenSet[str]:
        """All variables bound by the replace list."""
        names: set = set()
        for pat in self.replace:
            names |= pat.variables()
        return frozenset(names)

    def tag_variables(self) -> FrozenSet[str]:
        """Variables used in tag position by the replace list."""
        names = set()
        for pat in self.replace:
            tag_var = pat.tag_variable()
            if tag_var is not None:
                names.add(tag_var)
        return frozenset(names)

    # -- semantics --------------------------------------------------------------
    def check_guard(self, binding: Binding) -> bool:
        """Evaluate the guard (``where`` clause) under ``binding``."""
        if self.guard is None:
            return True
        return bool(self.guard.evaluate(binding))

    def enabled_branch(self, binding: Binding) -> Optional[Branch]:
        """The first branch whose condition holds, or ``None``."""
        if not self.check_guard(binding):
            return None
        for branch in self.branches:
            if branch.is_enabled(binding):
                return branch
        return None

    def is_enabled(self, binding: Binding) -> bool:
        """Reaction condition ``R_i``: guard plus at least one branch condition."""
        return self.enabled_branch(binding) is not None

    def apply(self, binding: Binding) -> List[Element]:
        """Reaction action ``A_i``: the elements produced for ``binding``.

        Raises ``ValueError`` if the reaction is not enabled under ``binding``;
        schedulers must only apply matches the matcher reported as enabled.
        """
        branch = self.enabled_branch(binding)
        if branch is None:
            raise ValueError(f"reaction {self.name!r} is not enabled under binding {binding!r}")
        return branch.produce(binding)

    # -- misc ---------------------------------------------------------------------
    def renamed(self, name: str) -> "Reaction":
        """Copy of this reaction under a new name."""
        return Reaction(name=name, replace=self.replace, branches=self.branches, guard=self.guard)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reaction({self.name!r}, arity={self.arity}, branches={len(self.branches)})"
