"""Patterns and templates for reaction replace/by lists.

A reaction's ``replace`` list is a sequence of :class:`ElementPattern` values,
one per element the reaction consumes.  Each pattern constrains (or binds) the
three fields of a multiset element:

* ``[id1, 'A1']``      -> value bound to variable ``id1``, label must equal ``'A1'``,
  tag bound to the shared implicit variable ``v`` (tag 0 if the pair form is used);
* ``[id1, x, v]``      -> value bound to ``id1``, label bound to variable ``x``
  (later constrained by the reaction condition), tag bound to ``v``;
* ``[id2, 'B15', v]``  -> value bound to ``id2``, label fixed, tag bound to ``v``.

The ``by`` list is a sequence of :class:`ElementTemplate` values, each holding
three expressions evaluated under the binding produced by matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Union

from ..multiset.element import Element
from .expr import Const, Expr, Var

__all__ = ["ElementPattern", "ElementTemplate", "Binding", "pattern", "template"]

#: A variable binding produced by matching a reaction's replace list.
Binding = Dict[str, Any]

FieldSpec = Union[str, int, float, bool, None, Expr]


def _as_field(spec: FieldSpec, *, variable_hint: bool = False) -> Expr:
    """Normalize a user-facing field spec into an :class:`Expr`.

    Strings are ambiguous: ``'A1'`` in the paper's listings is a quoted label
    literal while ``x`` is a variable.  The programmatic API resolves the
    ambiguity with ``variable_hint``; the DSL parser resolves it from the
    quoting in the source text and always passes :class:`Expr` nodes.
    """
    if isinstance(spec, Expr):
        return spec
    if isinstance(spec, str) and variable_hint:
        return Var(spec)
    return Const(spec)


@dataclass(frozen=True, slots=True)
class ElementPattern:
    """A pattern matching one consumed multiset element.

    Each field is either a :class:`~repro.gamma.expr.Var` (binds the field) or
    a :class:`~repro.gamma.expr.Const` (requires equality).  More complex
    expressions are rejected: per the grammar of Fig. 3 the replace list only
    contains identifiers and literals, with all computation living in the
    conditions and productions.
    """

    value: Expr
    label: Expr
    tag: Expr
    # Cached bound-variable set: the scheduler recomputes reaction footprints
    # per attach and the compiler queries pattern variables repeatedly.
    _vars: FrozenSet[str] = field(init=False, repr=False, compare=False, default=frozenset())

    def __post_init__(self) -> None:
        names = set()
        for field_name, field_expr in (
            ("value", self.value),
            ("label", self.label),
            ("tag", self.tag),
        ):
            if not isinstance(field_expr, (Var, Const)):
                raise TypeError(
                    f"pattern {field_name} field must be a Var or Const, "
                    f"got {type(field_expr).__name__}"
                )
            if isinstance(field_expr, Var):
                names.add(field_expr.name)
        object.__setattr__(self, "_vars", frozenset(names))

    # -- matching -----------------------------------------------------------------
    def match(self, element: Element, binding: Binding) -> Optional[Binding]:
        """Try to match ``element`` under (and extending) ``binding``.

        Returns the extended binding on success and ``None`` on failure.  The
        input binding is never mutated.
        """
        new_binding = dict(binding)
        for field_expr, actual in (
            (self.value, element.value),
            (self.label, element.label),
            (self.tag, element.tag),
        ):
            if isinstance(field_expr, Const):
                if field_expr.value != actual:
                    return None
            else:  # Var
                name = field_expr.name
                if name in new_binding:
                    if new_binding[name] != actual:
                        return None
                else:
                    new_binding[name] = actual
        return new_binding

    # -- introspection -------------------------------------------------------------
    def fixed_label(self) -> Optional[str]:
        """The literal label this pattern requires, or ``None`` if the label is a variable."""
        if isinstance(self.label, Const):
            return self.label.value
        return None

    def tag_variable(self) -> Optional[str]:
        """The name of the tag variable, or ``None`` if the tag is fixed."""
        if isinstance(self.tag, Var):
            return self.tag.name
        return None

    def variables(self) -> FrozenSet[str]:
        """All variables bound by this pattern."""
        return self._vars

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.value!r}, {self.label!r}, {self.tag!r}]"


@dataclass(frozen=True, slots=True)
class ElementTemplate:
    """A template producing one multiset element when a reaction fires."""

    value: Expr
    label: Expr
    tag: Expr
    _vars: FrozenSet[str] = field(init=False, repr=False, compare=False, default=frozenset())

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_vars",
            self.value.variables() | self.label.variables() | self.tag.variables(),
        )

    def instantiate(self, binding: Binding) -> Element:
        """Evaluate the three field expressions under ``binding``."""
        label = self.label.evaluate(binding)
        if not isinstance(label, str):
            raise TypeError(f"produced label must be a string, got {label!r}")
        tag = self.tag.evaluate(binding)
        if isinstance(tag, bool) or not isinstance(tag, int):
            raise TypeError(f"produced tag must be an int, got {tag!r}")
        return Element(value=self.value.evaluate(binding), label=label, tag=tag)

    def variables(self) -> FrozenSet[str]:
        """Free variables referenced by the template."""
        return self._vars

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.value!r}, {self.label!r}, {self.tag!r}]"


def pattern(
    value: FieldSpec,
    label: FieldSpec = None,
    tag: FieldSpec = "v",
    *,
    label_is_variable: bool = False,
) -> ElementPattern:
    """Convenience constructor mirroring the paper's ``[value, label, tag]`` notation.

    ``value`` and ``tag`` given as strings are treated as variable names (the
    overwhelmingly common case: ``id1``, ``v``); ``label`` given as a string is
    treated as a literal label unless ``label_is_variable`` is set, matching
    how the listings quote labels but not variables.
    """
    value_expr = _as_field(value, variable_hint=isinstance(value, str))
    if label is None:
        label_expr: Expr = Var("_label")
    else:
        label_expr = _as_field(label, variable_hint=label_is_variable)
    tag_expr = _as_field(tag, variable_hint=isinstance(tag, str))
    return ElementPattern(value=value_expr, label=label_expr, tag=tag_expr)


def template(value: FieldSpec, label: FieldSpec, tag: FieldSpec = "v") -> ElementTemplate:
    """Convenience constructor for productions.

    ``value`` and ``tag`` strings are variable references, ``label`` strings
    are literals (matching the paper's quoting convention); pass explicit
    :class:`Expr` nodes for anything more elaborate (``var('v') + 1`` etc.).
    """
    value_expr = _as_field(value, variable_hint=isinstance(value, str))
    label_expr = _as_field(label, variable_hint=False)
    tag_expr = _as_field(tag, variable_hint=isinstance(tag, str))
    return ElementTemplate(value=value_expr, label=label_expr, tag=tag_expr)
