"""Gamma programs and composition operators.

The paper (following Muylaert's implementation [13] and the Gamma calculus
literature [15]–[17]) composes reactions with two operators:

* ``|`` — *parallel* composition: all reactions observe the same multiset and
  may fire in any interleaving; this is the composition the paper uses for the
  converted dataflow programs (``R1 | R2 | ... | Rn``).
* ``;`` — *sequential* composition: the left program runs to its stable state
  (no condition satisfiable), then the right program runs on the result.

:class:`GammaProgram` is a parallel block of reactions plus an optional
initial multiset.  :class:`SequentialProgram` chains programs with ``;``.
Both share the :class:`ProgramLike` protocol used by the execution engines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..multiset.multiset import Multiset
from .reaction import Reaction

__all__ = ["GammaProgram", "SequentialProgram", "ProgramLike", "parallel", "sequential"]


class GammaProgram:
    """A parallel block of reactions (``R1 | R2 | ... | Rn``).

    Parameters
    ----------
    reactions:
        The reactions of the block.  Names must be unique — traces, the DSL
        printer and the conversion algorithms all key on them.
    initial:
        Optional initial multiset bundled with the program (Algorithm 1
        produces both together).  Engines accept an explicit multiset too.
    name:
        Optional program name used by the DSL printer and reports.
    """

    def __init__(
        self,
        reactions: Sequence[Reaction],
        initial: Optional[Multiset] = None,
        name: str = "gamma",
    ) -> None:
        reactions = list(reactions)
        if not reactions:
            raise ValueError("a Gamma program needs at least one reaction")
        seen = set()
        for reaction in reactions:
            if reaction.name in seen:
                raise ValueError(f"duplicate reaction name {reaction.name!r}")
            seen.add(reaction.name)
        self._reactions: Tuple[Reaction, ...] = tuple(reactions)
        self.initial = initial.copy() if initial is not None else None
        self.name = name

    # -- container protocol -------------------------------------------------------
    @property
    def reactions(self) -> Tuple[Reaction, ...]:
        return self._reactions

    def __len__(self) -> int:
        return len(self._reactions)

    def __iter__(self):
        return iter(self._reactions)

    def __getitem__(self, key: Union[int, str]) -> Reaction:
        if isinstance(key, int):
            return self._reactions[key]
        for reaction in self._reactions:
            if reaction.name == key:
                return reaction
        raise KeyError(f"no reaction named {key!r}")

    def __contains__(self, name: str) -> bool:
        return any(r.name == name for r in self._reactions)

    def reaction_names(self) -> List[str]:
        return [r.name for r in self._reactions]

    # -- composition -----------------------------------------------------------
    def __or__(self, other: Union["GammaProgram", Reaction]) -> "GammaProgram":
        """Parallel composition: merge the reaction blocks."""
        if isinstance(other, Reaction):
            other = GammaProgram([other])
        if not isinstance(other, GammaProgram):
            return NotImplemented
        initial = None
        if self.initial is not None or other.initial is not None:
            initial = (self.initial or Multiset()) + (other.initial or Multiset())
        return GammaProgram(
            list(self._reactions) + list(other._reactions),
            initial=initial,
            name=f"({self.name} | {other.name})",
        )

    def then(self, other: "ProgramLike") -> "SequentialProgram":
        """Sequential composition ``self ; other``."""
        return SequentialProgram([self, other])

    # -- analysis helpers ----------------------------------------------------------
    def consumed_labels(self) -> set:
        labels: set = set()
        for reaction in self._reactions:
            labels |= reaction.consumed_labels()
        return labels

    def produced_labels(self) -> set:
        labels: set = set()
        for reaction in self._reactions:
            labels |= reaction.produced_labels()
        return labels

    def output_labels(self) -> set:
        """Labels that are produced but never consumed (the program's results)."""
        return self.produced_labels() - self.consumed_labels()

    def with_initial(self, initial: Multiset) -> "GammaProgram":
        """Copy of the program with a different initial multiset."""
        return GammaProgram(self._reactions, initial=initial, name=self.name)

    def renamed(self, name: str) -> "GammaProgram":
        return GammaProgram(self._reactions, initial=self.initial, name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GammaProgram({self.name!r}, reactions={self.reaction_names()})"


class SequentialProgram:
    """Sequential composition ``P1 ; P2 ; ... ; Pk``.

    Each stage runs to its stable state before the next starts; the stable
    multiset of one stage is the initial multiset of the next.
    """

    def __init__(self, stages: Sequence["ProgramLike"], name: str = "seq") -> None:
        flat: List[ProgramLike] = []
        for stage in stages:
            if isinstance(stage, SequentialProgram):
                flat.extend(stage.stages)
            else:
                flat.append(stage)
        if not flat:
            raise ValueError("a sequential program needs at least one stage")
        self.stages: Tuple[ProgramLike, ...] = tuple(flat)
        self.name = name

    def __len__(self) -> int:
        return len(self.stages)

    def __iter__(self):
        return iter(self.stages)

    def then(self, other: "ProgramLike") -> "SequentialProgram":
        return SequentialProgram(list(self.stages) + [other], name=self.name)

    @property
    def initial(self) -> Optional[Multiset]:
        """The first stage's bundled initial multiset, if any."""
        return self.stages[0].initial

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SequentialProgram({[getattr(s, 'name', '?') for s in self.stages]})"


ProgramLike = Union[GammaProgram, SequentialProgram]


def parallel(*parts: Union[Reaction, GammaProgram], name: str = "gamma") -> GammaProgram:
    """Build a parallel block from reactions and/or programs."""
    reactions: List[Reaction] = []
    initial: Optional[Multiset] = None
    for part in parts:
        if isinstance(part, Reaction):
            reactions.append(part)
        elif isinstance(part, GammaProgram):
            reactions.extend(part.reactions)
            if part.initial is not None:
                initial = (initial or Multiset()) + part.initial
        else:
            raise TypeError(f"cannot compose {type(part).__name__} in a parallel block")
    return GammaProgram(reactions, initial=initial, name=name)


def sequential(*stages: ProgramLike, name: str = "seq") -> SequentialProgram:
    """Build a sequential composition of programs."""
    return SequentialProgram(list(stages), name=name)
