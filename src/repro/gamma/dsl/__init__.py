"""Textual Gamma DSL: the ``replace … by … if/where`` syntax of the paper's Fig. 3.

Public entry points:

* :func:`compile_source` — text → :class:`~repro.gamma.program.GammaProgram`,
* :func:`load_reaction` — text → single :class:`~repro.gamma.reaction.Reaction`,
* :func:`format_program` / :func:`format_reaction` — semantic objects → text,
* :data:`GRAMMAR_EBNF` — the grammar itself (documentation + tests).
"""

from .ast import (
    Binary,
    ByClause,
    ElementSyntax,
    InitSyntax,
    LabelLiteral,
    Literal,
    Name,
    ProgramSyntax,
    ReactionSyntax,
    Unary,
)
from .compiler import CompileError, compile_program, compile_reaction, compile_source, load_reaction
from .grammar import GRAMMAR_EBNF, grammar_rules
from .lexer import LexerError, Token, tokenize
from .parser import ParseError, parse_program, parse_reaction
from .pretty import format_expr, format_multiset, format_program, format_reaction

__all__ = [
    "tokenize", "Token", "LexerError",
    "parse_program", "parse_reaction", "ParseError",
    "compile_source", "compile_program", "compile_reaction", "load_reaction", "CompileError",
    "format_program", "format_reaction", "format_expr", "format_multiset",
    "GRAMMAR_EBNF", "grammar_rules",
    "ProgramSyntax", "ReactionSyntax", "ByClause", "ElementSyntax", "InitSyntax",
    "Name", "Literal", "LabelLiteral", "Binary", "Unary",
]
