"""Lexer for the textual Gamma syntax of Fig. 3.

The token set covers the paper's listings (Section III-A1) and the classic
Gamma style of Eq. 2:

* keywords: ``replace``, ``by``, ``if``, ``else``, ``where``, ``and``, ``or``,
  ``not``, ``init`` (keywords are case-insensitive — the paper capitalizes
  ``If`` in some listings);
* identifiers (reaction names, variables), integer/float literals, quoted
  label literals (single or double quotes);
* punctuation: ``[ ] ( ) { } , =`` and the operator set
  ``+ - * / % == != < <= > >= |``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "LexerError", "tokenize", "KEYWORDS"]

KEYWORDS = {"replace", "by", "if", "else", "where", "and", "or", "not", "init"}

_TWO_CHAR_OPS = {"==", "!=", "<=", ">="}
_ONE_CHAR_OPS = {"+", "-", "*", "/", "%", "<", ">", "=", "|", ";"}
_PUNCTUATION = {"[", "]", "(", ")", "{", "}", ","}


class LexerError(ValueError):
    """Raised on malformed Gamma source text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident', 'keyword', 'int', 'float', 'string', 'op', 'punct', 'eof'
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.value!r})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> LexerError:
        return LexerError(message, line, column)

    while i < length:
        ch = source[i]

        # Whitespace / newlines.
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # Comments: '#' and '--' to end of line.
        if ch == "#" or source.startswith("--", i):
            while i < length and source[i] != "\n":
                i += 1
            continue

        start_column = column

        # Quoted label literals.
        if ch in ("'", '"'):
            quote = ch
            j = i + 1
            while j < length and source[j] != quote:
                if source[j] == "\n":
                    raise error("unterminated string literal")
                j += 1
            if j >= length:
                raise error("unterminated string literal")
            text = source[i + 1 : j]
            tokens.append(Token("string", text, line, start_column))
            column += (j - i + 1)
            i = j + 1
            continue

        # Numbers.
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < length and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    seen_dot = True
                j += 1
            text = source[i:j]
            if text.endswith("."):
                raise error(f"malformed number {text!r}")
            value = float(text) if seen_dot else int(text)
            tokens.append(Token("float" if seen_dot else "int", value, line, start_column))
            column += j - i
            i = j
            continue

        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, line, start_column))
            else:
                tokens.append(Token("ident", text, line, start_column))
            column += j - i
            i = j
            continue

        # Operators and punctuation.
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, line, start_column))
            i += 2
            column += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, line, start_column))
            i += 1
            column += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token("punct", ch, line, start_column))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", None, line, column))
    return tokens
