"""The context-free grammar of the Gamma syntax (Fig. 3 of the paper).

The grammar is reproduced here in EBNF both as documentation and as data: the
DSL tests check that the parser accepts exactly the constructs the grammar
describes (plus the documented extensions), and the README embeds this text.

Extensions over the figure (all used by the paper's own listings or by this
reproduction's tooling and explicitly marked):

* ``where`` clauses (Eq. 2 of the paper uses one);
* bare elements in the replace/by lists (Eq. 2 again);
* an optional ``init { ... }`` statement declaring the initial multiset;
* ``#`` / ``--`` comments.
"""

from __future__ import annotations

__all__ = ["GRAMMAR_EBNF", "grammar_rules"]

GRAMMAR_EBNF = r"""
program        ::= statement+
statement      ::= reaction | init | composition

reaction       ::= NAME '=' 'replace' replace_list by_clause+ where_clause?
replace_list   ::= '(' element_list ')' | element_list
element_list   ::= element (',' element)*
element        ::= '[' field (',' field)* ']'          (* 1 to 3 fields *)
                 | expression                          (* bare form, Eq. 2 *)
field          ::= expression

by_clause      ::= 'by' by_output by_condition?
by_output      ::= '0' | element_list
by_condition   ::= 'if' condition | 'else'
where_clause   ::= 'where' condition

init           ::= 'init' '{' element_list? '}'
composition    ::= NAME ('|' NAME)+ | NAME (';' NAME)+

condition      ::= or_expr
or_expr        ::= and_expr ('or' and_expr)*
and_expr       ::= not_expr ('and' not_expr)*
not_expr       ::= 'not' not_expr | comparison
comparison     ::= additive (('==' | '!=' | '<' | '<=' | '>' | '>=') additive)*
expression     ::= additive
additive       ::= multiplicative (('+' | '-') multiplicative)*
multiplicative ::= unary (('*' | '/' | '%') unary)*
unary          ::= '-' unary | primary
primary        ::= NUMBER | STRING | NAME | '(' condition ')'

NAME           ::= [A-Za-z_][A-Za-z0-9_]*
NUMBER         ::= [0-9]+ ('.' [0-9]+)?
STRING         ::= "'" [^']* "'" | '"' [^"]* '"'
"""


def grammar_rules() -> dict:
    """The grammar as a mapping ``nonterminal -> production`` (parsed from the EBNF)."""
    rules = {}
    current = None
    for raw_line in GRAMMAR_EBNF.strip().splitlines():
        line = raw_line.rstrip()
        if not line:
            continue
        if "::=" in line:
            name, production = line.split("::=", 1)
            current = name.strip()
            rules[current] = production.strip()
        elif current is not None:
            rules[current] += " " + line.strip()
    return rules
