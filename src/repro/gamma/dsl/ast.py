"""Surface AST of the Gamma DSL (the parse target of the Fig. 3 grammar).

The surface AST stays close to the source text: elements are tuples of field
expressions whose strings preserve the literal-vs-identifier distinction, and
``by`` clauses keep their source order and attached conditions.  The compiler
(:mod:`repro.gamma.dsl.compiler`) lowers this into the semantic objects of
:mod:`repro.gamma` (patterns, templates, reactions, programs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "SourceExpr",
    "Name",
    "Literal",
    "LabelLiteral",
    "Binary",
    "Unary",
    "ElementSyntax",
    "ByClause",
    "ReactionSyntax",
    "InitSyntax",
    "ProgramSyntax",
]


class SourceExpr:
    """Base class for surface expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Name(SourceExpr):
    """An identifier: a reaction variable (``id1``, ``x``, ``v``)."""

    identifier: str


@dataclass(frozen=True)
class Literal(SourceExpr):
    """A numeric literal."""

    value: Union[int, float]


@dataclass(frozen=True)
class LabelLiteral(SourceExpr):
    """A quoted string literal — an edge/element label such as ``'A1'``."""

    value: str


@dataclass(frozen=True)
class Binary(SourceExpr):
    """A binary operation (arithmetic, comparison or boolean connective)."""

    op: str
    left: SourceExpr
    right: SourceExpr


@dataclass(frozen=True)
class Unary(SourceExpr):
    """A unary operation (``not`` or arithmetic negation)."""

    op: str
    operand: SourceExpr


@dataclass(frozen=True)
class ElementSyntax:
    """One element of a replace/by list.

    ``fields`` holds 1–3 expressions (value[, label[, tag]]); ``bare`` records
    whether the source wrote a bare identifier (Eq. 2 style, ``replace x, y``)
    rather than the bracketed tuple form.
    """

    fields: Tuple[SourceExpr, ...]
    bare: bool = False


@dataclass(frozen=True)
class ByClause:
    """A ``by`` alternative: produced elements plus an optional condition.

    ``elements`` is empty for the paper's ``by 0``.  ``condition`` is the
    expression following ``if``; ``is_else`` marks the trailing ``else`` arm.
    """

    elements: Tuple[ElementSyntax, ...]
    condition: Optional[SourceExpr] = None
    is_else: bool = False


@dataclass(frozen=True)
class ReactionSyntax:
    """One reaction definition ``NAME = replace ... by ... [where ...]``."""

    name: str
    replace: Tuple[ElementSyntax, ...]
    by_clauses: Tuple[ByClause, ...]
    where: Optional[SourceExpr] = None
    line: int = 0


@dataclass(frozen=True)
class InitSyntax:
    """An ``init { ... }`` statement declaring the initial multiset."""

    elements: Tuple[ElementSyntax, ...]
    line: int = 0


@dataclass
class ProgramSyntax:
    """A parsed source file: reactions (parallel-composed) plus optional init."""

    reactions: List[ReactionSyntax] = field(default_factory=list)
    init: Optional[InitSyntax] = None
    name: str = "gamma"
