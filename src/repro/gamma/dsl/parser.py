"""Recursive-descent parser for the Gamma syntax of Fig. 3.

Accepted statements::

    # the listings of Section III-A1
    R16 = replace [id1,'B13',v], [id2,'B15',v]
          by [id1,'B17',v]
          if id2 == 1
          by 0
          else

    # the classic Eq. 2 style
    Rmin = replace (x, y) by x where x < y

    # optional initial multiset
    init { [1,'A1',0], [5,'B1',0] }

Reactions in one source unit are parallel-composed (``R1 | R2 | ...``); the
``|`` operator may also be written explicitly between reaction names on a
standalone line, which is accepted and ignored (it adds no information beyond
the parallel default — the form the paper itself uses).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    Binary,
    ByClause,
    ElementSyntax,
    InitSyntax,
    LabelLiteral,
    Literal,
    Name,
    ProgramSyntax,
    ReactionSyntax,
    SourceExpr,
    Unary,
)
from .lexer import LexerError, Token, tokenize

__all__ = ["ParseError", "parse_program", "parse_reaction"]


class ParseError(ValueError):
    """Raised on syntactically invalid Gamma source."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}, column {token.column}: {message}")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -----------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, value: Optional[object] = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[object] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[object] = None) -> Token:
        if not self.check(kind, value):
            wanted = value if value is not None else kind
            raise ParseError(f"expected {wanted!r}, found {self.current.value!r}", self.current)
        return self.advance()

    # -- grammar ---------------------------------------------------------------------
    def parse_program(self, name: str = "gamma") -> ProgramSyntax:
        program = ProgramSyntax(name=name)
        while not self.check("eof"):
            if self.check("keyword", "init"):
                program.init = self.parse_init()
            elif self.check("ident"):
                # Either a reaction definition or a composition line (R1 | R2).
                if self.tokens[self.position + 1].kind == "op" and self.tokens[
                    self.position + 1
                ].value in ("|", ";"):
                    self._skip_composition_line()
                else:
                    program.reactions.append(self.parse_reaction())
            elif self.check("op", "|") or self.check("op", ";"):
                self.advance()
            else:
                raise ParseError(
                    f"expected a reaction definition, found {self.current.value!r}", self.current
                )
        if not program.reactions:
            raise ParseError("source contains no reaction definitions", self.current)
        return program

    def _skip_composition_line(self) -> None:
        """Consume ``R1 | R2 | R3`` composition lines (parallel is the default)."""
        self.expect("ident")
        while self.accept("op", "|") or self.accept("op", ";"):
            self.expect("ident")

    def parse_init(self) -> InitSyntax:
        token = self.expect("keyword", "init")
        self.expect("punct", "{")
        elements: List[ElementSyntax] = []
        if not self.check("punct", "}"):
            elements.append(self.parse_element())
            while self.accept("punct", ","):
                elements.append(self.parse_element())
        self.expect("punct", "}")
        return InitSyntax(elements=tuple(elements), line=token.line)

    def parse_reaction(self) -> ReactionSyntax:
        name_token = self.expect("ident")
        self.expect("op", "=")
        self.expect("keyword", "replace")

        replace = self.parse_element_list(allow_parentheses=True)

        by_clauses: List[ByClause] = []
        where: Optional[SourceExpr] = None
        while True:
            if self.check("keyword", "by"):
                by_clauses.append(self.parse_by_clause())
            elif self.check("keyword", "where"):
                self.advance()
                where = self.parse_expression()
            else:
                break
        if not by_clauses:
            raise ParseError(f"reaction {name_token.value!r} has no 'by' clause", self.current)
        return ReactionSyntax(
            name=name_token.value,
            replace=replace,
            by_clauses=tuple(by_clauses),
            where=where,
            line=name_token.line,
        )

    def parse_by_clause(self) -> ByClause:
        self.expect("keyword", "by")
        # 'by 0' produces nothing.
        if self.check("int") and self.current.value == 0:
            self.advance()
            elements: Tuple[ElementSyntax, ...] = ()
        else:
            elements = self.parse_element_list(allow_parentheses=False)
        condition: Optional[SourceExpr] = None
        is_else = False
        if self.accept("keyword", "if"):
            condition = self.parse_expression()
        elif self.accept("keyword", "else"):
            is_else = True
        # A trailing 'else' may also follow an unconditional production list
        # belonging to the *next* clause; the grammar of Fig. 3 attaches the
        # 'else' to the clause it follows, which is what we do here.
        return ByClause(elements=elements, condition=condition, is_else=is_else)

    def parse_element_list(self, allow_parentheses: bool) -> Tuple[ElementSyntax, ...]:
        elements: List[ElementSyntax] = []
        parenthesised = False
        if allow_parentheses and self.accept("punct", "("):
            parenthesised = True
        elements.append(self.parse_element())
        while self.accept("punct", ","):
            elements.append(self.parse_element())
        if parenthesised:
            self.expect("punct", ")")
        return tuple(elements)

    def parse_element(self) -> ElementSyntax:
        if self.accept("punct", "["):
            fields: List[SourceExpr] = [self.parse_expression()]
            while self.accept("punct", ","):
                fields.append(self.parse_expression())
            self.expect("punct", "]")
            if not 1 <= len(fields) <= 3:
                raise ParseError(
                    f"element tuples have 1-3 fields, got {len(fields)}", self.current
                )
            return ElementSyntax(fields=tuple(fields), bare=False)
        # Bare form (Eq. 2 style): a single expression, usually an identifier.
        return ElementSyntax(fields=(self.parse_expression(),), bare=True)

    # -- expressions -------------------------------------------------------------------
    # Precedence (low to high): or, and, not, comparison, additive, multiplicative, unary.
    def parse_expression(self) -> SourceExpr:
        return self.parse_or()

    def parse_or(self) -> SourceExpr:
        expr = self.parse_and()
        while self.accept("keyword", "or"):
            expr = Binary("or", expr, self.parse_and())
        return expr

    def parse_and(self) -> SourceExpr:
        expr = self.parse_not()
        while self.accept("keyword", "and"):
            expr = Binary("and", expr, self.parse_not())
        return expr

    def parse_not(self) -> SourceExpr:
        if self.accept("keyword", "not"):
            return Unary("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> SourceExpr:
        expr = self.parse_additive()
        while self.check("op") and self.current.value in ("==", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            expr = Binary(op, expr, self.parse_additive())
        return expr

    def parse_additive(self) -> SourceExpr:
        expr = self.parse_multiplicative()
        while self.check("op") and self.current.value in ("+", "-"):
            op = self.advance().value
            expr = Binary(op, expr, self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> SourceExpr:
        expr = self.parse_unary()
        while self.check("op") and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            expr = Binary(op, expr, self.parse_unary())
        return expr

    def parse_unary(self) -> SourceExpr:
        if self.check("op", "-"):
            self.advance()
            return Unary("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> SourceExpr:
        token = self.current
        if token.kind in ("int", "float"):
            self.advance()
            return Literal(token.value)
        if token.kind == "string":
            self.advance()
            return LabelLiteral(token.value)
        if token.kind == "ident":
            self.advance()
            return Name(token.value)
        if self.accept("punct", "("):
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        raise ParseError(f"unexpected token {token.value!r} in expression", token)


def parse_program(source: str, name: str = "gamma") -> ProgramSyntax:
    """Parse a whole source unit (one or more reactions plus optional ``init``)."""
    return _Parser(tokenize(source)).parse_program(name=name)


def parse_reaction(source: str) -> ReactionSyntax:
    """Parse a single reaction definition."""
    parser = _Parser(tokenize(source))
    reaction = parser.parse_reaction()
    if not parser.check("eof"):
        raise ParseError("trailing input after reaction definition", parser.current)
    return reaction
