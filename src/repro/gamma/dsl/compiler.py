"""Lowering the DSL surface AST into semantic reactions and programs.

Field interpretation follows the conventions of the paper's listings:

* in a *replace* element, the first field is a value variable (or literal),
  a quoted second field is the required label, an identifier second field is a
  label variable (the label-discrimination idiom of R11–R13), and the third
  field is the tag variable;
* pair-form elements (``[id1, 'A1']``) share the implicit tag variable ``v``
  with every other pair-form element of the same reaction — this is the
  reading under which the paper's Example 1 and Example 2 listings are
  consistent with each other;
* bare elements (``replace x, y`` — Eq. 2 style) leave label and tag
  unconstrained (fresh variables per element);
* in a *by* element, missing label/tag fields of a bare production that simply
  forwards a consumed variable reuse that variable's label/tag binding, so
  ``replace x, y by x where x < y`` keeps the matched element's label — the
  abstract-Gamma behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...multiset.element import Element
from ...multiset.multiset import Multiset
from ..expr import BinOp, BoolOp, Compare, Const, Expr, Not, Var
from ..pattern import ElementPattern, ElementTemplate
from ..program import GammaProgram
from ..reaction import Branch, Reaction
from .ast import (
    Binary,
    ByClause,
    ElementSyntax,
    InitSyntax,
    LabelLiteral,
    Literal,
    Name,
    ProgramSyntax,
    ReactionSyntax,
    SourceExpr,
    Unary,
)
from .parser import parse_program, parse_reaction

__all__ = ["CompileError", "compile_program", "compile_reaction", "compile_source", "load_reaction"]

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/", "%"}
_IMPLICIT_TAG = "v"


class CompileError(ValueError):
    """Raised when a parsed reaction cannot be given a meaning."""


def _compile_expr(expr: SourceExpr) -> Expr:
    """Compile a surface expression into a semantic :class:`Expr`."""
    if isinstance(expr, Name):
        return Var(expr.identifier)
    if isinstance(expr, Literal):
        return Const(expr.value)
    if isinstance(expr, LabelLiteral):
        return Const(expr.value)
    if isinstance(expr, Binary):
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        if expr.op in _COMPARISONS:
            return Compare(expr.op, left, right)
        if expr.op in ("and", "or"):
            return BoolOp(expr.op, left, right)
        if expr.op in _ARITHMETIC:
            return BinOp(expr.op, left, right)
        raise CompileError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Unary):
        operand = _compile_expr(expr.operand)
        if expr.op == "not":
            return Not(operand)
        if expr.op == "-":
            return BinOp("-", Const(0), operand)
        raise CompileError(f"unknown unary operator {expr.op!r}")
    raise CompileError(f"cannot compile {type(expr).__name__}")


def _pattern_field(expr: SourceExpr, role: str) -> Expr:
    """Pattern fields may only be variables or literals (Fig. 3's replace list)."""
    compiled = _compile_expr(expr)
    if not isinstance(compiled, (Var, Const)):
        raise CompileError(
            f"the {role} field of a replace element must be a variable or literal, "
            f"got {compiled!r}"
        )
    return compiled


class _ReactionCompiler:
    """Compiles one :class:`ReactionSyntax` into a :class:`Reaction`."""

    def __init__(self, syntax: ReactionSyntax) -> None:
        self.syntax = syntax
        self._fresh = 0
        #: value-variable name -> (label expr, tag expr) of the pattern binding it,
        #: used to fill in missing fields of bare productions.
        self._binding_fields: Dict[str, Tuple[Expr, Expr]] = {}

    def fresh_var(self, stem: str) -> Var:
        self._fresh += 1
        return Var(f"_{stem}{self._fresh}")

    # -- replace list ---------------------------------------------------------------
    def compile_pattern(self, element: ElementSyntax) -> ElementPattern:
        fields = element.fields
        value = _pattern_field(fields[0], "value")

        if element.bare or len(fields) == 1:
            label: Expr = self.fresh_var("lbl")
            tag: Expr = self.fresh_var("tag") if element.bare else Var(_IMPLICIT_TAG)
        else:
            label = _pattern_field(fields[1], "label")
            tag = _pattern_field(fields[2], "tag") if len(fields) >= 3 else Var(_IMPLICIT_TAG)

        if isinstance(value, Var):
            self._binding_fields[value.name] = (label, tag)
        return ElementPattern(value=value, label=label, tag=tag)

    # -- by list ---------------------------------------------------------------------
    def compile_template(self, element: ElementSyntax) -> ElementTemplate:
        fields = element.fields
        value = _compile_expr(fields[0])

        label: Optional[Expr] = None
        tag: Optional[Expr] = None
        if len(fields) >= 2:
            label = _compile_expr(fields[1])
        if len(fields) >= 3:
            tag = _compile_expr(fields[2])

        if label is None or tag is None:
            # Fill missing fields from the binding of a forwarded variable, or
            # fall back to the implicit shared tag / empty label.
            bound = None
            if isinstance(value, Var):
                bound = self._binding_fields.get(value.name)
            if label is None:
                label = bound[0] if bound is not None else Const("")
            if tag is None:
                if bound is not None:
                    tag = bound[1]
                else:
                    tag = Var(_IMPLICIT_TAG) if not element.bare else Const(0)
        return ElementTemplate(value=value, label=label, tag=tag)

    def compile_branch(self, clause: ByClause) -> Branch:
        productions = [self.compile_template(e) for e in clause.elements]
        condition = None if clause.condition is None else _compile_expr(clause.condition)
        if condition is not None and not condition.is_boolean():
            raise CompileError(
                f"reaction {self.syntax.name!r}: 'if' condition {condition!r} is not boolean"
            )
        return Branch(productions=productions, condition=condition)

    def compile(self) -> Reaction:
        patterns = [self.compile_pattern(e) for e in self.syntax.replace]
        branches = [self.compile_branch(clause) for clause in self.syntax.by_clauses]
        guard = None if self.syntax.where is None else _compile_expr(self.syntax.where)
        if guard is not None and not guard.is_boolean():
            raise CompileError(
                f"reaction {self.syntax.name!r}: 'where' clause {guard!r} is not boolean"
            )
        try:
            return Reaction(
                name=self.syntax.name, replace=patterns, branches=branches, guard=guard
            )
        except ValueError as exc:
            raise CompileError(f"reaction {self.syntax.name!r}: {exc}") from exc


def _compile_init(init: InitSyntax) -> Multiset:
    multiset = Multiset()
    for element in init.elements:
        fields = [_compile_expr(f) for f in element.fields]
        if not all(not f.variables() for f in fields):
            raise CompileError("init elements must be constant tuples")
        # Constant-fold (covers negative literals, which parse as 0 - n).
        values = [f.evaluate({}) for f in fields]
        value = values[0]
        label = values[1] if len(values) >= 2 else ""
        tag = values[2] if len(values) >= 3 else 0
        multiset.add(Element(value=value, label=label, tag=int(tag)))
    return multiset


def compile_reaction(syntax: ReactionSyntax) -> Reaction:
    """Compile one parsed reaction."""
    return _ReactionCompiler(syntax).compile()


def compile_program(syntax: ProgramSyntax) -> GammaProgram:
    """Compile a parsed source unit into a (parallel) Gamma program."""
    reactions = [compile_reaction(r) for r in syntax.reactions]
    initial = _compile_init(syntax.init) if syntax.init is not None else None
    return GammaProgram(reactions, initial=initial, name=syntax.name)


def compile_source(source: str, name: str = "gamma") -> GammaProgram:
    """Parse and compile Gamma source text in one call."""
    return compile_program(parse_program(source, name=name))


def load_reaction(source: str) -> Reaction:
    """Parse and compile a single reaction definition."""
    return compile_reaction(parse_reaction(source))
