"""Incremental reaction scheduling: persistent indexes + dirty-label rematching.

Every pre-scheduler engine step rebuilt a :class:`~repro.gamma.matching.Matcher`
(and its :class:`~repro.multiset.index.LabelTagIndex`) from the full multiset,
making a run of S steps over an N-element solution O(S·N) in index
construction alone.  Real chemical-machine implementations — the Connection
Machine / GPU lineage the paper cites — keep a persistent reaction/species
index and only re-examine reactions whose reactant pools changed.  This module
ports that architecture:

* the :class:`~repro.multiset.multiset.Multiset` publishes change
  notifications, and one :class:`LabelTagIndex` is attached per run and
  maintained incrementally through ``add``/``remove``/``replace``;
* each reaction's *consumed-label footprint* is precomputed
  (:meth:`~repro.gamma.reaction.Reaction.consumed_labels`); a reaction whose
  replace list binds a variable label depends on every label and is treated as
  a wildcard;
* the scheduler keeps a worklist of "possibly enabled" reactions.  A reaction
  probed without success is *parked*; after a firing, only parked reactions
  whose footprint intersects the labels touched by the rewrite are woken.
  Reactions proven dead stay parked until a relevant label changes, so stable
  sub-programs cost nothing per step.

Parking is sound because a reaction's enabledness depends only on the multiset
restricted to its footprint labels (the matcher draws candidates exclusively
from those buckets; guards and branch conditions see only bound variables).
If no element count under a footprint label changed, the match search space is
unchanged and a previously dead reaction is still dead.

With ``compiled=True`` (default) each reaction is specialized once through
:mod:`repro.gamma.compiled` and probes run the generated slot-based matchers;
``compiled=False`` probes through the interpreted :class:`Matcher` search.
``incremental=False`` selects the legacy discipline — full index rebuild and
full reaction sweep every step — kept as the benchmark baseline; it
reproduces the pre-scheduler engines exactly.  With ``incremental=True`` the
deterministic (unseeded) probe order is unchanged, while seeded schedulers
stay on the legacy RNG stream only until a dead reaction is first parked;
afterwards they may follow a different valid schedule, so seeded
incremental-vs-legacy runs agree on final multisets for confluent programs
(the property tests pin this) but not necessarily for non-confluent ones.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..multiset.columnar import ColumnarStore
from ..multiset.element import Element
from ..multiset.index import LabelTagIndex
from ..multiset.multiset import Multiset
from .matching import Match, Matcher
from .reaction import Reaction
from .vectorized import columnar_collect

__all__ = ["ReactionScheduler", "greedy_disjoint_matches", "reaction_footprints"]


def reaction_footprints(
    reactions: Sequence[Reaction],
) -> List[Tuple[frozenset, bool]]:
    """Consumed-label footprint of each reaction, as ``(labels, wildcard)``.

    For every reaction returns the frozen set of labels its replace list can
    consume plus a *wildcard* flag: ``True`` when the reaction binds a
    variable label and therefore depends on every label in the multiset (its
    ``labels`` set is then only the statically known part).  This is the same
    footprint the scheduler uses for parked-reaction wakeups; the sharded
    runtime derives its migration routing tables from it
    (:class:`repro.runtime.sharding.RoutingTable`), so scheduling and routing
    always agree on which labels a reaction can touch.  Footprints match what
    compilation resolves (:attr:`~repro.gamma.compiled.CompiledReaction.footprint`
    is ``reaction.consumed_labels()`` computed at compile time), so the
    result is valid for compiled and interpreted probing alike.
    """
    return [
        (reaction.consumed_labels(), reaction.has_variable_label())
        for reaction in reactions
    ]


class ReactionScheduler:
    """Persistent, change-driven scheduler for one Gamma run.

    One scheduler is bound to one (reactions, multiset) pair for the duration
    of a run; call :meth:`detach` afterwards to unhook the change listeners
    (engines do this in a ``finally`` block).  The multiset may only be
    mutated *between* probe calls — exactly the discipline of all engines,
    which collect matches first and fire afterwards.

    ``columnar=True`` additionally attaches a
    :class:`~repro.multiset.columnar.ColumnarStore` mirror (maintained
    through the same change notifications as the index) and lets the
    deterministic superstep collector run each eligible reaction's probe as
    a vectorized mask sweep (:func:`repro.gamma.vectorized.columnar_collect`)
    instead of an element-at-a-time bucket scan.  Reactions outside the
    vectorizable fragment — and every seeded (RNG-ordered) probe — fall back
    to the object path per reaction, so results and traces are identical
    either way.
    """

    def __init__(
        self,
        reactions: Sequence[Reaction],
        multiset: Multiset,
        rng: Optional[random.Random] = None,
        incremental: bool = True,
        compiled: bool = True,
        columnar: bool = False,
    ) -> None:
        self.reactions: Tuple[Reaction, ...] = tuple(reactions)
        self.multiset = multiset
        self.rng = rng
        self.incremental = incremental
        self.compiled = compiled
        self.columnar = columnar
        self.columnar_store: Optional[ColumnarStore] = None
        if columnar and compiled:
            self.columnar_store = ColumnarStore()
            self.columnar_store.attach(multiset)
        self.index = LabelTagIndex()
        self.index.attach(multiset)
        self.matcher = Matcher(multiset, index=self.index, rng=rng, compiled=compiled)
        # Footprints: which labels each reaction consumes; variable-label
        # reactions depend on everything and are woken by any change.  With
        # ``compiled=True`` the reactions are specialized eagerly (so the
        # first probe pays no compile latency) and the footprints come from
        # the compiled form, which resolved them at compile time.
        self._wildcards: Set[int] = set()
        self._watchers: Dict[str, List[int]] = {}
        # Per-reaction compiled forms (None entries probe interpretively),
        # resolved eagerly so probes skip the matcher's cache lookup.
        self._compiled: List[Optional[object]] = []
        for i, reaction in enumerate(self.reactions):
            compiled_reaction = self.matcher.compiled_for(reaction)
            self._compiled.append(compiled_reaction)
            if compiled_reaction is not None:
                wildcard = compiled_reaction.wildcard
                footprint = compiled_reaction.footprint
            else:
                wildcard = reaction.has_variable_label()
                footprint = reaction.consumed_labels()
            if wildcard:
                self._wildcards.add(i)
            for label in footprint:
                self._watchers.setdefault(label, []).append(i)
        self._det_order: List[int] = list(range(len(self.reactions)))
        self._parked: Set[int] = set()
        self._dirty: Set[str] = set()
        self._listener = multiset.subscribe(self._note_change)
        self._attached = True

    # -- lifecycle ----------------------------------------------------------------
    def detach(self) -> None:
        """Unhook the index and dirty-label listeners (idempotent)."""
        if self._attached:
            self.multiset.unsubscribe(self._listener)
            self.index.detach()
            if self.columnar_store is not None:
                self.columnar_store.detach()
            self._attached = False

    def _note_change(self, element: Element, delta: int) -> None:
        self._dirty.add(element.label)

    # -- worklist maintenance --------------------------------------------------------
    def refresh(self) -> None:
        """Re-arm reactions affected by mutations since the last probe round.

        In legacy (non-incremental) mode this instead rebuilds the index from
        scratch and re-arms everything, reproducing the pre-scheduler cost
        model and probe order exactly.
        """
        if not self.incremental:
            self.index.rebuild(self.multiset)
            self._parked.clear()
            self._dirty.clear()
            return
        if not self._dirty:
            return
        if self._parked:
            self._parked -= self._wildcards
            for label in self._dirty:
                watchers = self._watchers.get(label)
                if watchers:
                    self._parked.difference_update(watchers)
        self._dirty.clear()

    @property
    def parked(self) -> frozenset:
        """Indices of reactions currently proven dead (for tests/inspection)."""
        return frozenset(self._parked)

    # -- streaming ingestion ---------------------------------------------------------
    def inject(self, pairs: Sequence[Tuple[Element, int]]) -> int:
        """Admit streamed ``(element, count)`` pairs into the live run.

        The ingestion hook of :class:`repro.runtime.streaming.StreamingGammaRuntime`:
        elements arriving mid-run enter through the multiset's normal change
        notifications, so every touched label lands in the dirty set and the
        next :meth:`refresh` re-wakes exactly the parked reactions whose
        footprints the injected elements intersect — a stable sub-program
        stays parked, a reaction starved for one of the injected labels is
        re-armed without any index rebuild.  Like every mutation, injection
        must happen *between* probe rounds (the discipline all engines and
        the streaming runtime follow: elements become visible at superstep
        boundaries).  Returns the number of element copies admitted.
        """
        return self.multiset.add_counts(pairs)

    def _probe_order(self, shuffled: bool) -> List[int]:
        if not shuffled:
            return self._det_order
        if self.rng is None:
            raise ValueError("shuffled probing requires a scheduler rng")
        # Shuffle the full list (not just the active one) so the RNG
        # stream matches the pre-scheduler engines whenever nothing is
        # parked mid-run.
        order = list(self._det_order)
        self.rng.shuffle(order)
        return order

    # -- probing -------------------------------------------------------------------
    def find_first(self, shuffled: bool = False) -> Optional[Match]:
        """First enabled match over the active worklist.

        ``shuffled=False`` probes in declaration order (sequential engine);
        ``shuffled=True`` probes in RNG order (chaotic engine).  Reactions
        probed without a match are parked.
        """
        parked = self._parked
        compiled = self._compiled
        for i in self._probe_order(shuffled):
            if i in parked:
                continue
            compiled_reaction = compiled[i]
            if compiled_reaction is not None:
                match = compiled_reaction.find(self.index, self.multiset, self.rng)
            else:
                match = self.matcher.find(self.reactions[i])
            if match is None:
                parked.add(i)
            else:
                return match
        return None

    def collect_superstep_matches(self, budget: Optional[int] = None) -> List[Match]:
        """Greedy pairwise-disjoint match set for one parallel *superstep*.

        Semantically this is :meth:`collect_step_matches` — a greedy set of
        matches no two of which consume the same element occurrence — but
        extraction runs through the compiled superstep collectors
        (:meth:`~repro.gamma.compiled.CompiledReaction.collect`): one bucket
        pass per reaction with a shared consumed-occurrence map, skipping
        candidates claimed earlier in the batch, instead of enumerating every
        match and filtering.  The set is maximal when matches bind distinct
        elements; very multiplicity-heavy solutions can strand copies that
        only a *repeated* slot assignment would claim (the single-pass loops
        visit each distinct-element combination once), which costs an extra
        superstep, never correctness.  Reactions the collector cannot handle
        (no compiled form, or an unknown-label match plan) fall back to the
        enumerate-and-account discipline.

        An empty result proves the multiset stable: with nothing consumed the
        collectors degenerate to plain first-match probes, so any enabled
        reaction would have contributed.  Reactions that yield no match *and*
        competed against an empty batch are parked; reactions merely starved
        by earlier claims are left armed (the batch's own firings dirty every
        label they would need, so parking them would only churn the worklist).
        """
        remaining: Dict[Element, int] = {}
        views: Dict[int, list] = {}
        # Per-superstep cache of the columnar collectors (bucket snapshots,
        # exhausted-prefix heads, mask-true candidate lists) — the columnar
        # analogue of ``views``, shared across this superstep's reactions.
        cviews: Dict = {}
        store = self.columnar_store if self.rng is None else None
        chosen: List[Match] = []
        compiled = self._compiled
        count = self.multiset.count
        for i in self._probe_order(shuffled=self.rng is not None):
            if i in self._parked:
                continue
            if budget is not None and len(chosen) >= budget:
                break
            compiled_reaction = compiled[i]
            had_claims = bool(remaining)
            accepted = False
            if compiled_reaction is not None and compiled_reaction.supports_collect:
                matches = None
                if store is not None:
                    matches = columnar_collect(
                        compiled_reaction, store, self.multiset, remaining, cviews
                    )
                if matches is None:
                    matches = compiled_reaction.collect(
                        self.index, self.multiset, remaining, self.rng, views
                    )
                for match in matches:
                    accepted = True
                    chosen.append(match)
                    if budget is not None and len(chosen) >= budget:
                        break
                if not accepted and not had_claims:
                    self._parked.add(i)
                continue
            # Fallback: enumerate matches and account occurrences by hand.
            reaction = self.reactions[i]
            enabled = False
            if compiled_reaction is not None:
                matches = compiled_reaction.iter_matches(
                    self.index, self.multiset, self.rng
                )
            else:
                matches = self.matcher.iter_matches(reaction)
            for match in matches:
                enabled = True
                needed: Dict[Element, int] = {}
                for element in match.consumed:
                    needed[element] = needed.get(element, 0) + 1
                feasible = True
                for e, c in needed.items():
                    avail = remaining.get(e)
                    if avail is None:
                        avail = count(e)
                    if avail < c:
                        feasible = False
                        break
                if feasible:
                    for e, c in needed.items():
                        avail = remaining.get(e)
                        remaining[e] = (count(e) if avail is None else avail) - c
                    chosen.append(match)
                    if budget is not None and len(chosen) >= budget:
                        break
            if not enabled:
                self._parked.add(i)
        return chosen

    def collect_step_matches(self, budget: Optional[int] = None) -> List[Match]:
        """Greedy maximal set of non-conflicting matches for one parallel step.

        Matches are enumerated against the current multiset snapshot; a match
        is accepted when the element copies it consumes are still available in
        this step's budget of occurrences.  ``budget`` optionally caps the
        number of accepted matches (the PE-pool constraint of the runtime
        simulators).  Reactions with no match at all are parked.
        """
        available: Dict[Element, int] = dict(self.multiset.counts())
        remaining = sum(available.values())
        chosen: List[Match] = []
        for i in self._probe_order(shuffled=self.rng is not None):
            if i in self._parked:
                continue
            if budget is not None and len(chosen) >= budget:
                break
            reaction = self.reactions[i]
            if remaining < reaction.arity:
                continue
            enabled = False
            for match in self.matcher.iter_matches(reaction):
                enabled = True
                if budget is not None and len(chosen) >= budget:
                    break
                if remaining < reaction.arity:
                    break
                needed: Dict[Element, int] = {}
                for element in match.consumed:
                    needed[element] = needed.get(element, 0) + 1
                if all(available.get(e, 0) >= c for e, c in needed.items()):
                    for e, c in needed.items():
                        available[e] -= c
                        remaining -= c
                    chosen.append(match)
            if not enabled:
                self._parked.add(i)
        return chosen


def greedy_disjoint_matches(
    program_reactions: Sequence[Reaction],
    multiset: Multiset,
    rng: Optional[random.Random] = None,
    budget: Optional[int] = None,
) -> List[Match]:
    """One-shot greedy maximal disjoint match set (no persistent scheduler).

    Convenience for callers that only need a single parallel step against a
    snapshot (conversion instancing, ad-hoc analyses); long-running loops
    should hold a :class:`ReactionScheduler` instead.
    """
    scheduler = ReactionScheduler(program_reactions, multiset, rng=rng)
    try:
        return scheduler.collect_step_matches(budget=budget)
    finally:
        scheduler.detach()
