"""Expression AST shared by Gamma reaction conditions and actions.

Reactions carry two kinds of expressions:

* *conditions* (the ``where`` guard of Eq. 2 and the ``if`` clauses of the
  paper's ``by`` branches), which evaluate to booleans, and
* *productions* (the value/label/tag fields of the elements listed after
  ``by``), which evaluate to arbitrary values.

We represent both with a small immutable AST instead of opaque Python
callables because the Gamma-to-dataflow conversion (Algorithm 2 of the paper)
must *inspect* the arithmetic and comparison structure of a reaction to build
the corresponding dataflow nodes, and because the textual DSL (Fig. 3) needs a
parse target and a pretty-printing source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Mapping, Tuple

__all__ = [
    "Expr",
    "Var",
    "Const",
    "BinOp",
    "Compare",
    "BoolOp",
    "Not",
    "var",
    "const",
    "ARITHMETIC_OPS",
    "COMPARISON_OPS",
    "BOOLEAN_OPS",
    "EvaluationError",
]


class EvaluationError(Exception):
    """Raised when an expression cannot be evaluated under a binding."""


def _safe_div(a, b):
    """Division used by reaction expressions.

    Integer operands divide with C semantics — the quotient is truncated
    toward zero — matching the dataflow side's ``_int_div`` and the loop
    counters of the paper's examples.  Anything else falls back to true
    division.  Division by zero raises :class:`EvaluationError`.
    """
    if b == 0:
        raise EvaluationError("division by zero in reaction expression")
    if isinstance(a, int) and isinstance(b, int):
        magnitude = abs(a) // abs(b)
        return magnitude if (a >= 0) == (b >= 0) else -magnitude
    return a / b


ARITHMETIC_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _safe_div,
    "%": lambda a, b: a % b,
    "min": min,
    "max": max,
}

COMPARISON_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

BOOLEAN_OPS: Dict[str, Callable[[bool, bool], bool]] = {
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        """Evaluate under the variable binding ``env``."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """The free variables referenced by this expression."""
        raise NotImplementedError

    def is_boolean(self) -> bool:
        """True when the expression always evaluates to a boolean."""
        return False

    # Operator sugar so reactions can be written compactly in Python:
    #   var("x") + var("y"), var("x") < var("y"), ...
    def _wrap(self, other: Any) -> "Expr":
        return other if isinstance(other, Expr) else Const(other)

    def __add__(self, other):
        return BinOp("+", self, self._wrap(other))

    def __radd__(self, other):
        return BinOp("+", self._wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, self._wrap(other))

    def __rsub__(self, other):
        return BinOp("-", self._wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, self._wrap(other))

    def __rmul__(self, other):
        return BinOp("*", self._wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, self._wrap(other))

    def __mod__(self, other):
        return BinOp("%", self, self._wrap(other))

    def eq(self, other):
        return Compare("==", self, self._wrap(other))

    def ne(self, other):
        return Compare("!=", self, self._wrap(other))

    def __lt__(self, other):
        return Compare("<", self, self._wrap(other))

    def __le__(self, other):
        return Compare("<=", self, self._wrap(other))

    def __gt__(self, other):
        return Compare(">", self, self._wrap(other))

    def __ge__(self, other):
        return Compare(">=", self, self._wrap(other))

    def and_(self, other):
        return BoolOp("and", self, self._wrap(other))

    def or_(self, other):
        return BoolOp("or", self, self._wrap(other))

    def not_(self):
        return Not(self)


#: Shared empty variable set (constants reference no variables).
_NO_VARIABLES: FrozenSet[str] = frozenset()


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A reaction variable (``id1``, ``x``, ``v`` in the paper's listings)."""

    name: str
    # Cached free-variable set.  The scheduler recomputes reaction footprints
    # per attach and the compiler walks expressions per reaction, so the
    # frozensets are built once at construction instead of per call.
    _vars: FrozenSet[str] = field(init=False, repr=False, compare=False, default=_NO_VARIABLES)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_vars", frozenset((self.name,)))

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        try:
            return env[self.name]
        except KeyError as exc:
            raise EvaluationError(f"unbound reaction variable {self.name!r}") from exc

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """A literal constant."""

    value: Any

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return _NO_VARIABLES

    def is_boolean(self) -> bool:
        return isinstance(self.value, bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """Arithmetic binary operation (``+``, ``-``, ``*``, ``/``, ``%``, ``min``, ``max``)."""

    op: str
    left: Expr
    right: Expr
    _vars: FrozenSet[str] = field(init=False, repr=False, compare=False, default=_NO_VARIABLES)

    def __post_init__(self) -> None:
        if self.op not in ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")
        object.__setattr__(self, "_vars", self.left.variables() | self.right.variables())

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return ARITHMETIC_OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, slots=True)
class Compare(Expr):
    """Comparison (``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``)."""

    op: str
    left: Expr
    right: Expr
    _vars: FrozenSet[str] = field(init=False, repr=False, compare=False, default=_NO_VARIABLES)

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        object.__setattr__(self, "_vars", self.left.variables() | self.right.variables())

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        try:
            return bool(COMPARISON_OPS[self.op](self.left.evaluate(env), self.right.evaluate(env)))
        except TypeError as exc:
            raise EvaluationError(f"incomparable operands in {self!r}: {exc}") from exc

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def is_boolean(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, slots=True)
class BoolOp(Expr):
    """Boolean connective (``and`` / ``or``)."""

    op: str
    left: Expr
    right: Expr
    _vars: FrozenSet[str] = field(init=False, repr=False, compare=False, default=_NO_VARIABLES)

    def __post_init__(self) -> None:
        if self.op not in BOOLEAN_OPS:
            raise ValueError(f"unknown boolean operator {self.op!r}")
        object.__setattr__(self, "_vars", self.left.variables() | self.right.variables())

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        left = bool(self.left.evaluate(env))
        # Short-circuit like the host language; reaction conditions written in
        # the paper rely on this for the label-discrimination idiom.
        if self.op == "and":
            return left and bool(self.right.evaluate(env))
        return left or bool(self.right.evaluate(env))

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def is_boolean(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, slots=True)
class Not(Expr):
    """Boolean negation."""

    operand: Expr
    _vars: FrozenSet[str] = field(init=False, repr=False, compare=False, default=_NO_VARIABLES)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_vars", self.operand.variables())

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        return not bool(self.operand.evaluate(env))

    def variables(self) -> FrozenSet[str]:
        return self._vars

    def is_boolean(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"(not {self.operand!r})"


def var(name: str) -> Var:
    """Shorthand constructor for :class:`Var`."""
    return Var(name)


def const(value: Any) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)
