"""Execution engines implementing the Γ operator (Eq. 1 of the paper).

All engines implement the same contract: starting from an initial multiset,
repeatedly apply enabled reactions until *no reaction condition is
satisfiable* (the paper's "global termination state"), then return the stable
multiset plus an execution trace.  They differ only in **how** enabled
reactions are scheduled, which is exactly the degree of freedom the Gamma
model leaves open:

* :class:`SequentialEngine` — deterministic: scans reactions in declaration
  order and applies the first enabled match, one firing per step.  Mirrors the
  single-processor implementation of Muylaert/Gay cited in the paper [13].
* :class:`ChaoticEngine` — nondeterministic: draws a random enabled
  (reaction, match) pair each step from a seeded RNG.  This is the closest to
  the abstract chemical-machine metaphor and is what the equivalence tests
  sample over many seeds.
* :class:`MaxParallelEngine` — simulated parallel: at each step collects a
  maximal set of *non-conflicting* matches (no element occurrence consumed
  twice) across all reactions and fires them simultaneously, like the
  Connection Machine / GPU implementations cited in the paper.  Its per-step
  width is the Gamma-side parallelism profile used by experiment E9.
* :class:`ParallelEngine` — *executed* parallel: the batched superstep
  backend.  Each superstep extracts a maximal disjoint match set through the
  compiled collectors, optionally evaluates productions on a
  ``concurrent.futures`` worker pool, and fires the whole batch through one
  validation-free batched rewrite.  Deterministic trace at any worker count.

Scheduler architecture
----------------------

All three engines share one run loop (:meth:`GammaEngine._run_block`) built on
the incremental :class:`~repro.gamma.scheduler.ReactionScheduler`:

1. a :class:`~repro.multiset.index.LabelTagIndex` is *attached* to the run's
   multiset once and maintained through the multiset's change notifications —
   no per-step index rebuild;
2. the scheduler precomputes each reaction's consumed-label footprint and
   parks reactions proven dead; after a firing, only reactions whose footprint
   intersects the labels touched by the rewrite are re-probed;
3. subclasses provide only the *match selection policy*
   (:meth:`GammaEngine._select_matches`): first-in-declaration-order,
   first-in-shuffled-order, or a greedy maximal non-conflicting set.

Reactions are additionally *compiled* before the run starts
(:mod:`repro.gamma.compiled`): slot-based codegenned matchers, compiled
guards/productions, and the validation-free ``rewrite_unchecked`` firing
path.  ``compiled=False`` selects the interpreted matcher/guard baseline
(bit-identical seeded traces on every identity-plan reaction set, which
includes all paper workloads); ``incremental=False`` additionally falls back
to the legacy rebuild-per-step discipline, which reproduces the pre-scheduler
engines exactly; the scaling benchmarks use both as baselines.  The sequential
engine's firing sequence is identical in both modes.  For the seeded
nondeterministic engines the two modes draw from the same RNG stream until a
dead reaction is first parked; past that point they may explore *different
valid schedules* of the same program (parking skips probes that would have
consumed RNG draws), so equality of their final multisets is guaranteed only
for confluent programs — which is what the cross-engine property tests
assert on the paper workloads.

Every engine enforces a ``max_steps`` budget.  By default a diverging program
(or a conversion bug) raises :class:`NonTerminationError` instead of hanging;
with ``raise_on_budget=False`` the engine instead returns the partial
:class:`ExecutionResult` with ``stable=False``, which is also how bounded
"run for k steps" experiments are expressed.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from ..api import RuntimeConfig

from ..multiset.element import Element
from ..multiset.multiset import Multiset
from .compiled import evaluate_productions
from .matching import Match
from .program import GammaProgram, ProgramLike, SequentialProgram
from .scheduler import ReactionScheduler
from .tracer import Trace
from .vectorized import ColumnarKernel

__all__ = [
    "ExecutionResult",
    "NonTerminationError",
    "GammaEngine",
    "SequentialEngine",
    "ChaoticEngine",
    "MaxParallelEngine",
    "ParallelEngine",
    "run",
    "run_program",
]

DEFAULT_MAX_STEPS = 1_000_000


class NonTerminationError(RuntimeError):
    """Raised when an execution exceeds its step budget without stabilizing."""


@dataclass
class ExecutionResult:
    """Outcome of running a Gamma program.

    ``stable`` is ``True`` when the run reached the paper's global termination
    state (no reaction condition satisfiable) and ``False`` when the engine
    stopped early because ``max_steps`` was exhausted under
    ``raise_on_budget=False`` — ``final`` then holds the partial multiset.
    """

    final: Multiset
    trace: Trace
    steps: int
    firings: int
    engine: str
    stable: bool = True

    def values_with_label(self, label: str) -> List:
        """Values of the stable multiset's elements carrying ``label``."""
        return self.final.values_with_label(label)

    def outputs(self, labels: Sequence[str]) -> Multiset:
        """The stable multiset restricted to ``labels`` (the observable result)."""
        return self.final.restrict_labels(labels)

    def parallelism_profile(self) -> List[int]:
        """Firings per step over the trace (the run's parallelism width)."""
        return self.trace.parallelism_profile()


class GammaEngine:
    """Base class providing the shared scheduler-driven run loop.

    Subclasses set a ``name``, optionally seed ``self._rng``, and implement
    :meth:`_select_matches` — the scheduling policy applied once per step.
    """

    name = "abstract"

    def __init__(
        self,
        max_steps: int = DEFAULT_MAX_STEPS,
        raise_on_budget: bool = True,
        incremental: bool = True,
        compiled: bool = True,
        columnar: bool = False,
    ) -> None:
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.max_steps = max_steps
        self.raise_on_budget = raise_on_budget
        self.incremental = incremental
        self.compiled = compiled
        # Columnar mode (see repro.gamma.vectorized): results and traces are
        # identical with and without it — engines opt into vectorized probe
        # paths where their scheduling policy permits and silently stay on
        # the object path otherwise, so the flag is accepted uniformly.
        self.columnar = columnar
        self._rng: Optional[random.Random] = None
        #: Optional per-phase wall-time collector (duck-typed: an object with
        #: ``add(phase, seconds)``), installed by the benchmark harness's
        #: ``--profile`` mode; ``None`` costs nothing on the hot loops.
        self.profiler = None

    # -- public API --------------------------------------------------------------
    def run(
        self,
        program: ProgramLike,
        initial: Optional[Multiset] = None,
    ) -> ExecutionResult:
        """Run ``program`` starting from ``initial`` (or its bundled multiset)."""
        if isinstance(program, SequentialProgram):
            return self._run_sequential_composition(program, initial)
        if not isinstance(program, GammaProgram):
            raise TypeError(f"cannot run {type(program).__name__}")
        multiset = self._initial_multiset(program, initial)
        trace = Trace()
        steps, firings, stable = self._run_block(program, multiset, trace)
        return ExecutionResult(
            final=multiset,
            trace=trace,
            steps=steps,
            firings=firings,
            engine=self.name,
            stable=stable,
        )

    def _run_sequential_composition(
        self, program: SequentialProgram, initial: Optional[Multiset]
    ) -> ExecutionResult:
        current = initial
        trace = Trace()
        total_steps = 0
        total_firings = 0
        stable = True
        multiset: Optional[Multiset] = None
        for stage in program.stages:
            if not isinstance(stage, GammaProgram):
                raise TypeError("sequential stages must be GammaProgram blocks")
            multiset = self._initial_multiset(stage, current)
            steps, firings, stable = self._run_block(stage, multiset, trace)
            total_steps += steps
            total_firings += firings
            current = multiset
            if not stable:
                # Budget exhausted mid-stage: later stages never run; report
                # the partial state instead of silently continuing.
                break
        assert multiset is not None
        return ExecutionResult(
            final=multiset,
            trace=trace,
            steps=total_steps,
            firings=total_firings,
            engine=self.name,
            stable=stable,
        )

    @staticmethod
    def _initial_multiset(program: GammaProgram, initial: Optional[Multiset]) -> Multiset:
        if initial is not None:
            return initial.copy()
        if program.initial is not None:
            return program.initial.copy()
        raise ValueError(
            f"program {program.name!r} has no bundled initial multiset; pass one explicitly"
        )

    # -- shared run loop ------------------------------------------------------------
    def _run_block(
        self, program: GammaProgram, multiset: Multiset, trace: Trace
    ) -> Tuple[int, int, bool]:
        """Run one parallel block in place; return (steps, firings, stable)."""
        scheduler = ReactionScheduler(
            program.reactions,
            multiset,
            rng=self._rng,
            incremental=self.incremental,
            compiled=self.compiled,
            columnar=self.columnar,
        )
        try:
            return self.drain(
                scheduler,
                multiset,
                trace,
                max_steps=self.max_steps,
                raise_on_budget=self.raise_on_budget,
                label=program.name,
            )
        finally:
            scheduler.detach()

    def drain(
        self,
        scheduler: ReactionScheduler,
        multiset: Multiset,
        trace: Trace,
        max_steps: int,
        raise_on_budget: bool = True,
        label: str = "<stream>",
    ) -> Tuple[int, int, bool]:
        """Fire under this engine's policy until stable or ``max_steps`` runs out.

        The resumable inner loop shared by :meth:`_run_block` (which creates
        a scheduler per block and drains once) and by
        :class:`~repro.runtime.streaming.StreamingGammaRuntime` (which holds
        one *persistent* scheduler across the whole stream and drains once
        per epoch — injected elements dirty their labels, so the next drain
        re-wakes exactly the affected parked reactions).  Returns
        ``(steps, firings, stable)``; with ``raise_on_budget=False`` an
        exhausted budget returns ``stable=False`` instead of raising.
        """
        # Matches handed out by the scheduler are availability-verified, so
        # the compiled path skips replace()'s redundant atomic pre-validation.
        apply_rewrite = multiset.rewrite_unchecked if self.compiled else multiset.replace
        steps = 0
        firings = 0
        while True:
            if steps >= max_steps:
                if raise_on_budget:
                    raise NonTerminationError(
                        f"{self.name} engine exceeded {max_steps} steps "
                        f"on {label!r}"
                    )
                return steps, firings, False
            scheduler.refresh()
            matches = self._select_matches(scheduler)
            if not matches:
                return steps, firings, True
            step = trace.begin_step()
            for match in matches:
                produced = match.produced()
                apply_rewrite(match.consumed, produced)
                trace.record(step, match.reaction.name, match.consumed, produced, match.binding)
                firings += 1
            steps += 1

    # -- to be provided by subclasses ----------------------------------------------
    def _select_matches(self, scheduler: ReactionScheduler) -> List[Match]:
        """The matches to fire this step (empty list = stable state reached)."""
        raise NotImplementedError


class SequentialEngine(GammaEngine):
    """Deterministic one-firing-per-step engine (reaction declaration order)."""

    name = "sequential"

    def drain(
        self,
        scheduler: ReactionScheduler,
        multiset: Multiset,
        trace: Trace,
        max_steps: int,
        raise_on_budget: bool = True,
        label: str = "<stream>",
    ) -> Tuple[int, int, bool]:
        """Sequential drain, vectorized when ``columnar=True`` permits.

        With a columnar scheduler whose whole program lowers to mask
        programs (:meth:`ColumnarKernel.build`), the first-match/fire loop
        runs entirely against the columnar store — same firings, same trace
        records — and the object loop only takes over for whatever the
        kernel hands back (a bail on a divisor hazard or a bucket demotion,
        never a semantic difference).  Otherwise this is exactly the base
        drain.
        """
        if not (self.columnar and self.compiled):
            return super().drain(
                scheduler, multiset, trace, max_steps, raise_on_budget, label
            )
        kernel = ColumnarKernel.build(scheduler)
        if kernel is None:
            return super().drain(
                scheduler, multiset, trace, max_steps, raise_on_budget, label
            )
        steps, firings, outcome = kernel.drain(trace, max_steps, self.profiler)
        if outcome == "stable":
            return steps, firings, True
        if outcome == "budget":
            if raise_on_budget:
                raise NonTerminationError(
                    f"{self.name} engine exceeded {max_steps} steps on {label!r}"
                )
            return steps, firings, False
        # Bail: the object path finishes the drain under the remaining
        # budget; the budget error is raised here so its message names the
        # caller's full budget, not the remainder.
        more_steps, more_firings, stable = super().drain(
            scheduler,
            multiset,
            trace,
            max_steps - steps,
            raise_on_budget=False,
            label=label,
        )
        steps += more_steps
        firings += more_firings
        if not stable and raise_on_budget:
            raise NonTerminationError(
                f"{self.name} engine exceeded {max_steps} steps on {label!r}"
            )
        return steps, firings, stable

    def _select_matches(self, scheduler: ReactionScheduler) -> List[Match]:
        match = scheduler.find_first()
        return [match] if match is not None else []


class ChaoticEngine(GammaEngine):
    """Nondeterministic engine: random enabled (reaction, match) pair per step."""

    name = "chaotic"

    def __init__(
        self,
        seed: Optional[int] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        raise_on_budget: bool = True,
        incremental: bool = True,
        compiled: bool = True,
        columnar: bool = False,
    ) -> None:
        super().__init__(
            max_steps=max_steps,
            raise_on_budget=raise_on_budget,
            incremental=incremental,
            compiled=compiled,
            columnar=columnar,
        )
        self.seed = seed
        self._rng = random.Random(seed)

    def _select_matches(self, scheduler: ReactionScheduler) -> List[Match]:
        match = scheduler.find_first(shuffled=True)
        return [match] if match is not None else []


class MaxParallelEngine(GammaEngine):
    """Simulated parallel engine: a maximal set of non-conflicting firings per step.

    Conflict detection is on element *occurrences*: two matches conflict when
    together they would consume more copies of some element than the multiset
    holds.  The greedy maximal set is built in randomized order so repeated
    runs with different seeds explore different parallel schedules.
    """

    name = "max-parallel"

    def __init__(
        self,
        seed: Optional[int] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        raise_on_budget: bool = True,
        incremental: bool = True,
        compiled: bool = True,
        columnar: bool = False,
    ) -> None:
        super().__init__(
            max_steps=max_steps,
            raise_on_budget=raise_on_budget,
            incremental=incremental,
            compiled=compiled,
            columnar=columnar,
        )
        self.seed = seed
        self._rng = random.Random(seed)

    def _select_matches(self, scheduler: ReactionScheduler) -> List[Match]:
        return scheduler.collect_step_matches()


class ParallelEngine(GammaEngine):
    """Batched superstep execution: fire a whole disjoint match set per step.

    The counting engines above *simulate* parallelism; this backend executes
    it.  Each superstep:

    1. extracts a maximal pairwise-disjoint match set through the scheduler's
       compiled superstep collectors
       (:meth:`ReactionScheduler.collect_superstep_matches` — one bucket pass
       per reaction instead of one probe restart per firing);
    2. evaluates the matches' compiled productions — inline by default, or
       chunked across a ``concurrent.futures`` thread pool when ``workers`` is
       given.  Production evaluation is pure, so chunks reassemble in match
       order; note that for pure-Python productions the GIL serializes the
       threads, so ``workers`` demonstrates the deterministic off-schedule
       evaluation architecture (and suits free-threaded builds or productions
       that release the GIL) rather than speeding up CPython today —
       ``workers=None`` is the fast path;
    3. applies the whole batch through the validation-free
       :meth:`Multiset.rewrite_batch_unchecked` (two-phase, batched change
       notifications), records every firing under one trace step, and only
       then lets the scheduler observe the dirty labels.

    Scheduling is deterministic: unseeded, reactions and candidates are probed
    in declaration/bucket order; with a ``seed``, probe order is drawn from a
    private RNG stream that the worker pool never touches.  Either way the
    firing sequence — and therefore the trace — is *identical at any worker
    count*, which is what makes the differential tests able to pin this
    backend against the sequential engines.

    ``max_batch`` caps the firings per superstep (the PE-budget constraint of
    the runtime simulators); ``workers`` counts productions evaluators, not
    match extractors — extraction is single-threaded by design, since it is
    what defines the schedule.
    """

    name = "parallel"

    def __init__(
        self,
        seed: Optional[int] = None,
        workers: Optional[int] = None,
        max_batch: Optional[int] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        raise_on_budget: bool = True,
        incremental: bool = True,
        compiled: bool = True,
        columnar: bool = False,
    ) -> None:
        super().__init__(
            max_steps=max_steps,
            raise_on_budget=raise_on_budget,
            incremental=incremental,
            compiled=compiled,
            columnar=columnar,
        )
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive (or None for inline evaluation)")
        if max_batch is not None and max_batch <= 0:
            raise ValueError("max_batch must be positive (or None for unbounded)")
        self.seed = seed
        self.workers = workers
        self.max_batch = max_batch
        # Unseeded runs stay on the deterministic probe order (no shuffling),
        # which is also the fastest path: shuffled candidate enumeration has
        # to materialize buckets.
        self._rng = random.Random(seed) if seed is not None else None
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- batched run loop ----------------------------------------------------------
    def _run_block(
        self, program: GammaProgram, multiset: Multiset, trace: Trace
    ) -> Tuple[int, int, bool]:
        try:
            return super()._run_block(program, multiset, trace)
        finally:
            self.close()

    def close(self) -> None:
        """Shut down the production-evaluation worker pool (idempotent).

        Batch runs close automatically at the end of every block; the
        streaming runtime holds one engine across many epochs and closes it
        when the stream drains.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _pool(self) -> Optional[ThreadPoolExecutor]:
        """The lazily created worker pool (``None`` for inline evaluation)."""
        if self.workers is None or self.workers <= 1:
            return None
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def drain(
        self,
        scheduler: ReactionScheduler,
        multiset: Multiset,
        trace: Trace,
        max_steps: int,
        raise_on_budget: bool = True,
        label: str = "<stream>",
    ) -> Tuple[int, int, bool]:
        """Superstep counterpart of :meth:`GammaEngine.drain` (same contract)."""
        apply_batch = (
            multiset.rewrite_batch_unchecked if self.compiled else multiset.replace
        )
        executor = self._pool()
        steps = 0
        firings = 0
        while True:
            if steps >= max_steps:
                if raise_on_budget:
                    raise NonTerminationError(
                        f"{self.name} engine exceeded {max_steps} supersteps "
                        f"on {label!r}"
                    )
                return steps, firings, False
            scheduler.refresh()
            matches = scheduler.collect_superstep_matches(budget=self.max_batch)
            if not matches:
                return steps, firings, True
            produced_lists = self._evaluate_productions(matches, executor)
            step = trace.begin_step()
            removed: List[Element] = []
            added: List[Element] = []
            for match, produced in zip(matches, produced_lists):
                removed.extend(match.consumed)
                added.extend(produced)
                trace.record(step, match.reaction.name, match.consumed, produced, match.binding)
            apply_batch(removed, added)
            firings += len(matches)
            steps += 1

    def _evaluate_productions(
        self, matches: List[Match], executor: Optional[ThreadPoolExecutor]
    ) -> List[List[Element]]:
        """Productions of ``matches``, in match order, regardless of workers."""
        assert self.workers is not None or executor is None
        if executor is None or len(matches) < 2 * (self.workers or 1):
            return evaluate_productions(matches)
        workers: int = self.workers  # type: ignore[assignment]
        chunk = (len(matches) + workers - 1) // workers
        chunks = [matches[i : i + chunk] for i in range(0, len(matches), chunk)]
        out: List[List[Element]] = []
        for produced in executor.map(evaluate_productions, chunks):
            out.extend(produced)
        return out

    def _select_matches(self, scheduler: ReactionScheduler) -> List[Match]:
        # The batched drain() above replaces the base loop entirely.
        raise NotImplementedError("ParallelEngine uses its own superstep loop")


_ENGINES = {
    "sequential": SequentialEngine,
    "chaotic": ChaoticEngine,
    "max-parallel": MaxParallelEngine,
    "parallel": ParallelEngine,
}


def run(
    program: ProgramLike,
    initial: Optional[Multiset] = None,
    engine: Union[str, GammaEngine] = "sequential",
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    raise_on_budget: Optional[bool] = None,
    compiled: Optional[bool] = None,
    parallel: Union[None, bool, int] = None,
    columnar: Optional[bool] = None,
    config: Optional["RuntimeConfig"] = None,
):
    """Run a Gamma program — the unified batch entry point.

    The preferred configuration surface is ``config``, a
    :class:`repro.api.RuntimeConfig`::

        run(program, initial, config=RuntimeConfig(engine="chaotic", seed=7))
        run(program, initial, config=RuntimeConfig(backend="inprocess", shards=4))

    With ``config.backend`` set the call routes through
    :class:`~repro.runtime.distributed.DistributedGammaRuntime` (returning its
    :class:`~repro.runtime.distributed.DistributedRunResult`); otherwise one of
    the single-process engines runs and an
    :class:`~repro.gamma.trace.ExecutionResult` is returned.  All conflict
    rules live in :meth:`RuntimeConfig.validate`.

    ``engine`` may also be an engine *instance*; instances carry their own
    configuration, so combining one with any other keyword (or ``config``)
    raises ``ValueError``.

    The remaining keywords are the legacy configuration surface.  They still
    work — each call builds the equivalent ``RuntimeConfig`` internally — but
    emit a ``DeprecationWarning`` (message prefix ``"legacy keyword
    configuration"``).  They cannot be combined with ``config``.  As before,
    ``seed`` is tolerated (and unused) for ``engine="sequential"`` so one
    seed can be forwarded while sweeping all engine names, and
    ``parallel=False`` / ``columnar=False`` are normalized to "unset" so
    sweeps can forward uniform flag values.
    """
    from ..api import RuntimeConfig, _legacy_names, _reject_config_mix, _warn_legacy

    if parallel is False:
        # "No parallel backend" is the default: an explicit False must behave
        # like None everywhere (including the engine-instance conflict check),
        # so sweeps can forward a uniform parallel=False.
        parallel = None
    if columnar is False:
        # Same tolerance for columnar: mode sweeps forward columnar=False.
        columnar = None
    if isinstance(engine, GammaEngine):
        conflicting = [
            name
            for name, value in (
                ("seed", seed),
                ("max_steps", max_steps),
                ("raise_on_budget", raise_on_budget),
                ("compiled", compiled),
                ("parallel", parallel),
                ("columnar", columnar),
                ("config", config),
            )
            if value is not None
        ]
        if conflicting:
            raise ValueError(
                f"cannot combine an engine instance with {', '.join(conflicting)}; "
                f"configure the engine directly instead"
            )
        return engine.run(program, initial)

    # The default engine="sequential" string is indistinguishable from an
    # explicit one, so only a non-default name counts as a legacy keyword.
    legacy = _legacy_names(
        (
            ("engine", engine if engine != "sequential" else None),
            ("seed", seed),
            ("max_steps", max_steps),
            ("raise_on_budget", raise_on_budget),
            ("compiled", compiled),
            ("parallel", parallel),
            ("columnar", columnar),
        )
    )
    if config is not None:
        _reject_config_mix(legacy)
        cfg = config
    else:
        cfg = RuntimeConfig(
            engine=engine if engine != "sequential" else None,
            seed=seed,
            max_steps=max_steps,
            raise_on_budget=raise_on_budget,
            compiled=compiled,
            parallel=parallel,
            columnar=columnar,
        )
    cfg.validate("engine")
    if config is None and legacy:
        _warn_legacy("run()", legacy)

    if cfg.backend is not None:
        from ..runtime.distributed import DistributedGammaRuntime

        return DistributedGammaRuntime(program, config=cfg).run(initial)

    engine_name = "parallel" if cfg.parallel is not None else (cfg.engine or "sequential")
    cls = _ENGINES[engine_name]
    kwargs = {
        "max_steps": DEFAULT_MAX_STEPS if cfg.max_steps is None else cfg.max_steps,
        "raise_on_budget": True if cfg.raise_on_budget is None else cfg.raise_on_budget,
        "compiled": True if cfg.compiled is None else cfg.compiled,
        "columnar": False if cfg.columnar is None else cfg.columnar,
    }
    if cls is ParallelEngine:
        kwargs["workers"] = (
            cfg.parallel
            if isinstance(cfg.parallel, int) and not isinstance(cfg.parallel, bool)
            else None
        )
    if cls is not SequentialEngine:
        kwargs["seed"] = cfg.seed
    return cls(**kwargs).run(program, initial)


# Backwards-friendly alias used throughout examples.
run_program = run
