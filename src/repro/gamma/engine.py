"""Execution engines implementing the Γ operator (Eq. 1 of the paper).

All engines implement the same contract: starting from an initial multiset,
repeatedly apply enabled reactions until *no reaction condition is
satisfiable* (the paper's "global termination state"), then return the stable
multiset plus an execution trace.  They differ only in **how** enabled
reactions are scheduled, which is exactly the degree of freedom the Gamma
model leaves open:

* :class:`SequentialEngine` — deterministic: scans reactions in declaration
  order and applies the first enabled match, one firing per step.  Mirrors the
  single-processor implementation of Muylaert/Gay cited in the paper [13].
* :class:`ChaoticEngine` — nondeterministic: draws a random enabled
  (reaction, match) pair each step from a seeded RNG.  This is the closest to
  the abstract chemical-machine metaphor and is what the equivalence tests
  sample over many seeds.
* :class:`MaxParallelEngine` — simulated parallel: at each step collects a
  maximal set of *non-conflicting* matches (no element occurrence consumed
  twice) across all reactions and fires them simultaneously, like the
  Connection Machine / GPU implementations cited in the paper.  Its per-step
  width is the Gamma-side parallelism profile used by experiment E9.

Every engine enforces a ``max_steps`` budget so a diverging program (or a
conversion bug) raises :class:`NonTerminationError` instead of hanging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..multiset.multiset import Multiset
from .matching import Match, Matcher
from .program import GammaProgram, ProgramLike, SequentialProgram
from .reaction import Reaction
from .tracer import Trace

__all__ = [
    "ExecutionResult",
    "NonTerminationError",
    "GammaEngine",
    "SequentialEngine",
    "ChaoticEngine",
    "MaxParallelEngine",
    "run",
    "run_program",
]

DEFAULT_MAX_STEPS = 1_000_000


class NonTerminationError(RuntimeError):
    """Raised when an execution exceeds its step budget without stabilizing."""


@dataclass
class ExecutionResult:
    """Outcome of running a Gamma program to its stable state."""

    final: Multiset
    trace: Trace
    steps: int
    firings: int
    engine: str
    stable: bool = True

    def values_with_label(self, label: str) -> List:
        """Values of the stable multiset's elements carrying ``label``."""
        return self.final.values_with_label(label)

    def outputs(self, labels: Sequence[str]) -> Multiset:
        """The stable multiset restricted to ``labels`` (the observable result)."""
        return self.final.restrict_labels(labels)

    def parallelism_profile(self) -> List[int]:
        return self.trace.parallelism_profile()


class GammaEngine:
    """Base class with the shared run loop plumbing."""

    name = "abstract"

    def __init__(self, max_steps: int = DEFAULT_MAX_STEPS) -> None:
        if max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.max_steps = max_steps

    # -- public API --------------------------------------------------------------
    def run(
        self,
        program: ProgramLike,
        initial: Optional[Multiset] = None,
    ) -> ExecutionResult:
        """Run ``program`` starting from ``initial`` (or its bundled multiset)."""
        if isinstance(program, SequentialProgram):
            return self._run_sequential_composition(program, initial)
        if not isinstance(program, GammaProgram):
            raise TypeError(f"cannot run {type(program).__name__}")
        multiset = self._initial_multiset(program, initial)
        trace = Trace()
        steps, firings = self._run_block(program, multiset, trace)
        return ExecutionResult(
            final=multiset,
            trace=trace,
            steps=steps,
            firings=firings,
            engine=self.name,
        )

    def _run_sequential_composition(
        self, program: SequentialProgram, initial: Optional[Multiset]
    ) -> ExecutionResult:
        current = initial
        trace = Trace()
        total_steps = 0
        total_firings = 0
        multiset: Optional[Multiset] = None
        for stage in program.stages:
            if not isinstance(stage, GammaProgram):
                raise TypeError("sequential stages must be GammaProgram blocks")
            multiset = self._initial_multiset(stage, current)
            steps, firings = self._run_block(stage, multiset, trace)
            total_steps += steps
            total_firings += firings
            current = multiset
        assert multiset is not None
        return ExecutionResult(
            final=multiset,
            trace=trace,
            steps=total_steps,
            firings=total_firings,
            engine=self.name,
        )

    @staticmethod
    def _initial_multiset(program: GammaProgram, initial: Optional[Multiset]) -> Multiset:
        if initial is not None:
            return initial.copy()
        if program.initial is not None:
            return program.initial.copy()
        raise ValueError(
            f"program {program.name!r} has no bundled initial multiset; pass one explicitly"
        )

    # -- to be provided by subclasses ----------------------------------------------
    def _run_block(self, program: GammaProgram, multiset: Multiset, trace: Trace) -> tuple:
        """Run one parallel block in place; return (steps, firings)."""
        raise NotImplementedError


class SequentialEngine(GammaEngine):
    """Deterministic one-firing-per-step engine (reaction declaration order)."""

    name = "sequential"

    def _run_block(self, program: GammaProgram, multiset: Multiset, trace: Trace) -> tuple:
        steps = 0
        firings = 0
        while True:
            if steps >= self.max_steps:
                raise NonTerminationError(
                    f"{self.name} engine exceeded {self.max_steps} steps on {program.name!r}"
                )
            matcher = Matcher(multiset)
            match: Optional[Match] = None
            for reaction in program.reactions:
                match = matcher.find(reaction)
                if match is not None:
                    break
            if match is None:
                return steps, firings
            produced = match.produced()
            multiset.replace(match.consumed, produced)
            step = trace.begin_step()
            trace.record(step, match.reaction.name, match.consumed, produced, match.binding)
            steps += 1
            firings += 1


class ChaoticEngine(GammaEngine):
    """Nondeterministic engine: random enabled (reaction, match) pair per step."""

    name = "chaotic"

    def __init__(self, seed: Optional[int] = None, max_steps: int = DEFAULT_MAX_STEPS) -> None:
        super().__init__(max_steps=max_steps)
        self.seed = seed
        self._rng = random.Random(seed)

    def _run_block(self, program: GammaProgram, multiset: Multiset, trace: Trace) -> tuple:
        steps = 0
        firings = 0
        while True:
            if steps >= self.max_steps:
                raise NonTerminationError(
                    f"{self.name} engine exceeded {self.max_steps} steps on {program.name!r}"
                )
            matcher = Matcher(multiset, rng=self._rng)
            reactions = list(program.reactions)
            self._rng.shuffle(reactions)
            match: Optional[Match] = None
            for reaction in reactions:
                match = matcher.find(reaction)
                if match is not None:
                    break
            if match is None:
                return steps, firings
            produced = match.produced()
            multiset.replace(match.consumed, produced)
            step = trace.begin_step()
            trace.record(step, match.reaction.name, match.consumed, produced, match.binding)
            steps += 1
            firings += 1


class MaxParallelEngine(GammaEngine):
    """Simulated parallel engine: a maximal set of non-conflicting firings per step.

    Conflict detection is on element *occurrences*: two matches conflict when
    together they would consume more copies of some element than the multiset
    holds.  The greedy maximal set is built in randomized order so repeated
    runs with different seeds explore different parallel schedules.
    """

    name = "max-parallel"

    def __init__(self, seed: Optional[int] = None, max_steps: int = DEFAULT_MAX_STEPS) -> None:
        super().__init__(max_steps=max_steps)
        self.seed = seed
        self._rng = random.Random(seed)

    def _collect_step_matches(self, program: GammaProgram, multiset: Multiset) -> List[Match]:
        """Greedy maximal set of mutually compatible matches for one step.

        Matches are enumerated against the step's initial snapshot; a match is
        accepted when the element copies it consumes are still available in
        this step's budget.  The greedy sweep over a full enumeration yields a
        maximal (not necessarily maximum) compatible set, which is what a real
        parallel Gamma machine achieves with local, independent matching.
        """
        matcher = Matcher(multiset, rng=self._rng)
        # Budget of copies still available for consumption in this step.
        available: Dict = dict(multiset.counts())
        remaining = sum(available.values())
        chosen: List[Match] = []
        reactions = list(program.reactions)
        self._rng.shuffle(reactions)
        for reaction in reactions:
            if remaining < reaction.arity:
                continue
            for match in matcher.iter_matches(reaction):
                if remaining < reaction.arity:
                    break
                needed: Dict = {}
                for element in match.consumed:
                    needed[element] = needed.get(element, 0) + 1
                if all(available.get(e, 0) >= c for e, c in needed.items()):
                    for e, c in needed.items():
                        available[e] = available.get(e, 0) - c
                        remaining -= c
                    chosen.append(match)
        return chosen

    def _run_block(self, program: GammaProgram, multiset: Multiset, trace: Trace) -> tuple:
        steps = 0
        firings = 0
        while True:
            if steps >= self.max_steps:
                raise NonTerminationError(
                    f"{self.name} engine exceeded {self.max_steps} steps on {program.name!r}"
                )
            matches = self._collect_step_matches(program, multiset)
            if not matches:
                return steps, firings
            step = trace.begin_step()
            for match in matches:
                produced = match.produced()
                multiset.replace(match.consumed, produced)
                trace.record(step, match.reaction.name, match.consumed, produced, match.binding)
                firings += 1
            steps += 1


_ENGINES = {
    "sequential": SequentialEngine,
    "chaotic": ChaoticEngine,
    "max-parallel": MaxParallelEngine,
}


def run(
    program: ProgramLike,
    initial: Optional[Multiset] = None,
    engine: Union[str, GammaEngine] = "sequential",
    seed: Optional[int] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ExecutionResult:
    """Run a Gamma program with the named engine.

    ``engine`` may be an engine instance or one of ``"sequential"``,
    ``"chaotic"``, ``"max-parallel"``.  ``seed`` is forwarded to the
    nondeterministic engines.
    """
    if isinstance(engine, GammaEngine):
        runner = engine
    else:
        try:
            cls = _ENGINES[engine]
        except KeyError as exc:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {sorted(_ENGINES)}"
            ) from exc
        if cls is SequentialEngine:
            runner = cls(max_steps=max_steps)
        else:
            runner = cls(seed=seed, max_steps=max_steps)
    return runner.run(program, initial)


# Backwards-friendly alias used throughout examples.
run_program = run
