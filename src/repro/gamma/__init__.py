"""The Gamma model: General Abstract Model for Multiset mAnipulation.

Public surface:

* expressions (:mod:`repro.gamma.expr`) used in reaction conditions/actions,
* patterns and templates (:mod:`repro.gamma.pattern`),
* reactions and programs (:mod:`repro.gamma.reaction`, :mod:`repro.gamma.program`),
* execution engines implementing the Γ operator (:mod:`repro.gamma.engine`),
* classic Gamma programs (:mod:`repro.gamma.stdlib`),
* the textual DSL of the paper's Fig. 3 (:mod:`repro.gamma.dsl`).
"""

from .engine import (
    ChaoticEngine,
    ExecutionResult,
    GammaEngine,
    MaxParallelEngine,
    NonTerminationError,
    ParallelEngine,
    SequentialEngine,
    run,
    run_program,
)
from .compiled import (
    CompilationError,
    CompiledMatch,
    CompiledReaction,
    MatchPlan,
    compile_expr,
    compile_reaction,
    evaluate_productions,
)
from .expr import BinOp, BoolOp, Compare, Const, EvaluationError, Expr, Not, Var, const, var
from .matching import Match, Matcher, find_match, iter_matches
from .pattern import Binding, ElementPattern, ElementTemplate, pattern, template
from .program import GammaProgram, SequentialProgram, parallel, sequential
from .reaction import Branch, Reaction
from .scheduler import ReactionScheduler, greedy_disjoint_matches
from .tracer import FiringRecord, StepRecord, Trace
from .vectorized import (
    ColumnarKernel,
    VectorizedReaction,
    columnar_collect,
    vectorized_for,
)

__all__ = [
    # expressions
    "Expr", "Var", "Const", "BinOp", "Compare", "BoolOp", "Not", "var", "const",
    "EvaluationError",
    # patterns
    "ElementPattern", "ElementTemplate", "Binding", "pattern", "template",
    # reactions / programs
    "Reaction", "Branch", "GammaProgram", "SequentialProgram", "parallel", "sequential",
    # matching / scheduling
    "Match", "Matcher", "find_match", "iter_matches",
    "ReactionScheduler", "greedy_disjoint_matches",
    # reaction compilation
    "CompiledReaction", "CompiledMatch", "MatchPlan", "CompilationError",
    "compile_reaction", "compile_expr", "evaluate_productions",
    # engines
    "GammaEngine", "SequentialEngine", "ChaoticEngine", "MaxParallelEngine",
    "ParallelEngine", "ExecutionResult", "NonTerminationError", "run", "run_program",
    # tracing
    "Trace", "StepRecord", "FiringRecord",
    # columnar vectorized kernel
    "VectorizedReaction", "vectorized_for", "ColumnarKernel", "columnar_collect",
]
