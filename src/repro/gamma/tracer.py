"""Execution traces for Gamma runs.

A trace records, step by step, which reaction fired on which elements and what
it produced.  Traces serve three purposes in the reproduction:

* the equivalence checker cross-references Gamma traces with dataflow firing
  logs (each converted reaction firing corresponds to one node firing);
* the parallelism analysis (experiment E9) reads the per-step firing counts
  of the simulated-parallel scheduler to build parallelism profiles;
* the memoization analysis (DF-DTM-style trace reuse, one of the benefits the
  paper cites) detects repeated (reaction, consumed-values) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..multiset.element import Element

__all__ = ["FiringRecord", "StepRecord", "Trace"]


@dataclass(frozen=True)
class FiringRecord:
    """One reaction firing: consumed elements, produced elements, binding."""

    step: int
    reaction: str
    consumed: Tuple[Element, ...]
    produced: Tuple[Element, ...]
    binding: Dict[str, Any] = field(default_factory=dict)

    def signature(self) -> Tuple[str, Tuple[Tuple[Any, str], ...]]:
        """A reuse signature: reaction name plus the (value, label) pairs consumed.

        Tags are deliberately excluded — trace reuse is precisely the
        observation that the same operation over the same values recurs across
        iterations (different tags).
        """
        return (self.reaction, tuple((e.value, e.label) for e in self.consumed))


@dataclass
class StepRecord:
    """All firings applied in one scheduler step (1 for sequential schedulers)."""

    step: int
    firings: List[FiringRecord] = field(default_factory=list)

    @property
    def width(self) -> int:
        """Number of reactions fired simultaneously in this step."""
        return len(self.firings)


class Trace:
    """A whole-run trace."""

    def __init__(self) -> None:
        self.steps: List[StepRecord] = []

    # -- recording ------------------------------------------------------------
    def begin_step(self) -> StepRecord:
        record = StepRecord(step=len(self.steps))
        self.steps.append(record)
        return record

    def record(
        self,
        step: StepRecord,
        reaction: str,
        consumed: Sequence[Element],
        produced: Sequence[Element],
        binding: Optional[Dict[str, Any]] = None,
    ) -> FiringRecord:
        firing = FiringRecord(
            step=step.step,
            reaction=reaction,
            consumed=tuple(consumed),
            produced=tuple(produced),
            binding=dict(binding or {}),
        )
        step.firings.append(firing)
        return firing

    # -- queries ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_firings(self) -> int:
        return sum(len(s.firings) for s in self.steps)

    def firings(self) -> List[FiringRecord]:
        """All firings in order."""
        out: List[FiringRecord] = []
        for step in self.steps:
            out.extend(step.firings)
        return out

    def firings_of(self, reaction: str) -> List[FiringRecord]:
        """All firings of a particular reaction."""
        return [f for f in self.firings() if f.reaction == reaction]

    def parallelism_profile(self) -> List[int]:
        """Reactions fired per step (the Gamma-side parallelism profile)."""
        return [s.width for s in self.steps if s.width > 0]

    def max_parallelism(self) -> int:
        profile = self.parallelism_profile()
        return max(profile) if profile else 0

    def average_parallelism(self) -> float:
        profile = self.parallelism_profile()
        if not profile:
            return 0.0
        return sum(profile) / len(profile)

    def firing_counts(self) -> Dict[str, int]:
        """Reaction name -> number of firings."""
        counts: Dict[str, int] = {}
        for firing in self.firings():
            counts[firing.reaction] = counts.get(firing.reaction, 0) + 1
        return counts

    def reuse_statistics(self) -> Dict[str, int]:
        """Counts for the trace-reuse analysis.

        Returns a dict with ``total`` firings, ``unique`` signatures and
        ``reusable`` (= total - unique) firings that a DF-DTM-style
        memoization cache would have skipped.
        """
        signatures = [f.signature() for f in self.firings()]
        unique = len(set(signatures))
        total = len(signatures)
        return {"total": total, "unique": unique, "reusable": total - unique}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace(steps={self.num_steps}, firings={self.num_firings})"
