"""repro — executable equivalence between dynamic dataflow and Gamma.

Reproduction of Mello Jr. et al., *Exploring the Equivalence between Dynamic
Dataflow Model and Gamma — General Abstract Model for Multiset mAnipulation*
(IPPS 2019 / arXiv:1811.00607).

The package provides:

* :mod:`repro.multiset`  — tagged elements and counted multisets,
* :mod:`repro.gamma`     — the Gamma model (reactions, programs, engines, DSL),
* :mod:`repro.dataflow`  — the dynamic dataflow model (graphs, tagged tokens, interpreter),
* :mod:`repro.frontend`  — a small imperative language compiled to dataflow graphs,
* :mod:`repro.core`      — the paper's contribution: the conversion algorithms
  (dataflow → Gamma, Gamma → dataflow), reductions and the equivalence checker,
* :mod:`repro.runtime`   — simulated parallel runtimes (multi-PE dataflow simulator,
  parallel Gamma scheduler, distributed multiset),
* :mod:`repro.analysis`  — parallelism / granularity / memoization analyses,
* :mod:`repro.workloads` — workload generators for the benchmark harness,
* :mod:`repro.api`       — the unified configuration surface
  (:class:`~repro.api.RuntimeConfig`) and one-stop entry-point facade.
"""

__version__ = "1.0.0"

__all__ = [
    "multiset",
    "gamma",
    "dataflow",
    "frontend",
    "core",
    "runtime",
    "analysis",
    "workloads",
    "api",
]
