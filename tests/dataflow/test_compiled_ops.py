"""Tests for the compiled dataflow node kernels and emit plans."""

import pytest

from repro.dataflow import (
    ArithmeticNode,
    ComparisonNode,
    CompiledGraphOps,
    CopyNode,
    DataflowGraph,
    IncTagNode,
    RootNode,
    SteerNode,
    compile_node,
    run_graph,
)
from repro.dataflow.nodes import Node
from repro.workloads import (
    EXAMPLE1_DEFAULTS,
    EXAMPLE2_DEFAULTS,
    example1_graph,
    example2_graph,
)


class TestKernels:
    @pytest.mark.parametrize(
        "node,inputs,expected",
        [
            (ArithmeticNode("n", op="+"), {"a": 2, "b": 3}, {"out": 5}),
            (ArithmeticNode("n", op="-", immediate=("right", 1)), {"in": 7}, {"out": 6}),
            (ArithmeticNode("n", op="-", immediate=("left", 10)), {"in": 7}, {"out": 3}),
            (ArithmeticNode("n", op="/"), {"a": 7, "b": -2}, {"out": -3}),
            (ComparisonNode("n", op=">"), {"a": 2, "b": 3}, {"out": 0}),
            (ComparisonNode("n", op=">", immediate=("right", 0)), {"in": 4}, {"out": 1}),
            (SteerNode("n"), {"data": 9, "control": 1}, {"true": 9}),
            (SteerNode("n"), {"data": 9, "control": False}, {"false": 9}),
            (IncTagNode("n"), {"in": 5}, {"out": 5}),
            (CopyNode("n"), {"in": 5}, {"out": 5}),
            (RootNode("n", value=3), {}, {"out": 3}),
        ],
    )
    def test_kernel_equals_compute(self, node, inputs, expected):
        kernel = compile_node(node)
        assert kernel(inputs) == expected
        assert kernel(inputs) == node.compute(inputs)

    def test_steer_error_message_matches_compute(self):
        node = SteerNode("S1")
        kernel = compile_node(node)
        with pytest.raises(ValueError) as compiled_err:
            kernel({"data": 1, "control": 7})
        with pytest.raises(ValueError) as interpreted_err:
            node.compute({"data": 1, "control": 7})
        assert str(compiled_err.value) == str(interpreted_err.value)

    def test_unknown_node_kind_falls_back_to_compute(self):
        class Doubler(Node):
            @property
            def kind(self):
                return "doubler"

            def input_ports(self):
                return ("in",)

            def output_ports(self):
                return ("out",)

            def compute(self, inputs):
                return {"out": inputs["in"] * 2}

        node = Doubler("D1")
        kernel = compile_node(node)
        assert kernel == node.compute  # the bound method itself, not a wrapper
        assert kernel({"in": 4}) == {"out": 8}


class TestCompiledGraphOps:
    def test_emit_adjacency_matches_graph(self):
        graph = example2_graph()
        ops = CompiledGraphOps(graph)
        for node in graph.nodes:
            for port in node.output_ports():
                assert list(ops.emit_edges(node.node_id, port)) == graph.out_edges(
                    node.node_id, port
                )

    def test_missing_port_yields_empty_tuple(self):
        graph = DataflowGraph("g")
        graph.add_node(RootNode("r", value=1))
        ops = CompiledGraphOps(graph)
        assert ops.emit_edges("r", "nonexistent") == ()

    def test_tag_deltas(self):
        graph = example2_graph()
        ops = CompiledGraphOps(graph)
        for node in graph.nodes:
            assert ops.tag_delta[node.node_id] == node.tag_delta()


class TestInterpreterEquivalence:
    @pytest.mark.parametrize("policy", ["fifo", "lifo", "random"])
    @pytest.mark.parametrize(
        "factory,defaults",
        [(example1_graph, EXAMPLE1_DEFAULTS), (example2_graph, EXAMPLE2_DEFAULTS)],
    )
    def test_compiled_run_identical_to_interpreted(self, policy, factory, defaults):
        graph = factory()
        compiled = run_graph(graph, policy=policy, seed=5, compiled=True)
        interpreted = run_graph(graph, policy=policy, seed=5, compiled=False)
        assert compiled.outputs == interpreted.outputs
        assert compiled.total_firings == interpreted.total_firings
        assert compiled.firings == interpreted.firings  # full event-by-event log

    def test_simulator_equivalence(self):
        from repro.runtime.df_simulator import DataflowSimulator

        graph = example2_graph()
        fast = DataflowSimulator(graph, num_pes=2, seed=3, compiled=True).run()
        base = DataflowSimulator(graph, num_pes=2, seed=3, compiled=False).run()
        assert fast.outputs == base.outputs
        assert fast.steps == base.steps
        assert fast.total_firings == base.total_firings
