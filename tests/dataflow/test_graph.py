"""Unit tests for the dataflow graph structure and builder."""

import pytest

from repro.dataflow import DataflowGraph, GraphBuilder, GraphError
from repro.dataflow.nodes import ArithmeticNode, RootNode, SteerNode
from repro.workloads.paper_examples import example1_graph, example2_graph


class TestGraphConstruction:
    def test_duplicate_node_ids_rejected(self):
        g = DataflowGraph()
        g.add_node(RootNode("a", value=1))
        with pytest.raises(GraphError):
            g.add_node(RootNode("a", value=2))

    def test_edge_requires_known_nodes(self):
        g = DataflowGraph()
        g.add_node(RootNode("a", value=1))
        with pytest.raises(GraphError):
            g.add_edge("a", "missing", "L")
        with pytest.raises(GraphError):
            g.add_edge("missing", None, "L")

    def test_edge_port_defaults_and_validation(self):
        g = DataflowGraph()
        g.add_node(RootNode("a", value=1))
        g.add_node(ArithmeticNode("op", op="+"))
        # Two-input node requires an explicit destination port.
        with pytest.raises(GraphError):
            g.add_edge("a", "op", "L")
        g.add_edge("a", "op", "L", dst_port="a")
        with pytest.raises(GraphError):
            g.add_edge("a", "op", "M", dst_port="nope")

    def test_duplicate_labels_rejected(self):
        g = DataflowGraph()
        g.add_node(RootNode("a", value=1))
        g.add_node(RootNode("b", value=2))
        g.add_edge("a", None, "L")
        with pytest.raises(GraphError):
            g.add_edge("b", None, "L")

    def test_dangling_edge_is_output(self):
        g = DataflowGraph()
        g.add_node(RootNode("a", value=1))
        edge = g.add_edge("a", None, "out")
        assert edge.is_output
        assert g.output_labels() == ["out"]

    def test_fresh_label(self):
        g = DataflowGraph()
        g.add_node(RootNode("a", value=1))
        g.add_edge("a", None, "E0")
        assert g.fresh_label() not in g.labels()


class TestGraphQueries:
    def test_example1_structure(self):
        g = example1_graph()
        assert len(g) == 7
        assert g.counts_by_kind() == {"root": 4, "arith": 3}
        assert {e.label for e in g.initial_edges()} == {"A1", "B1", "C1", "D1"}
        assert g.output_labels() == ["m"]
        assert not g.has_cycle()

    def test_example1_topology(self):
        g = example1_graph()
        order = g.topological_order()
        assert order.index("R1") < order.index("R3")
        assert order.index("R2") < order.index("R3")
        assert g.producers("R3") == ["R1", "R2"]
        assert g.consumers("R1") == ["R3"]

    def test_example2_structure(self):
        g = example2_graph()
        counts = g.counts_by_kind()
        assert counts["inctag"] == 3
        assert counts["steer"] == 3
        assert counts["cmp"] == 1
        assert counts["arith"] == 2
        assert g.has_cycle()

    def test_example2_topological_order_raises_on_cycle(self):
        with pytest.raises(GraphError):
            example2_graph().topological_order()

    def test_edge_lookup_by_label(self):
        g = example1_graph()
        edge = g.edge_by_label("B2")
        assert edge.src == "R1" and edge.dst == "R3"
        with pytest.raises(GraphError):
            g.edge_by_label("nope")

    def test_in_out_edges_by_port(self):
        g = example2_graph()
        steer_in = g.in_edges("R16", "control")
        assert len(steer_in) == 1
        assert steer_in[0].label == "B15"
        r12_out = g.out_edges("R12")
        assert {e.label for e in r12_out} == {"B12", "B13"}


class TestBuilder:
    def test_expression_building(self):
        b = GraphBuilder("t")
        x = b.root(2, "x")
        y = b.root(3, "y")
        out = b.mul(b.add(x, y), y)
        b.output(out, "r")
        g = b.build()
        assert g.counts_by_kind() == {"root": 2, "arith": 2}

    def test_operand_must_be_ref(self):
        b = GraphBuilder("t")
        x = b.root(2, "x")
        with pytest.raises(TypeError):
            b.add(x, 3)
        with pytest.raises(TypeError):
            b.output(3, "r")

    def test_steer_returns_both_ports(self):
        b = GraphBuilder("t")
        d = b.root(1, "d")
        c = b.root(1, "c")
        t, f = b.steer(d, c)
        assert t.port == "true" and f.port == "false"

    def test_explicit_node_ids_and_labels(self):
        b = GraphBuilder("t")
        x = b.root(1, "x", node_id="x")
        y = b.root(2, "y", node_id="y")
        b.add(x, y, node_id="R1", labels=("A1", "B1"))
        g = b.build()
        assert g.has_node("R1")
        assert g.has_label("A1") and g.has_label("B1")

    def test_unique_generated_ids(self):
        b = GraphBuilder("t")
        refs = [b.root(i) for i in range(5)]
        assert len({r.node_id for r in refs}) == 5
