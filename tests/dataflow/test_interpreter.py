"""Tests for the tagged-token matching store and the firing-rule interpreter."""

import pytest

from repro.dataflow import (
    DataflowInterpreter,
    GraphBuilder,
    Token,
    TokenStore,
    run_graph,
)
from repro.workloads.paper_examples import (
    example1_expected_result,
    example1_graph,
    example2_expected_result,
    example2_graph,
)


class TestTokenStore:
    def make_graph(self):
        b = GraphBuilder("t")
        x = b.root(1, "x", node_id="x")
        y = b.root(2, "y", node_id="y")
        b.add(x, y, node_id="add")
        return b.build()

    def test_partial_operands_not_ready(self):
        g = self.make_graph()
        store = TokenStore(g)
        store.deposit("add", "a", Token(1, 0))
        assert not store.has_ready()
        store.deposit("add", "b", Token(2, 0))
        assert store.is_ready("add", 0)

    def test_tag_mismatch_not_ready(self):
        g = self.make_graph()
        store = TokenStore(g)
        store.deposit("add", "a", Token(1, 0))
        store.deposit("add", "b", Token(2, 1))
        assert not store.has_ready()
        assert store.pending_tokens() == 2
        assert store.waiting_tags("add") == [0, 1]

    def test_consume_returns_operands(self):
        g = self.make_graph()
        store = TokenStore(g)
        store.deposit("add", "a", Token(1, 0))
        store.deposit("add", "b", Token(2, 0))
        assert store.consume("add", 0) == {"a": 1, "b": 2}
        assert not store.has_ready()
        assert store.pending_tokens() == 0

    def test_consume_unready_raises(self):
        store = TokenStore(self.make_graph())
        with pytest.raises(KeyError):
            store.consume("add", 0)

    def test_queued_tokens_on_same_port(self):
        g = self.make_graph()
        store = TokenStore(g)
        store.deposit("add", "a", Token(1, 0))
        store.deposit("add", "a", Token(5, 0))
        store.deposit("add", "b", Token(2, 0))
        assert store.consume("add", 0) == {"a": 1, "b": 2}
        # The queued second token is still waiting for a matching b.
        assert store.pending_tokens() == 1

    def test_unknown_port_rejected(self):
        store = TokenStore(self.make_graph())
        with pytest.raises(ValueError):
            store.deposit("add", "zzz", Token(1, 0))


class TestInterpreter:
    def test_example1_result(self):
        result = run_graph(example1_graph())
        assert result.single_output("m") == example1_expected_result()
        # 4 roots + 3 operations.
        assert result.total_firings == 7

    @pytest.mark.parametrize("policy", ["fifo", "lifo", "random"])
    def test_firing_order_does_not_change_results(self, policy):
        result = run_graph(example2_graph(), policy=policy, seed=123)
        assert result.single_output("Cout") == example2_expected_result()

    @pytest.mark.parametrize("y,z,x", [(2, 3, 10), (5, 0, 7), (1, 10, 0), (3, 7, -2)])
    def test_example2_parameter_sweep(self, y, z, x):
        result = run_graph(example2_graph(y, z, x))
        assert result.single_output("Cout") == example2_expected_result(y, z, x)

    def test_root_values_override(self):
        g = example1_graph()
        result = run_graph(g, root_values={"x": 10, "y": 20, "k": 1, "j": 1})
        assert result.single_output("m") == 29

    def test_root_values_unknown_root_rejected(self):
        with pytest.raises(ValueError):
            run_graph(example1_graph(), root_values={"zzz": 1})

    def test_firing_events_recorded(self):
        result = run_graph(example1_graph())
        kinds = [f.kind for f in result.firings]
        assert kinds.count("root") == 4
        assert kinds.count("arith") == 3
        # Reuse signatures ignore tags.
        stats = result.reuse_statistics()
        assert stats["total"] == 7

    def test_single_output_requires_exactly_one_token(self):
        result = run_graph(example1_graph())
        with pytest.raises(ValueError):
            result.single_output("nonexistent")

    def test_outputs_as_multiset(self):
        result = run_graph(example1_graph())
        ms = result.outputs_as_multiset()
        assert ms.to_tuples() == [(example1_expected_result(), "m", 0)]

    def test_interpreter_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            DataflowInterpreter(example1_graph(), policy="zigzag")

    def test_loop_iteration_tags_increase(self):
        result = run_graph(example2_graph(y=1, z=4, x=0))
        token = result.outputs["Cout"][0]
        # Exit token is produced at tag z+1 (one inctag per iteration plus the exit check).
        assert token.tag == 5

    def test_firing_counts_per_node(self):
        result = run_graph(example2_graph(y=1, z=3, x=0))
        counts = result.firing_counts()
        # The comparison runs once per iteration plus the exit check.
        assert counts["R14"] == 4
        # The loop body adder runs once per iteration.
        assert counts["R19"] == 3
