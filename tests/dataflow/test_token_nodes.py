"""Unit tests for tagged tokens and the node taxonomy."""

import pytest

from repro.dataflow.nodes import (
    PORT_FALSE,
    PORT_TRUE,
    ArithmeticNode,
    ComparisonNode,
    CopyNode,
    IncTagNode,
    RootNode,
    SteerNode,
)
from repro.dataflow.token import INITIAL_TAG, Token


class TestToken:
    def test_fields_and_defaults(self):
        token = Token(5)
        assert token.value == 5
        assert token.tag == INITIAL_TAG

    def test_tag_validation(self):
        with pytest.raises(ValueError):
            Token(1, -1)
        with pytest.raises(TypeError):
            Token(1, "x")
        with pytest.raises(TypeError):
            Token(1, True)

    def test_transformations(self):
        token = Token(5, 2)
        assert token.with_value(9) == Token(9, 2)
        assert token.with_tag(4) == Token(5, 4)
        assert token.inc_tag() == Token(5, 3)
        assert token.inc_tag(2) == Token(5, 4)


class TestRootNode:
    def test_compute_emits_value(self):
        node = RootNode("x", value=7, name="x")
        assert node.compute({}) == {"out": 7}
        assert node.is_root
        assert node.input_ports() == ()
        assert node.output_ports() == ("out",)


class TestArithmeticNode:
    @pytest.mark.parametrize("op,expected", [("+", 10), ("-", 4), ("*", 21), ("%", 1)])
    def test_binary_ops(self, op, expected):
        node = ArithmeticNode("n", op=op)
        assert node.compute({"a": 7, "b": 3}) == {"out": expected}

    def test_division_truncates_toward_zero(self):
        node = ArithmeticNode("n", op="/")
        assert node.compute({"a": 7, "b": 2}) == {"out": 3}
        assert node.compute({"a": -7, "b": 2}) == {"out": -3}

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ArithmeticNode("n", op="/").compute({"a": 1, "b": 0})

    def test_immediate_right(self):
        node = ArithmeticNode("n", op="-", immediate=("right", 1))
        assert node.input_ports() == ("in",)
        assert node.compute({"in": 5}) == {"out": 4}

    def test_immediate_left(self):
        node = ArithmeticNode("n", op="-", immediate=("left", 10))
        assert node.compute({"in": 3}) == {"out": 7}

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ArithmeticNode("n", op="**")

    def test_bad_immediate_side_rejected(self):
        with pytest.raises(ValueError):
            ArithmeticNode("n", op="+", immediate=("middle", 1))


class TestComparisonNode:
    def test_produces_zero_or_one(self):
        node = ComparisonNode("n", op=">")
        assert node.compute({"a": 5, "b": 3}) == {"out": 1}
        assert node.compute({"a": 2, "b": 3}) == {"out": 0}

    def test_immediate_comparison(self):
        node = ComparisonNode("n", op=">", immediate=("right", 0))
        assert node.compute({"in": 3}) == {"out": 1}
        assert node.compute({"in": 0}) == {"out": 0}


class TestSteerNode:
    def test_routes_by_control(self):
        node = SteerNode("st")
        assert node.compute({"data": 42, "control": 1}) == {PORT_TRUE: 42}
        assert node.compute({"data": 42, "control": 0}) == {PORT_FALSE: 42}

    def test_accepts_booleans(self):
        node = SteerNode("st")
        assert node.compute({"data": 1, "control": True}) == {PORT_TRUE: 1}

    def test_rejects_non_boolean_control(self):
        with pytest.raises(ValueError):
            SteerNode("st").compute({"data": 1, "control": 7})

    def test_ports(self):
        node = SteerNode("st")
        assert node.input_ports() == ("data", "control")
        assert node.output_ports() == (PORT_TRUE, PORT_FALSE)


class TestIncTagAndCopy:
    def test_inctag_forwards_value_and_shifts_tag(self):
        node = IncTagNode("it")
        assert node.compute({"in": 9}) == {"out": 9}
        assert node.tag_delta() == 1
        assert IncTagNode("it2", delta=3).tag_delta() == 3

    def test_copy(self):
        node = CopyNode("cp")
        assert node.compute({"in": 11}) == {"out": 11}
        assert node.tag_delta() == 0

    def test_describe_strings(self):
        assert "inctag" in IncTagNode("it").describe() or "it" in IncTagNode("it").describe()
        assert "root" in RootNode("r", value=1).describe()
        assert "+" in ArithmeticNode("a", op="+").describe()
