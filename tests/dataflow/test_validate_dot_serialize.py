"""Tests for graph validation, DOT export and JSON serialization."""

import json

import pytest

from repro.dataflow import DataflowGraph, GraphBuilder, run_graph, validate_graph
from repro.dataflow.dot import to_dot, write_dot
from repro.dataflow.nodes import ArithmeticNode, IncTagNode, RootNode
from repro.dataflow.serialize import dumps, graph_from_dict, graph_to_dict, load, loads, save
from repro.workloads.paper_examples import example1_graph, example2_graph


class TestValidation:
    def test_paper_examples_are_valid(self):
        assert validate_graph(example1_graph()).ok
        assert validate_graph(example2_graph()).ok

    def test_missing_operand_edge_is_an_error(self):
        g = DataflowGraph()
        g.add_node(RootNode("x", value=1))
        g.add_node(ArithmeticNode("op", op="+"))
        g.add_edge("x", "op", "L", dst_port="a")  # port 'b' left unconnected
        report = validate_graph(g)
        assert not report.ok
        assert any("b" in issue.message for issue in report.errors)
        with pytest.raises(ValueError):
            report.raise_if_errors()

    def test_empty_graph_is_an_error(self):
        assert not validate_graph(DataflowGraph()).ok

    def test_graph_without_roots_is_an_error(self):
        g = DataflowGraph()
        g.add_node(IncTagNode("it"))
        report = validate_graph(g)
        assert any("root" in issue.message for issue in report.errors)

    def test_cycle_without_inctag_is_an_error(self):
        b = GraphBuilder("bad")
        x = b.root(1, "x")
        add = b.arith_imm("+", x, 1, node_id="add")
        # Back-edge without an inctag: iterations would share tags.
        b.connect_to_node(add, "add", "in")
        report = validate_graph(b.build())
        assert not report.ok
        assert any("inctag" in issue.message for issue in report.errors)

    def test_unused_root_is_a_warning_not_error(self):
        b = GraphBuilder("warn")
        b.root(1, "unused")
        x = b.root(2, "x")
        b.output(b.arith_imm("+", x, 1), "r")
        report = validate_graph(b.build())
        assert report.ok
        assert report.warnings

    def test_no_outputs_is_a_warning(self):
        b = GraphBuilder("warn2")
        x = b.root(1, "x")
        b.arith_imm("+", x, 1)
        report = validate_graph(b.build())
        assert report.ok
        assert any("output" in w.message for w in report.warnings)


class TestDotExport:
    def test_contains_every_node_and_label(self):
        g = example2_graph()
        dot = to_dot(g)
        for node in g.nodes:
            assert node.node_id in dot
        for label in ("A1", "B12", "Cout"):
            assert label in dot

    def test_shapes_follow_paper_conventions(self):
        dot = to_dot(example2_graph())
        assert "shape=diamond" in dot  # inctag
        assert "shape=triangle" in dot  # steer
        assert "shape=box" in dot  # roots

    def test_write_dot_to_path(self, tmp_path):
        path = tmp_path / "g.dot"
        write_dot(example1_graph(), path)
        assert path.read_text().startswith("digraph")


class TestSerialization:
    def test_round_trip_structure(self):
        g = example2_graph()
        restored = graph_from_dict(graph_to_dict(g))
        assert restored.counts_by_kind() == g.counts_by_kind()
        assert sorted(restored.labels()) == sorted(g.labels())

    def test_round_trip_behaviour(self):
        g = example2_graph(y=4, z=5, x=2)
        restored = loads(dumps(g))
        assert run_graph(restored).single_output("Cout") == run_graph(g).single_output("Cout")

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "graph.json"
        save(example1_graph(), path)
        restored = load(path)
        assert run_graph(restored).single_output("m") == 0

    def test_json_is_plain_data(self):
        data = json.loads(dumps(example1_graph()))
        assert data["schema"] == 1
        assert {n["kind"] for n in data["nodes"]} == {"root", "arith"}

    def test_unknown_schema_rejected(self):
        data = graph_to_dict(example1_graph())
        data["schema"] = 99
        with pytest.raises(Exception):
            graph_from_dict(data)
