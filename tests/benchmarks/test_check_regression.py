"""Unit tests for the CI bench-gate comparator (benchmarks/check_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
sys.modules["check_regression"] = check_regression
_SPEC.loader.exec_module(check_regression)


def payload(results=(), speedups=None):
    out = {"schema_version": 1, "experiment": "x", "results": list(results)}
    if speedups is not None:
        out["speedups"] = speedups
    return out


def record(size, sps):
    return {"workload": "w", "engine": "e", "mode": "m", "size": size,
            "steps_per_second": sps}


class TestComparePayloads:
    def test_matching_records_within_tolerance_pass(self):
        findings = check_regression.compare_payloads(
            "BENCH_x",
            payload([record(100, 1000.0)]),
            payload([record(100, 900.0)]),
            tolerance=0.25,
        )
        assert len(findings) == 1
        assert not findings[0].regressed

    def test_regression_beyond_tolerance_flags(self):
        findings = check_regression.compare_payloads(
            "BENCH_x",
            payload([record(100, 1000.0)]),
            payload([record(100, 700.0)]),
            tolerance=0.25,
        )
        assert findings[0].regressed

    def test_tolerance_is_configurable(self):
        base, fresh = payload([record(100, 1000.0)]), payload([record(100, 700.0)])
        lenient = check_regression.compare_payloads("b", base, fresh, tolerance=0.5)
        assert not lenient[0].regressed

    def test_unmatched_records_are_skipped(self):
        findings = check_regression.compare_payloads(
            "BENCH_x",
            payload([record(100_000, 1000.0)]),  # full-mode baseline size
            payload([record(100, 900.0)]),       # fast-mode fresh size
            tolerance=0.25,
        )
        assert findings == []

    def test_throughput_derived_from_seconds_per_step(self):
        base = payload([{"workload": "w", "size": 1, "seconds_per_step": 0.001}])
        fresh = payload([{"workload": "w", "size": 1, "seconds_per_step": 0.002}])
        findings = check_regression.compare_payloads("b", base, fresh, 0.25)
        assert findings[0].regressed  # 2x slower
        assert findings[0].baseline == pytest.approx(1000.0)

    def test_speedup_ratios_compared(self):
        base = payload(speedups={"w@100": 4.0})
        fresh = payload(speedups={"w@100": 2.0})
        findings = check_regression.compare_payloads("b", base, fresh, 0.25)
        assert findings == [findings[0]]
        assert findings[0].kind == "speedup" and findings[0].regressed

    def test_faster_is_never_a_regression(self):
        findings = check_regression.compare_payloads(
            "b",
            payload([record(1, 100.0)], speedups={"k": 1.0}),
            payload([record(1, 500.0)], speedups={"k": 9.0}),
            tolerance=0.0,
        )
        assert not any(f.regressed for f in findings)


class TestCompareDirectories:
    def _write(self, directory, name, data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(data))

    def test_new_reports_and_missing_counterparts_are_notes(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(base, "BENCH_old.json", payload([record(1, 10.0)]))
        self._write(fresh, "BENCH_new.json", payload([record(1, 10.0)]))
        findings, notes = check_regression.compare_directories(base, fresh, 0.25)
        assert findings == []
        assert any("BENCH_new.json" in n for n in notes)
        assert any("BENCH_old.json" in n for n in notes)

    def test_matched_reports_are_compared(self, tmp_path):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(base, "BENCH_a.json", payload([record(1, 100.0)]))
        self._write(fresh, "BENCH_a.json", payload([record(1, 10.0)]))
        findings, _ = check_regression.compare_directories(base, fresh, 0.25)
        assert len(findings) == 1 and findings[0].regressed


class TestMain:
    def _write(self, directory, name, data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(data))

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(base, "BENCH_a.json", payload([record(1, 100.0)]))
        self._write(fresh, "BENCH_a.json", payload([record(1, 101.0)]))
        assert check_regression.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        ) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(base, "BENCH_a.json", payload([record(1, 100.0)]))
        self._write(fresh, "BENCH_a.json", payload([record(1, 10.0)]))
        assert check_regression.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        ) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_tolerance_env_override(self, tmp_path, monkeypatch):
        base, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(base, "BENCH_a.json", payload([record(1, 100.0)]))
        self._write(fresh, "BENCH_a.json", payload([record(1, 50.0)]))
        monkeypatch.setenv(check_regression.TOLERANCE_ENV, "0.9")
        assert check_regression.main(
            ["--baseline", str(base), "--fresh", str(fresh)]
        ) == 0


def sharded_record(backend, size, fps, shards=4):
    return {
        "workload": "min_element",
        "backend": backend,
        "mode": "distributed",
        "size": size,
        "shards": shards,
        "firings_per_second": fps,
    }


class TestShardedRuntimeRecordShape:
    """The gate accepts BENCH_sharded_runtime.json records keyed by backend+shards."""

    def test_backend_and_shards_key_the_identity(self):
        base = payload(
            [sharded_record("legacy", 100, 1000.0), sharded_record("inprocess", 100, 5000.0)]
        )
        fresh = payload(
            [sharded_record("legacy", 100, 990.0), sharded_record("inprocess", 100, 4900.0)]
        )
        findings = check_regression.compare_payloads("BENCH_sharded_runtime", base, fresh, 0.25)
        assert len(findings) == 2
        assert {f.key for f in findings} == {
            "workload=min_element, mode=distributed, backend=legacy, size=100, shards=4",
            "workload=min_element, mode=distributed, backend=inprocess, size=100, shards=4",
        }
        assert not any(f.regressed for f in findings)

    def test_different_shard_counts_never_cross_match(self):
        base = payload([sharded_record("inprocess", 100, 5000.0, shards=4)])
        fresh = payload([sharded_record("inprocess", 100, 10.0, shards=8)])
        findings = check_regression.compare_payloads("BENCH_sharded_runtime", base, fresh, 0.25)
        assert findings == []  # unmatched identity: noted, never failed

    def test_sharded_speedup_regression_flags(self):
        base = payload([], speedups={"min_element@10000": 5.9})
        fresh = payload([], speedups={"min_element@10000": 1.5})
        findings = check_regression.compare_payloads("BENCH_sharded_runtime", base, fresh, 0.25)
        assert len(findings) == 1 and findings[0].regressed

    def test_committed_sharded_report_parses_through_the_gate(self):
        reports = Path(__file__).resolve().parents[2] / "benchmarks" / "reports"
        path = reports / "BENCH_sharded_runtime.json"
        if not path.exists():
            pytest.skip("no committed sharded baseline yet")
        report = json.loads(path.read_text())
        findings = check_regression.compare_payloads(
            "BENCH_sharded_runtime", report, report, 0.25
        )
        # Self-comparison: every record matches itself, nothing regresses.
        assert findings and not any(f.regressed for f in findings)
        keys = {check_regression.record_key(r) for r in report["results"]}
        assert len(keys) == len(report["results"])  # identities are unique
