"""End-to-end integration tests crossing every subsystem.

These are the scenarios a downstream user of the library would run: imperative
source → dataflow graph → Gamma code (text) → parsed back → executed on the
parallel simulators and the distributed runtime, with equivalence checked at
every hop.
"""

import pytest

from repro.analysis import compare_parallelism, run_with_memoization
from repro.core import (
    check_dataflow_vs_gamma,
    dataflow_to_gamma,
    execute_via_dataflow,
    reduce_program,
)
from repro.dataflow import run_graph, validate_graph
from repro.dataflow.serialize import dumps, loads
from repro.frontend import compile_source_to_graph
from repro.gamma import run
from repro.gamma.dsl import compile_source, format_program
from repro.runtime import DistributedGammaRuntime, simulate_graph, simulate_program
from repro.workloads import make_workload
from repro.api import RuntimeConfig


SOURCE = """
int y = 3; int z = 6; int x = 2;
for (i = z; i > 0; i--) { x = x + y; }
output x;
"""
EXPECTED = 2 + 6 * 3


class TestSourceToEverything:
    def test_full_pipeline(self):
        # 1. imperative source -> dataflow graph
        graph = compile_source_to_graph(SOURCE, name="pipeline")
        assert validate_graph(graph).ok
        assert run_graph(graph).single_output("x") == EXPECTED

        # 2. Algorithm 1 -> Gamma program, executed by all engines
        conversion = dataflow_to_gamma(graph)
        report = check_dataflow_vs_gamma(graph, seeds=(0, 1), conversion=conversion)
        assert report.passed, report.summary()

        # 3. Gamma program -> textual Gamma code -> parsed back -> same result
        text = format_program(conversion.program)
        reparsed = compile_source(text)
        assert run(reparsed, config=RuntimeConfig(engine="chaotic", seed=4)).final.values_with_label("x") == [EXPECTED]

        # 4. Algorithm 2 + Fig. 4 instancing: execute the Gamma program through
        #    replicated dataflow graphs only
        emulated = execute_via_dataflow(conversion.program, conversion.initial, seed=2)
        assert emulated.final.values_with_label("x") == [EXPECTED]

        # 5. Parallel simulators agree on work and steps
        comparison = compare_parallelism(graph, num_pes=4, seed=0)
        assert comparison.profiles_match

        # 6. Reduction keeps the observable result
        reduced = reduce_program(conversion.program)
        result = run(reduced.program, conversion.initial, config=RuntimeConfig(engine="chaotic", seed=1))
        assert result.final.values_with_label("x") == [EXPECTED]

        # 7. Serialization round-trips the graph
        assert run_graph(loads(dumps(graph))).single_output("x") == EXPECTED

    def test_memoization_on_pipeline_program(self):
        graph = compile_source_to_graph(SOURCE)
        conversion = dataflow_to_gamma(graph)
        memoized = run_with_memoization(conversion.program, conversion.initial)
        assert memoized.final.values_with_label("x") == [EXPECTED]
        assert memoized.replayed > 0  # adding the same constant every iteration

    def test_distributed_execution_of_converted_program(self):
        workload = make_workload("sum_reduction", size=24, seed=9)
        distributed = DistributedGammaRuntime(workload.program, 4, config=RuntimeConfig(seed=1)).run(workload.initial)
        assert sorted(distributed.values_with_label("x")) == workload.expected_sorted()

    def test_simulators_match_reference_results(self):
        graph = compile_source_to_graph(SOURCE)
        df = simulate_graph(graph, num_pes=3, seed=7)
        assert df.output_values("x") == [EXPECTED]
        conversion = dataflow_to_gamma(graph)
        gamma = simulate_program(conversion.program, conversion.initial, num_pes=3, config=RuntimeConfig(seed=7))
        assert gamma.final.values_with_label("x") == [EXPECTED]
