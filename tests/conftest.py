"""Shared fixtures: backend/engine parametrization and frequently used programs.

The parametrized ``engine_name`` / ``backend`` fixtures are the single
source of backend sweeps for the unit-test suites (``tests/gamma``,
``tests/core``, ``tests/runtime``) — tests take the fixture instead of
copy-pasting ``@pytest.mark.parametrize`` lists, so a new engine or
distributed backend lands in every sweep by editing this file alone.  (The
property suites sample backends inside their Hypothesis strategies — see
``tests/properties/generators.py`` — because function-scoped fixtures and
``@given`` don't mix.)
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.gamma.stdlib import sum_reduction, values_multiset
from repro.workloads.paper_examples import example1_graph, example2_graph

#: True when the preferred ``fork`` start method exists (multiprocessing
#: backends are skipped elsewhere).
FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

#: The single-process scheduling-policy engines accepted by ``run(engine=...)``.
ENGINE_NAMES = ("sequential", "chaotic", "max-parallel")

#: Distributed backends accepted by ``DistributedGammaRuntime(backend=...)``.
DISTRIBUTED_BACKENDS = ("legacy", "inprocess", "multiprocessing")


@pytest.fixture(params=ENGINE_NAMES)
def engine_name(request):
    """Every single-process engine name, one test instance per engine."""
    return request.param


@pytest.fixture(
    params=[
        "legacy",
        "inprocess",
        pytest.param(
            "multiprocessing",
            marks=pytest.mark.skipif(
                not FORK_AVAILABLE, reason="fork start method unavailable"
            ),
        ),
    ]
)
def backend(request):
    """Every distributed backend name, one test instance per backend."""
    return request.param


@pytest.fixture
def ex1_graph():
    """Fig. 1: m = (x + y) - (k * j) with the paper's default values."""
    return example1_graph()


@pytest.fixture
def ex2_graph():
    """Fig. 2: the accumulation loop with the observable exit edge."""
    return example2_graph()


@pytest.fixture
def sum_program():
    """The classic sum-reduction Gamma program."""
    return sum_reduction()


@pytest.fixture
def small_multiset():
    """A small multiset of integers under the default data label."""
    return values_multiset([7, 3, 9, 1, 4])
