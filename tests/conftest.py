"""Shared fixtures: the paper's example graphs and frequently used programs."""

from __future__ import annotations

import pytest

from repro.gamma.stdlib import sum_reduction, values_multiset
from repro.workloads.paper_examples import example1_graph, example2_graph


@pytest.fixture
def ex1_graph():
    """Fig. 1: m = (x + y) - (k * j) with the paper's default values."""
    return example1_graph()


@pytest.fixture
def ex2_graph():
    """Fig. 2: the accumulation loop with the observable exit edge."""
    return example2_graph()


@pytest.fixture
def sum_program():
    """The classic sum-reduction Gamma program."""
    return sum_reduction()


@pytest.fixture
def small_multiset():
    """A small multiset of integers under the default data label."""
    return values_multiset([7, 3, 9, 1, 4])
