"""Tests for the batched superstep backend (ParallelEngine + collectors)."""

import pytest

from repro.gamma import (
    GammaProgram,
    NonTerminationError,
    ParallelEngine,
    ReactionScheduler,
    SequentialEngine,
    compile_reaction,
    run,
)
from repro.gamma.pattern import pattern, template
from repro.gamma.reaction import Branch, Reaction
from repro.gamma.stdlib import min_element, sum_reduction, values_multiset
from repro.multiset import Multiset
from repro.workloads import CLASSIC_WORKLOADS, make_workload
from repro.api import RuntimeConfig


def _trace_key(result):
    return [
        (f.step, f.reaction, f.consumed, f.produced, f.binding)
        for f in result.trace.firings()
    ]


class TestParallelEngine:
    @pytest.mark.parametrize("name", CLASSIC_WORKLOADS)
    def test_reaches_sequential_stable_state(self, name):
        workload = make_workload(name, size=28, seed=4)
        sequential = SequentialEngine().run(workload.program, workload.initial)
        parallel = ParallelEngine().run(workload.program, workload.initial)
        assert parallel.stable and parallel.final == sequential.final
        assert parallel.engine == "parallel"

    def test_supersteps_fire_batches(self):
        workload = make_workload("sum_reduction", size=64, seed=1)
        result = ParallelEngine().run(workload.program, workload.initial)
        # 63 firings compressed into ~log2(64) supersteps, widest first.
        assert result.firings == 63
        assert result.steps < 10
        profile = result.parallelism_profile()
        assert profile[0] == 32
        assert profile == sorted(profile, reverse=True)

    def test_trace_identical_across_worker_counts(self):
        workload = make_workload("min_element", size=40, seed=9)
        reference = ParallelEngine(seed=5).run(workload.program, workload.initial)
        for workers in (1, 2, 4, 8):
            other = ParallelEngine(seed=5, workers=workers).run(
                workload.program, workload.initial
            )
            assert _trace_key(other) == _trace_key(reference)
            assert other.final == reference.final

    def test_unseeded_runs_are_deterministic(self):
        workload = make_workload("exchange_sort", size=12, seed=2)
        first = ParallelEngine().run(workload.program, workload.initial)
        second = ParallelEngine(workers=3).run(workload.program, workload.initial)
        assert _trace_key(first) == _trace_key(second)

    def test_max_batch_caps_superstep_width(self):
        workload = make_workload("sum_reduction", size=32, seed=0)
        result = ParallelEngine(max_batch=3).run(workload.program, workload.initial)
        assert max(result.parallelism_profile()) <= 3
        assert result.final.values_with_label("x") == [
            sum(workload.initial.values_with_label("x"))
        ]

    def test_interpreted_mode_matches_compiled_final_state(self):
        workload = make_workload("min_element", size=20, seed=6)
        compiled = ParallelEngine(compiled=True).run(workload.program, workload.initial)
        interpreted = ParallelEngine(compiled=False).run(
            workload.program, workload.initial
        )
        assert interpreted.final == compiled.final

    def test_budget_exhaustion_raises_or_returns_partial(self):
        workload = make_workload("sum_reduction", size=64, seed=1)
        with pytest.raises(NonTerminationError):
            ParallelEngine(max_steps=2).run(workload.program, workload.initial)
        partial = ParallelEngine(max_steps=2, raise_on_budget=False).run(
            workload.program, workload.initial
        )
        assert not partial.stable and partial.steps == 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ParallelEngine(workers=0)
        with pytest.raises(ValueError):
            ParallelEngine(max_batch=0)


class TestRunParallelWiring:
    def test_parallel_true_selects_parallel_engine(self):
        workload = make_workload("min_element", size=16, seed=3)
        result = run(workload.program, workload.initial, config=RuntimeConfig(parallel=True))
        assert result.engine == "parallel"
        assert result.values_with_label("x") == workload.expected_values

    def test_parallel_int_sets_worker_count_without_changing_the_trace(self):
        workload = make_workload("min_element", size=16, seed=3)
        inline = run(workload.program, workload.initial, config=RuntimeConfig(parallel=True, seed=7))
        pooled = run(workload.program, workload.initial, config=RuntimeConfig(parallel=4, seed=7))
        assert _trace_key(inline) == _trace_key(pooled)

    def test_parallel_false_is_the_sequential_default(self):
        workload = make_workload("min_element", size=16, seed=3)
        default = run(workload.program, workload.initial)
        explicit = run(workload.program, workload.initial, config=RuntimeConfig(parallel=False))
        assert explicit.engine == default.engine == "sequential"
        assert _trace_key(explicit) == _trace_key(default)

    def test_parallel_false_tolerated_with_any_engine(self):
        # Sweep idiom: a uniform parallel=False must not conflict with
        # explicit engine names or instances.
        workload = make_workload("min_element", size=8, seed=0)
        by_name = run(workload.program, workload.initial, config=RuntimeConfig(engine="chaotic", seed=1, parallel=False))
        assert by_name.engine == "chaotic"
        by_instance = run(workload.program, workload.initial,
                          engine=SequentialEngine(), parallel=False)
        assert by_instance.engine == "sequential"

    def test_parallel_engine_name_is_runnable(self):
        workload = make_workload("sum_reduction", size=16, seed=3)
        result = run(workload.program, workload.initial, config=RuntimeConfig(engine="parallel"))
        assert result.engine == "parallel"

    def test_parallel_conflicts_with_other_engines(self):
        workload = make_workload("min_element", size=8, seed=0)
        with pytest.raises(ValueError, match="parallel"):
            run(workload.program, workload.initial, config=RuntimeConfig(engine="chaotic", parallel=2))
        with pytest.raises(ValueError, match="parallel"):
            run(workload.program, workload.initial, engine=ParallelEngine(), parallel=2)


class TestSuperstepCollection:
    def test_collect_superstep_matches_is_disjoint_and_maximal(self):
        multiset = values_multiset([4, 1, 7, 3, 9, 5])
        scheduler = ReactionScheduler(sum_reduction().reactions, multiset)
        try:
            matches = scheduler.collect_superstep_matches()
            consumed = [e for m in matches for e in m.consumed]
            assert len(matches) == 3  # maximal pairing of six elements
            assert len(consumed) == len(set(consumed)) == 6
        finally:
            scheduler.detach()

    def test_collect_respects_multiplicities(self):
        # Both copies of 1 anchor a match: exhausting a distinct element must
        # not advance past its remaining copies.
        multiset = values_multiset([1, 1, 5, 7])
        scheduler = ReactionScheduler(min_element().reactions, multiset)
        try:
            matches = scheduler.collect_superstep_matches()
            assert len(matches) == 2
            anchors = sorted(m.consumed[0].value for m in matches)
            assert anchors == [1, 1]
        finally:
            scheduler.detach()

    def test_self_pairing_consumes_two_copies(self):
        # One distinct element with multiplicity 5: exactly one (e, e) match
        # is enumerable per superstep (candidates are distinct elements, the
        # same discipline as the interpreted matcher).
        multiset = values_multiset([2, 2, 2, 2, 2])
        scheduler = ReactionScheduler(sum_reduction().reactions, multiset)
        try:
            matches = scheduler.collect_superstep_matches()
            assert len(matches) == 1
            assert matches[0].consumed[0] is matches[0].consumed[1]
        finally:
            scheduler.detach()

    def test_budget_caps_collection(self):
        multiset = values_multiset(range(1, 17))
        scheduler = ReactionScheduler(min_element().reactions, multiset)
        try:
            assert len(scheduler.collect_superstep_matches(budget=5)) == 5
        finally:
            scheduler.detach()

    def test_empty_collection_parks_dead_reactions(self):
        dead = Reaction(
            "Rdead",
            [pattern("a", "missing", "t")],
            [Branch(productions=[template("a", "missing", "t")])],
        )
        scheduler = ReactionScheduler([dead], values_multiset([1, 2]))
        try:
            assert scheduler.collect_superstep_matches() == []
            assert scheduler.parked == {0}
        finally:
            scheduler.detach()

    def test_collector_exists_for_paper_reactions(self):
        for program in (min_element(), sum_reduction()):
            for reaction in program.reactions:
                assert compile_reaction(reaction).supports_collect

    def test_unknown_label_reaction_falls_back(self):
        anything = Reaction(
            "Rany",
            [
                pattern("a", "lbl", "t", label_is_variable=True),
                pattern("b", "lbl", "t", label_is_variable=True),
            ],
            [Branch(productions=[template("a", "out", "t")])],
        )
        compiled = compile_reaction(anything)
        assert not compiled.supports_collect
        # The scheduler still extracts a disjoint batch through iter_matches.
        multiset = Multiset([(1, "p", 0), (2, "p", 0), (3, "q", 0), (4, "q", 0)])
        scheduler = ReactionScheduler([anything], multiset)
        try:
            matches = scheduler.collect_superstep_matches()
            consumed = [e for m in matches for e in m.consumed]
            assert len(matches) == 2
            assert len(consumed) == len(set(consumed)) == 4
        finally:
            scheduler.detach()

    def test_high_arity_duplicates_never_overconsume(self):
        # Regression: an object held by two outer slots with one copy left
        # must break the held prefix, not anchor another (infeasible) match.
        from repro.gamma.expr import BinOp, Var

        add3 = Reaction(
            "R3",
            [pattern("x", "v", "t1"), pattern("y", "v", "t2"), pattern("z", "v", "t3")],
            [
                Branch(
                    productions=[
                        template(
                            BinOp("+", BinOp("+", Var("x"), Var("y")), Var("z")),
                            "v",
                            "t1",
                        )
                    ]
                )
            ],
        )
        program = GammaProgram([add3], name="fold3")
        for copies in range(1, 12):
            initial = Multiset([(1, "v", 0)] * copies)
            result = ParallelEngine().run(program, initial)
            assert result.stable
            assert sum(e.value for e in result.final) == copies
            assert len(result.final) == len(
                SequentialEngine().run(program, initial).final
            )

    def test_parallel_engine_runs_fallback_reactions(self):
        anything = Reaction(
            "Rany",
            [
                pattern("a", "lbl", "t", label_is_variable=True),
                pattern("b", "lbl", "t", label_is_variable=True),
            ],
            [Branch(productions=[template("a", "out", "t")])],
        )
        program = GammaProgram([anything], name="wildcard")
        initial = Multiset([(1, "p", 0), (2, "p", 0), (3, "q", 0)])
        result = ParallelEngine().run(program, initial)
        assert result.stable
        assert sorted(e.label for e in result.final) == ["out", "p"] or sorted(
            e.label for e in result.final
        ) == ["out", "q"]
