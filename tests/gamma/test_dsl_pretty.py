"""Unit tests for the DSL pretty-printer and generated-code round-trips."""

import pytest

from repro.core import dataflow_to_gamma
from repro.gamma import run
from repro.gamma.dsl import compile_source, format_expr, format_multiset, format_program
from repro.gamma.expr import BinOp, BoolOp, Compare, Const, Not, Var
from repro.gamma.stdlib import values_multiset
from repro.workloads.paper_examples import example1_graph, example2_graph
from repro.api import RuntimeConfig


class TestFormatExpr:
    def test_variables_and_constants(self):
        assert format_expr(Var("id1")) == "id1"
        assert format_expr(Const(3)) == "3"
        assert format_expr(Const("A1")) == "'A1'"

    def test_operators_and_precedence(self):
        expr = BinOp("-", BinOp("+", Var("a"), Var("b")), BinOp("*", Var("c"), Var("d")))
        assert format_expr(expr) == "a + b - c * d"
        nested = BinOp("*", BinOp("+", Var("a"), Var("b")), Var("c"))
        assert format_expr(nested) == "(a + b) * c"

    def test_boolean_and_not(self):
        expr = BoolOp("or", Compare("==", Var("x"), Const("A1")), Compare("==", Var("x"), Const("A11")))
        assert format_expr(expr) == "x == 'A1' or x == 'A11'"
        # Parentheses are required: in the grammar 'not' binds tighter than '<'.
        assert format_expr(Not(Compare("<", Var("a"), Var("b")))) == "not (a < b)"

    def test_min_max_function_style(self):
        assert format_expr(BinOp("min", Var("a"), Var("b"))) == "min(a, b)"


class TestFormatProgram:
    def test_generated_program_round_trips(self):
        """Gamma code emitted for Algorithm 1's output re-parses and re-executes."""
        conversion = dataflow_to_gamma(example2_graph())
        text = format_program(conversion.program)
        reparsed = compile_source(text)
        original = run(conversion.program, config=RuntimeConfig(engine="sequential")).final.restrict_labels(["Cout"])
        again = run(reparsed, config=RuntimeConfig(engine="sequential")).final.restrict_labels(["Cout"])
        assert original == again

    def test_format_multiset(self):
        text = format_multiset(values_multiset([1, 2]))
        assert text.startswith("init {")
        assert "'x'" in text

    def test_program_text_includes_init(self):
        conversion = dataflow_to_gamma(example1_graph())
        text = format_program(conversion.program)
        assert "init {" in text
        assert "R1 = replace" in text

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            format_program(42)
