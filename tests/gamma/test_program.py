"""Unit tests for Gamma program containers and composition operators."""

import pytest

from repro.gamma import GammaProgram, SequentialProgram, parallel, sequential
from repro.gamma.stdlib import max_element, min_element, sum_reduction, values_multiset


class TestGammaProgram:
    def test_requires_reactions(self):
        with pytest.raises(ValueError):
            GammaProgram([])

    def test_duplicate_names_rejected(self):
        r = min_element()["Rmin"]
        with pytest.raises(ValueError):
            GammaProgram([r, r])

    def test_lookup_by_name_and_index(self):
        program = min_element()
        assert program[0].name == "Rmin"
        assert program["Rmin"].name == "Rmin"
        assert "Rmin" in program
        with pytest.raises(KeyError):
            program["nope"]

    def test_reaction_names(self):
        program = min_element() | max_element()
        assert program.reaction_names() == ["Rmin", "Rmax"]
        assert len(program) == 2

    def test_parallel_composition_merges_initial(self):
        a = min_element().with_initial(values_multiset([1, 2]))
        b = max_element().with_initial(values_multiset([3]))
        combined = a | b
        assert len(combined.initial) == 3

    def test_or_with_reaction(self):
        program = min_element() | max_element()["Rmax"]
        assert set(program.reaction_names()) == {"Rmin", "Rmax"}

    def test_output_labels(self):
        from repro.core import dataflow_to_gamma
        from repro.workloads.paper_examples import example1_graph

        program = dataflow_to_gamma(example1_graph()).program
        assert program.output_labels() == {"m"}

    def test_with_initial_copies(self):
        initial = values_multiset([1])
        program = min_element().with_initial(initial)
        initial.add((99, "x", 0))
        assert len(program.initial) == 1


class TestSequentialProgram:
    def test_flattening(self):
        s = sequential(min_element(), sequential(max_element(), sum_reduction()))
        assert len(s) == 3

    def test_then_chains(self):
        s = min_element().then(max_element()).then(sum_reduction())
        assert isinstance(s, SequentialProgram)
        assert len(s) == 3

    def test_requires_stages(self):
        with pytest.raises(ValueError):
            SequentialProgram([])

    def test_initial_comes_from_first_stage(self):
        first = min_element().with_initial(values_multiset([5]))
        s = sequential(first, max_element())
        assert s.initial is not None

    def test_parallel_helper_rejects_bad_types(self):
        with pytest.raises(TypeError):
            parallel(min_element(), "not a reaction")
