"""Tests for the classic Gamma programs (experiment E6 and general model coverage)."""

import math

import pytest

from repro.gamma import run
from repro.gamma.stdlib import (
    CLASSIC_PROGRAMS,
    count_threshold,
    exchange_sort,
    gcd_program,
    indexed_multiset,
    max_element,
    min_element,
    prime_sieve,
    product_reduction,
    remove_duplicates,
    sum_reduction,
    values_multiset,
)
from repro.api import RuntimeConfig


class TestReductions:
    def test_min(self, engine_name):
        result = run(min_element(), values_multiset([8, 3, 11, 5]), config=RuntimeConfig(engine=engine_name, seed=1))
        assert result.final.values_with_label("x") == [3]

    def test_min_is_eq2_shape(self):
        reaction = min_element()["Rmin"]
        assert reaction.arity == 2
        assert reaction.guard is not None
        assert len(reaction.branches) == 1

    def test_max(self):
        result = run(max_element(), values_multiset([8, 3, 11, 5]), config=RuntimeConfig(engine="chaotic", seed=0))
        assert result.final.values_with_label("x") == [11]

    def test_sum(self):
        result = run(sum_reduction(), values_multiset(range(1, 11)), config=RuntimeConfig(engine="chaotic", seed=0))
        assert result.final.values_with_label("x") == [55]

    def test_product(self):
        result = run(product_reduction(), values_multiset([2, 3, 4]), config=RuntimeConfig(engine="sequential"))
        assert result.final.values_with_label("x") == [24]

    def test_gcd(self):
        values = [24, 36, 60]
        result = run(gcd_program(), values_multiset(values), config=RuntimeConfig(engine="chaotic", seed=2))
        assert result.final.values_with_label("x") == [math.gcd(*values[:2], values[2])]

    def test_gcd_single_element_already_stable(self):
        result = run(gcd_program(), values_multiset([17]), config=RuntimeConfig(engine="sequential"))
        assert result.final.values_with_label("x") == [17]


class TestSetAndOrderPrograms:
    def test_prime_sieve(self):
        result = run(prime_sieve(), values_multiset(range(2, 50)), config=RuntimeConfig(engine="chaotic", seed=4))
        primes = sorted(result.final.values_with_label("x"))
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]

    def test_remove_duplicates(self):
        result = run(remove_duplicates(), values_multiset([1, 1, 2, 3, 3, 3]), config=RuntimeConfig(engine="sequential"))
        assert sorted(result.final.values_with_label("x")) == [1, 2, 3]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exchange_sort(self, seed):
        values = [9, 2, 7, 1, 8, 3]
        result = run(exchange_sort(), indexed_multiset(values), config=RuntimeConfig(engine="chaotic", seed=seed))
        by_tag = sorted(result.final, key=lambda e: e.tag)
        assert [e.value for e in by_tag] == sorted(values)

    def test_exchange_sort_preserves_tags_as_indices(self):
        values = [5, 4, 3]
        result = run(exchange_sort(), indexed_multiset(values), config=RuntimeConfig(engine="sequential"))
        assert sorted(e.tag for e in result.final) == [0, 1, 2]

    def test_count_threshold_sequential_composition(self):
        result = run(count_threshold(10), values_multiset([4, 11, 25, 3, 10]), config=RuntimeConfig(engine="sequential"))
        assert result.final.values_with_label("count") == [3]


class TestRegistry:
    def test_registry_names(self):
        assert set(CLASSIC_PROGRAMS) >= {
            "min_element", "max_element", "sum_reduction", "prime_sieve",
            "exchange_sort", "gcd", "remove_duplicates", "product_reduction",
        }

    def test_registry_builders_produce_programs(self):
        for name, builder in CLASSIC_PROGRAMS.items():
            program = builder()
            assert len(program) >= 1, name

    def test_custom_label(self):
        result = run(min_element("vals"), values_multiset([4, 2], label="vals"), config=RuntimeConfig(engine="sequential"))
        assert result.final.values_with_label("vals") == [2]
